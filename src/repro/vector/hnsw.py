"""HNSW graph index (Malkov & Yashunin) — the workhorse ANN structure.

A hierarchy of proximity graphs: the sparse top layers route a greedy search
into the right region, the dense bottom layer (layer 0) holds every point.
Search cost is roughly O(log n) hops, giving the sub-linear latency that
makes vector databases practical for RAG (paper §2.2.1).

Adjacency is stored as preallocated int64 arrays (one ``(rows, cap + 1)``
matrix plus a degree vector per layer) rather than dict-of-lists, and the
per-layer search tracks visited nodes with an epoch-stamped array instead of
a Python set.

Both the insertion path and the query path score candidates with one
``_score_fn`` BLAS product per expansion, exactly like the pre-overhaul
implementation — so graphs *and* search results are bitwise-identical to
the frozen baseline in ``benchmarks/perf/_legacy_prep.py``.  The wins come
from the bookkeeping around the scoring: contiguous adjacency slices
instead of dict lookups, one vectorized visited probe per expansion instead
of a set-membership test per neighbour, and a result-floor prefilter that
keeps dead pairs out of the heaps.  (A lockstep cohort kernel that batches
the similarity math *across* queries was prototyped and measured: the
per-expansion BLAS call on this graph is already so small that round
synchronization costs as much as it saves, so the per-query loop stays.)
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

import numpy as np

from ..errors import VectorIndexError
from ..utils import derive_rng
from .base import VectorIndex


class HNSWIndex(VectorIndex):
    """Hierarchical Navigable Small World graph.

    Parameters
    ----------
    m:
        Max neighbours per node on upper layers (layer 0 allows ``2*m``).
    ef_construction:
        Candidate-list width during insertion; larger = better graph, slower
        build.
    ef_search:
        Candidate-list width during queries; the recall/latency dial.
    compact_fraction:
        Tombstone fraction past which :meth:`~VectorIndex.compact` runs
        automatically after a delete (``1.0`` disables auto-compaction).
    """

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        *,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        compact_fraction: float = 0.3,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, metric)
        if m < 2:
            raise VectorIndexError(f"m must be >= 2, got {m}")
        if not 0.0 < compact_fraction <= 1.0:
            raise VectorIndexError(
                f"compact_fraction must be in (0, 1], got {compact_fraction}"
            )
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self.compact_fraction = compact_fraction
        self._level_mult = 1.0 / math.log(m)
        self._rng = derive_rng(seed, "hnsw")
        # Per-layer adjacency: _adj[layer][row, :_deg[layer][row]] are the
        # neighbour rows, in insertion order (identical to the old list
        # order).  Rows not on a layer carry degree -1.  One spare column
        # beyond the layer cap lets _link append before pruning in place.
        self._adj: List[np.ndarray] = []
        self._deg: List[np.ndarray] = []
        self._capacity = 0
        # Epoch-stamped visited marks: row visited iff _visited[row] == _epoch.
        # Bumping the epoch resets all marks in O(1) per query.
        self._visited = np.zeros(0, dtype=np.int64)
        self._epoch = 0
        self._node_level: Dict[int, int] = {}
        self._entry: int = -1
        self._entry_level: int = -1

    # ----------------------------------------------------------- adjacency
    def _layer_width(self, layer: int) -> int:
        return (self.m0 if layer == 0 else self.m) + 1

    def _ensure_capacity(self, total_rows: int) -> None:
        if total_rows <= self._capacity:
            return
        new_cap = max(total_rows, self._capacity * 2, 256)
        for layer, adj in enumerate(self._adj):
            grown = np.empty((new_cap, adj.shape[1]), dtype=np.int64)
            grown[: adj.shape[0]] = adj
            self._adj[layer] = grown
            deg = np.full(new_cap, -1, dtype=np.int64)
            deg[: self._deg[layer].shape[0]] = self._deg[layer]
            self._deg[layer] = deg
        visited = np.zeros(new_cap, dtype=np.int64)
        visited[: self._visited.shape[0]] = self._visited
        self._visited = visited
        self._capacity = new_cap

    def _add_layer(self) -> None:
        layer = len(self._adj)
        self._adj.append(
            np.empty((self._capacity, self._layer_width(layer)), dtype=np.int64)
        )
        self._deg.append(np.full(self._capacity, -1, dtype=np.int64))

    @property
    def num_layers(self) -> int:
        """Number of graph layers currently allocated."""
        return len(self._adj)

    def layer_adjacency(self, layer: int) -> Dict[int, List[int]]:
        """Snapshot one layer's adjacency as ``{row: [neighbour rows]}``."""
        adj, deg = self._adj[layer], self._deg[layer]
        return {
            int(row): adj[row, : deg[row]].tolist()
            for row in np.flatnonzero(deg >= 0)
        }

    # ------------------------------------------------------------ insertion
    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _search_layer(
        self, query: np.ndarray, entry_rows: List[int], ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        """Best-first search over one layer; up to ``ef`` (sim, row).

        Serves both insertion and queries.  Scores via ``_score_fn`` — one
        BLAS product over the fresh neighbours per expansion, the exact call
        shape of the pre-overhaul loop — so construction decisions, the
        graph, and every reported similarity stay bitwise-identical to the
        frozen baseline.
        """
        adj, deg = self._adj[layer], self._deg[layer]
        vectors = self._vectors
        score_fn = self._score_fn
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        # With live tombstones, stale in-edges may still point at deleted
        # rows (delete repair rewires out-edges; asymmetric in-edges are
        # only reclaimed at compaction). Skip them here so deleted nodes
        # are neither routed through nor returned. The no-deletion path is
        # untouched — bitwise-identical to the frozen baseline.
        deleted = self._del_buf if self._num_deleted else None
        entry = np.asarray(entry_rows, dtype=np.int64)
        visited[entry] = epoch
        # Max-heap of candidates by similarity (negated for heapq);
        # min-heap of current best results by similarity.
        candidates: List[Tuple[float, int]] = []
        results: List[Tuple[float, int]] = []
        entry_sims = score_fn(query, vectors[entry])
        for row, sim in zip(entry_rows, entry_sims.tolist()):
            heapq.heappush(candidates, (-sim, row))
            heapq.heappush(results, (sim, row))
        while candidates:
            neg_sim, row = heapq.heappop(candidates)
            if results and -neg_sim < results[0][0] and len(results) >= ef:
                break
            d = deg[row]
            if d <= 0:
                continue
            nbrs = adj[row, :d]
            fresh = nbrs[visited[nbrs] != epoch]
            if fresh.shape[0] == 0:
                continue
            visited[fresh] = epoch
            if deleted is not None:
                fresh = fresh[~deleted[fresh]]
                if fresh.shape[0] == 0:
                    continue
            sims = score_fn(query, vectors[fresh])
            if len(results) >= ef:
                # The result floor only rises while the heap is full, so
                # neighbours below it now can never be admitted later;
                # dropping them here skips dead heap traffic without
                # changing which nodes get pushed.
                keep = sims > results[0][0]
                fresh = fresh[keep]
                sims = sims[keep]
            for n_row, sim in zip(fresh.tolist(), sims.tolist()):
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, n_row))
                    heapq.heappush(results, (sim, n_row))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted(results, reverse=True)

    def _select_neighbours(
        self, query: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[int]:
        """Heuristic neighbour selection (keeps diverse edges)."""
        ordered = sorted(candidates, reverse=True)
        selected: List[int] = []
        # Already-selected vectors accumulate in a preallocated matrix so the
        # domination check is one vectorized score call per candidate instead
        # of a Python loop over selected neighbours.
        selected_vecs = np.empty((m, self.dim), dtype=np.float32)
        for sim, row in ordered:
            if len(selected) >= m:
                break
            # Diversity check: skip a candidate dominated by an already
            # selected neighbour (closer to it than to the query).
            vec = self._vectors[row]
            if selected and float(
                np.max(self._score_fn(vec, selected_vecs[: len(selected)]))
            ) > sim:
                continue
            selected_vecs[len(selected)] = vec
            selected.append(row)
        if len(selected) < m:  # backfill with remaining best
            chosen = set(selected)
            for sim, row in ordered:
                if len(selected) >= m:
                    break
                if row not in chosen:
                    selected.append(row)
                    chosen.add(row)
        return selected

    def _link(self, layer: int, row: int, neighbours: List[int]) -> None:
        adj, deg = self._adj[layer], self._deg[layer]
        adj[row, : len(neighbours)] = neighbours
        deg[row] = len(neighbours)
        cap = self.m0 if layer == 0 else self.m
        for n_row in neighbours:
            d = int(deg[n_row])
            if d < 0:
                d = 0
            adj[n_row, d] = row
            d += 1
            deg[n_row] = d
            if d > cap:
                # Prune with the diversity heuristic, not raw similarity:
                # similarity-only pruning severs the long-range edges that
                # keep distinct clusters mutually reachable, fragmenting
                # the graph (the failure mode the original paper's
                # "heuristic" neighbour selection exists to prevent).
                links = adj[n_row, :d]
                vec = self._vectors[n_row]
                sims = self._score_fn(vec, self._vectors[links])
                candidates = list(zip(sims.tolist(), links.tolist()))
                selected = self._select_neighbours(vec, candidates, cap)
                adj[n_row, : len(selected)] = selected
                deg[n_row] = len(selected)

    def _on_add(self, rows: np.ndarray, vectors: np.ndarray) -> None:
        self._ensure_capacity(self.total_rows)
        for row in rows:
            self._insert(int(row))

    def _insert(self, row: int) -> None:
        level = self._random_level()
        self._node_level[row] = level
        while len(self._adj) <= level:
            self._add_layer()
        query = self._vectors[row]
        if self._entry < 0:
            for layer in range(level + 1):
                self._deg[layer][row] = 0
            self._entry, self._entry_level = row, level
            return
        entry = [self._entry]
        # Greedy descent through layers above the node's level.
        for layer in range(self._entry_level, level, -1):
            entry = [self._search_layer(query, entry, 1, layer)[0][1]]
        # Insert with full candidate search below.
        for layer in range(min(level, self._entry_level), -1, -1):
            candidates = self._search_layer(query, entry, self.ef_construction, layer)
            m = self.m0 if layer == 0 else self.m
            neighbours = self._select_neighbours(query, candidates, m)
            self._link(layer, row, neighbours)
            entry = [r for _, r in candidates]
        if level > self._entry_level:
            self._entry, self._entry_level = row, level

    # ------------------------------------------------------------- deletion
    def _on_remove(self, row: int) -> None:
        """Delete with graph repair.

        The deleted node is unlinked from every layer it occupies; each of
        its (out-)neighbours is re-linked through the surviving candidates —
        its own remaining neighbours plus the deleted node's other
        neighbours — via the same diversity heuristic used at construction,
        so local connectivity survives the removal. If the entry point
        died, a new one is elected from the highest still-populated layer.
        Stale in-edges (asymmetric links pointing at the deleted row) are
        skipped at search time and reclaimed by compaction, which runs
        automatically past ``compact_fraction``.
        """
        level = self._node_level.pop(row, None)
        if level is None:
            return
        for layer in range(min(level, len(self._adj) - 1) + 1):
            adj, deg = self._adj[layer], self._deg[layer]
            d = int(deg[row])
            if d < 0:
                continue
            nbrs = adj[row, :d].tolist()
            deg[row] = -1
            cap = self.m0 if layer == 0 else self.m
            deleted = self._del_buf
            live_nbrs = [n for n in nbrs if not deleted[n] and deg[n] >= 0]
            for n_row in live_nbrs:
                nd = int(deg[n_row])
                current = adj[n_row, :nd].tolist()
                # Drop the deleted row, then offer the deleted node's other
                # neighbours as bridge candidates (first occurrence wins,
                # order deterministic: existing links then bridges).
                candidates: List[int] = []
                seen = {row, n_row}
                for c in current:
                    if c not in seen and not deleted[c]:
                        seen.add(c)
                        candidates.append(c)
                for c in live_nbrs:
                    if c not in seen:
                        seen.add(c)
                        candidates.append(c)
                if not candidates:
                    deg[n_row] = 0
                    continue
                vec = self._vectors[n_row]
                cand_rows = np.asarray(candidates, dtype=np.int64)
                sims = self._score_fn(vec, self._vectors[cand_rows])
                selected = self._select_neighbours(
                    vec, list(zip(sims.tolist(), candidates)), cap
                )
                adj[n_row, : len(selected)] = selected
                deg[n_row] = len(selected)
        if row == self._entry:
            self._elect_entry()
        if (
            self.compact_fraction < 1.0
            and self.total_rows >= 32
            and self._num_deleted >= self.compact_fraction * self.total_rows
        ):
            self.compact()

    def _elect_entry(self) -> None:
        """Re-elect the entry point from the highest populated layer."""
        for layer in range(len(self._adj) - 1, -1, -1):
            deg = self._deg[layer][: self.total_rows]
            rows = np.flatnonzero((deg >= 0) & ~self._deleted)
            if rows.shape[0]:
                self._entry = int(rows[0])
                self._entry_level = layer
                return
        self._entry, self._entry_level = -1, -1

    def _on_compact(self, live: np.ndarray, row_map: np.ndarray) -> None:
        total = row_map.shape[0]
        for layer, (adj, deg) in enumerate(zip(self._adj, self._deg)):
            new_adj = np.empty_like(adj)
            new_deg = np.full(deg.shape[0], -1, dtype=np.int64)
            for old in live.tolist():
                d = int(deg[old])
                if d < 0:
                    continue
                new = int(row_map[old])
                if d:
                    # Remap neighbours, dropping stale links to dead rows.
                    mapped = row_map[adj[old, :d]]
                    mapped = mapped[mapped >= 0]
                    new_adj[new, : mapped.shape[0]] = mapped
                    new_deg[new] = mapped.shape[0]
                else:
                    new_deg[new] = 0
            self._adj[layer] = new_adj
            self._deg[layer] = new_deg
        self._node_level = {
            int(row_map[old]): lvl
            for old, lvl in self._node_level.items()
            if old < total and row_map[old] >= 0
        }
        # Stale visited marks would alias remapped rows; reset the epoch.
        self._visited[:] = 0
        self._epoch = 0
        if self._entry >= 0:
            # remove() re-elects before compaction triggers, so the entry is
            # always live here and maps to a real row.
            self._entry = int(row_map[self._entry])
        if self._entry < 0:
            self._elect_entry()

    # --------------------------------------------------------------- search
    def _search_ids_many(self, queries: np.ndarray, k: int) -> List[List[tuple]]:
        """Graph search for a batch of prepared queries.

        Each query runs the same descent as the pre-overhaul ``search`` —
        greedy ef=1 through the upper layers, then a full ``ef_search``
        sweep of layer 0 — through :meth:`_search_layer`, so ids *and*
        scores are bitwise-equal to the frozen baseline (and ``search_many``
        is trivially bitwise-equal to looped ``search``).  The batch shares
        the epoch-stamped visited buffer, so no per-query allocation scales
        with the index size.
        """
        nq = queries.shape[0]
        if self._entry < 0:
            return [[] for _ in range(nq)]
        ef = max(self.ef_search, k)
        out: List[List[tuple]] = []
        for qi in range(nq):
            query = queries[qi]
            entry = [self._entry]
            for layer in range(self._entry_level, 0, -1):
                entry = [self._search_layer(query, entry, 1, layer)[0][1]]
            results = self._search_layer(query, entry, ef, 0)
            out.append([(row, sim) for sim, row in results])
        return out

    # ----------------------------------------------------------- statistics
    def graph_stats(self) -> Dict[str, float]:
        """Degree statistics (useful in tests and docs)."""
        if not self._adj:
            return {"layers": 0, "mean_degree_l0": 0.0}
        deg0 = self._deg[0]
        degrees = deg0[deg0 >= 0]
        return {
            "layers": len(self._adj),
            "mean_degree_l0": float(degrees.mean()) if degrees.shape[0] else 0.0,
            "nodes_l0": int(degrees.shape[0]),
        }
