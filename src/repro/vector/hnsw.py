"""HNSW graph index (Malkov & Yashunin) — the workhorse ANN structure.

A hierarchy of proximity graphs: the sparse top layers route a greedy search
into the right region, the dense bottom layer (layer 0) holds every point.
Search cost is roughly O(log n) hops, giving the sub-linear latency that
makes vector databases practical for RAG (paper §2.2.1).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Set, Tuple

import numpy as np

from ..errors import VectorIndexError
from ..utils import derive_rng
from .base import VectorIndex


class HNSWIndex(VectorIndex):
    """Hierarchical Navigable Small World graph.

    Parameters
    ----------
    m:
        Max neighbours per node on upper layers (layer 0 allows ``2*m``).
    ef_construction:
        Candidate-list width during insertion; larger = better graph, slower
        build.
    ef_search:
        Candidate-list width during queries; the recall/latency dial.
    """

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        *,
        m: int = 16,
        ef_construction: int = 100,
        ef_search: int = 50,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, metric)
        if m < 2:
            raise VectorIndexError(f"m must be >= 2, got {m}")
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = max(ef_construction, m)
        self.ef_search = ef_search
        self._level_mult = 1.0 / math.log(m)
        self._rng = derive_rng(seed, "hnsw")
        # _graph[layer][row] -> list of neighbour rows
        self._graph: List[Dict[int, List[int]]] = []
        self._node_level: Dict[int, int] = {}
        self._entry: int = -1
        self._entry_level: int = -1

    # -------------------------------------------------------------- scoring
    def _sim(self, query: np.ndarray, row: int) -> float:
        return float(self._score_fn(query, self._vectors[row][None, :])[0])

    def _sim_many(self, query: np.ndarray, rows: List[int]) -> np.ndarray:
        return self._score_fn(query, self._vectors[np.asarray(rows, dtype=np.int64)])

    # ------------------------------------------------------------ insertion
    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._level_mult)

    def _search_layer(
        self, query: np.ndarray, entry_rows: List[int], ef: int, layer: int
    ) -> List[Tuple[float, int]]:
        """Best-first search on one layer; returns up to ``ef`` (sim, row)."""
        adjacency = self._graph[layer]
        visited: Set[int] = set(entry_rows)
        # Max-heap of candidates by similarity (negated for heapq);
        # min-heap of current best results by similarity.
        candidates: List[Tuple[float, int]] = []
        results: List[Tuple[float, int]] = []
        entry_sims = self._sim_many(query, entry_rows)
        for row, sim in zip(entry_rows, entry_sims):
            sim = float(sim)
            heapq.heappush(candidates, (-sim, row))
            heapq.heappush(results, (sim, row))
        while candidates:
            neg_sim, row = heapq.heappop(candidates)
            if results and -neg_sim < results[0][0] and len(results) >= ef:
                break
            neighbours = [n for n in adjacency.get(row, []) if n not in visited]
            if not neighbours:
                continue
            visited.update(neighbours)
            sims = self._sim_many(query, neighbours)
            for n_row, sim in zip(neighbours, sims):
                sim = float(sim)
                if len(results) < ef or sim > results[0][0]:
                    heapq.heappush(candidates, (-sim, n_row))
                    heapq.heappush(results, (sim, n_row))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted(results, reverse=True)

    def _select_neighbours(
        self, query: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[int]:
        """Heuristic neighbour selection (keeps diverse edges)."""
        ordered = sorted(candidates, reverse=True)
        selected: List[int] = []
        # Already-selected vectors accumulate in a preallocated matrix so the
        # domination check is one vectorized score call per candidate instead
        # of a Python loop over selected neighbours.
        selected_vecs = np.empty((m, self.dim), dtype=np.float32)
        for sim, row in ordered:
            if len(selected) >= m:
                break
            # Diversity check: skip a candidate dominated by an already
            # selected neighbour (closer to it than to the query).
            vec = self._vectors[row]
            if selected and float(
                np.max(self._score_fn(vec, selected_vecs[: len(selected)]))
            ) > sim:
                continue
            selected_vecs[len(selected)] = vec
            selected.append(row)
        if len(selected) < m:  # backfill with remaining best
            chosen = set(selected)
            for sim, row in ordered:
                if len(selected) >= m:
                    break
                if row not in chosen:
                    selected.append(row)
                    chosen.add(row)
        return selected

    def _link(self, layer: int, row: int, neighbours: List[int]) -> None:
        adjacency = self._graph[layer]
        adjacency[row] = list(neighbours)
        cap = self.m0 if layer == 0 else self.m
        for n_row in neighbours:
            links = adjacency.setdefault(n_row, [])
            links.append(row)
            if len(links) > cap:
                # Prune with the diversity heuristic, not raw similarity:
                # similarity-only pruning severs the long-range edges that
                # keep distinct clusters mutually reachable, fragmenting
                # the graph (the failure mode the original paper's
                # "heuristic" neighbour selection exists to prevent).
                vec = self._vectors[n_row]
                sims = self._sim_many(vec, links)
                candidates = [(float(s), l) for s, l in zip(sims, links)]
                adjacency[n_row] = self._select_neighbours(vec, candidates, cap)

    def _on_add(self, rows: np.ndarray, vectors: np.ndarray) -> None:
        for row in rows:
            self._insert(int(row))

    def _insert(self, row: int) -> None:
        level = self._random_level()
        self._node_level[row] = level
        while len(self._graph) <= level:
            self._graph.append({})
        query = self._vectors[row]
        if self._entry < 0:
            for layer in range(level + 1):
                self._graph[layer][row] = []
            self._entry, self._entry_level = row, level
            return
        entry = [self._entry]
        # Greedy descent through layers above the node's level.
        for layer in range(self._entry_level, level, -1):
            entry = [self._search_layer(query, entry, 1, layer)[0][1]]
        # Insert with full candidate search below.
        for layer in range(min(level, self._entry_level), -1, -1):
            candidates = self._search_layer(query, entry, self.ef_construction, layer)
            m = self.m0 if layer == 0 else self.m
            neighbours = self._select_neighbours(query, candidates, m)
            self._link(layer, row, neighbours)
            entry = [r for _, r in candidates]
        if level > self._entry_level:
            self._entry, self._entry_level = row, level

    # --------------------------------------------------------------- search
    def _search_ids(self, query: np.ndarray, k: int) -> List[tuple]:
        if self._entry < 0:
            return []
        entry = [self._entry]
        for layer in range(self._entry_level, 0, -1):
            entry = [self._search_layer(query, entry, 1, layer)[0][1]]
        ef = max(self.ef_search, k)
        results = self._search_layer(query, entry, ef, 0)
        return [(row, sim) for sim, row in results]

    # ----------------------------------------------------------- statistics
    def graph_stats(self) -> Dict[str, float]:
        """Degree statistics (useful in tests and docs)."""
        if not self._graph:
            return {"layers": 0, "mean_degree_l0": 0.0}
        degrees = [len(v) for v in self._graph[0].values()]
        return {
            "layers": len(self._graph),
            "mean_degree_l0": float(np.mean(degrees)) if degrees else 0.0,
            "nodes_l0": len(self._graph[0]),
        }
