"""Vector database: named collections with metadata filtering + persistence.

The "Vector Database" box of Figure 1. Each collection owns one index (any
:class:`~repro.vector.base.VectorIndex` implementation), a metadata store,
and optionally an embedder so callers can ingest and query raw text.
Metadata filtering uses post-filter with adaptive over-fetch (the common
design when filters are rare-ish); persistence is npz + JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import CollectionError
from ..llm.embedding import EmbeddingModel
from .base import SearchHit, VectorIndex
from .flat import FlatIndex
from .hnsw import HNSWIndex
from .ivf import IVFIndex
from .lsh import LSHIndex
from .pq import PQIndex

INDEX_TYPES: Dict[str, Callable[..., VectorIndex]] = {
    "flat": FlatIndex,
    "ivf": IVFIndex,
    "hnsw": HNSWIndex,
    "lsh": LSHIndex,
    "pq": PQIndex,
}

MetadataFilter = Callable[[Dict[str, object]], bool]


@dataclass(frozen=True)
class Record:
    """One stored item: id, optional source text, metadata."""

    id: str
    text: Optional[str]
    metadata: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class QueryResult:
    """A search hit joined with its stored record."""

    id: str
    score: float
    text: Optional[str]
    metadata: Dict[str, object]


class Collection:
    """One named vector collection."""

    def __init__(
        self,
        name: str,
        dim: int,
        *,
        index_type: str = "flat",
        metric: str = "cosine",
        embedder: Optional[EmbeddingModel] = None,
        **index_kwargs: object,
    ) -> None:
        if index_type not in INDEX_TYPES:
            raise CollectionError(
                f"unknown index type {index_type!r}; choose from {sorted(INDEX_TYPES)}"
            )
        self.name = name
        self.dim = dim
        self.index_type = index_type
        # Remembered so save()/load() can round-trip tuned hyperparameters
        # (m, ef_search, nlist, ...) instead of silently rebuilding a
        # default-parameter index from the raw vectors.
        self.index_kwargs: Dict[str, object] = dict(index_kwargs)
        self.index: VectorIndex = INDEX_TYPES[index_type](dim, metric, **index_kwargs)
        self.embedder = embedder
        self._records: Dict[str, Record] = {}

    # ------------------------------------------------------------ ingestion
    def upsert(
        self,
        ids: Sequence[str],
        *,
        vectors: Optional[np.ndarray] = None,
        texts: Optional[Sequence[str]] = None,
        metadatas: Optional[Sequence[Dict[str, object]]] = None,
    ) -> None:
        """Insert or replace items.

        Supply either explicit ``vectors`` or ``texts`` (requires an
        embedder). Existing ids are replaced.

        Every input is validated *before* any existing record is touched: a
        bad batch (length mismatch, repeated id, wrong dimensionality)
        raises with the collection exactly as it was.
        """
        ids = list(ids)
        if len(set(ids)) != len(ids):
            raise CollectionError("duplicate ids within upsert batch")
        if texts is not None and len(texts) != len(ids):
            raise CollectionError("texts length mismatch")
        if metadatas is not None and len(metadatas) != len(ids):
            raise CollectionError("metadatas length mismatch")
        if vectors is None:
            if texts is None:
                raise CollectionError("upsert needs vectors or texts")
            if self.embedder is None:
                raise CollectionError(f"collection {self.name!r} has no embedder")
            vectors = self.embedder.embed_batch(list(texts))
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise CollectionError(
                f"vectors must be (n, {self.dim}); got shape {vectors.shape}"
            )
        if vectors.shape[0] != len(ids):
            raise CollectionError(
                f"{len(ids)} ids for {vectors.shape[0]} vectors"
            )
        # All checks passed: mutation starts here and cannot fail partway.
        for vid in ids:
            if vid in self._records:
                self.index.remove(vid)
                del self._records[vid]
        self.index.add(ids, vectors)
        for i, vid in enumerate(ids):
            self._records[vid] = Record(
                id=vid,
                text=texts[i] if texts is not None else None,
                metadata=dict(metadatas[i]) if metadatas is not None else {},
            )

    def delete(self, vid: str) -> bool:
        """Remove one item; returns False if absent."""
        if vid not in self._records:
            return False
        self.index.remove(vid)
        del self._records[vid]
        return True

    def get(self, vid: str) -> Optional[Record]:
        record = self._records.get(vid)
        if record is None:
            return None
        # Defensive copy (matching _materialize): handing out the stored
        # metadata dict would let callers corrupt the store that query()'s
        # `where` filters read.
        return Record(id=record.id, text=record.text, metadata=dict(record.metadata))

    def __len__(self) -> int:
        return len(self._records)

    # --------------------------------------------------------------- search
    def query(
        self,
        *,
        vector: Optional[np.ndarray] = None,
        text: Optional[str] = None,
        k: int = 10,
        where: Optional[MetadataFilter] = None,
        max_overfetch: int = 8,
    ) -> List[QueryResult]:
        """Top-k search with optional metadata post-filter.

        With a filter, the collection over-fetches (doubling up to
        ``max_overfetch``×) until ``k`` filtered hits are found or the
        whole index has been considered.
        """
        if vector is None:
            if text is None:
                raise CollectionError("query needs vector or text")
            if self.embedder is None:
                raise CollectionError(f"collection {self.name!r} has no embedder")
            vector = self.embedder.embed(text)
        fetch = k
        results: List[QueryResult] = []
        for _ in range(max(1, max_overfetch)):
            hits = self.index.search(vector, k=fetch)
            results = self._materialize(hits, where)
            if len(results) >= k or fetch >= len(self.index):
                break
            fetch = min(fetch * 2, max(len(self.index), 1))
        return results[:k]

    def query_many(
        self,
        *,
        vectors: Optional[np.ndarray] = None,
        texts: Optional[Sequence[str]] = None,
        k: int = 10,
        where: Optional[MetadataFilter] = None,
        max_overfetch: int = 8,
    ) -> List[List[QueryResult]]:
        """Batched :meth:`query`: one result list per query.

        The whole batch is answered with a single :meth:`VectorIndex.search_many`
        call (matrix-matrix products on flat/IVF/PQ). Queries that come up
        short after filtering fall back to the single-query over-fetch loop.
        """
        if vectors is None:
            if texts is None:
                raise CollectionError("query_many needs vectors or texts")
            if self.embedder is None:
                raise CollectionError(f"collection {self.name!r} has no embedder")
            vectors = self.embedder.embed_batch(list(texts))
        vectors = np.asarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        per_query = self.index.search_many(vectors, k=k)
        out: List[List[QueryResult]] = []
        for qi, hits in enumerate(per_query):
            results = self._materialize(hits, where)
            if len(results) < k and len(hits) < len(self.index):
                # Filter ate too many hits: rerun this query alone with the
                # adaptive over-fetch loop.
                results = self.query(
                    vector=vectors[qi], k=k, where=where, max_overfetch=max_overfetch
                )
            out.append(results[:k])
        return out

    def _materialize(
        self, hits: List[SearchHit], where: Optional[MetadataFilter]
    ) -> List[QueryResult]:
        out: List[QueryResult] = []
        for hit in hits:
            record = self._records.get(hit.id)
            if record is None:
                continue
            if where is not None and not where(record.metadata):
                continue
            out.append(
                QueryResult(
                    id=hit.id,
                    score=hit.score,
                    text=record.text,
                    metadata=dict(record.metadata),
                )
            )
        return out


class VectorDatabase:
    """Named registry of collections with save/load."""

    def __init__(self, embedder: Optional[EmbeddingModel] = None) -> None:
        self.default_embedder = embedder
        self._collections: Dict[str, Collection] = {}

    def create_collection(
        self,
        name: str,
        dim: int,
        *,
        index_type: str = "flat",
        metric: str = "cosine",
        embedder: Optional[EmbeddingModel] = None,
        **index_kwargs: object,
    ) -> Collection:
        if name in self._collections:
            raise CollectionError(f"collection {name!r} already exists")
        collection = Collection(
            name,
            dim,
            index_type=index_type,
            metric=metric,
            embedder=embedder or self.default_embedder,
            **index_kwargs,
        )
        self._collections[name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionError(f"no collection named {name!r}") from None

    def drop_collection(self, name: str) -> bool:
        return self._collections.pop(name, None) is not None

    def list_collections(self) -> List[str]:
        return sorted(self._collections)

    # ---------------------------------------------------------- persistence
    def save(self, directory: str) -> None:
        """Persist all collections (vectors as npz, records as JSON).

        Indexes are rebuilt (flat layout) on load; graph/IVF structures are
        reconstructed from the raw vectors, matching how real stores
        snapshot data rather than data structures.
        """
        root = Path(directory)
        root.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, coll in self._collections.items():
            ids = [vid for vid in coll._records]
            vectors = (
                np.stack([coll.index.vector(vid) for vid in ids])
                if ids
                else np.zeros((0, coll.dim), dtype=np.float32)
            )
            np.savez_compressed(root / f"{name}.npz", vectors=vectors)
            records = [
                {
                    "id": r.id,
                    "text": r.text,
                    "metadata": r.metadata,
                }
                for r in (coll._records[vid] for vid in ids)
            ]
            (root / f"{name}.json").write_text(json.dumps(records))
            manifest[name] = {
                "dim": coll.dim,
                "index_type": coll.index_type,
                "metric": coll.index.metric,
                "index_kwargs": coll.index_kwargs,
            }
        (root / "manifest.json").write_text(json.dumps(manifest))

    @classmethod
    def load(
        cls, directory: str, *, embedder: Optional[EmbeddingModel] = None
    ) -> "VectorDatabase":
        root = Path(directory)
        manifest_path = root / "manifest.json"
        if not manifest_path.exists():
            raise CollectionError(f"no manifest in {directory!r}")
        manifest = json.loads(manifest_path.read_text())
        db = cls(embedder=embedder)
        for name, info in manifest.items():
            coll = db.create_collection(
                name,
                int(info["dim"]),
                index_type=str(info["index_type"]),
                metric=str(info["metric"]),
                # Older manifests predate hyperparameter persistence.
                **dict(info.get("index_kwargs", {})),
            )
            vectors = np.load(root / f"{name}.npz")["vectors"]
            records = json.loads((root / f"{name}.json").read_text())
            if records:
                coll.upsert(
                    [r["id"] for r in records],
                    vectors=vectors,
                    texts=[r["text"] for r in records],
                    metadatas=[r["metadata"] for r in records],
                )
        return db
