"""Minimal seeded k-means (Lloyd's algorithm with k-means++ init).

Shared by the IVF coarse quantizer, product quantization codebooks, and the
cluster-based coreset selector in ``repro.prep.selection``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..utils import derive_rng


@dataclass
class KMeansResult:
    """Fitted centroids plus per-point assignments and inertia."""

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float


def _plus_plus_init(data: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=data.dtype)
    first = int(rng.integers(0, n))
    centroids[0] = data[first]
    closest_sq = np.full(n, np.inf, dtype=np.float64)
    for i in range(1, k):
        diff = data - centroids[i - 1]
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        closest_sq = np.minimum(closest_sq, dist_sq)
        total = float(closest_sq.sum())
        if total <= 0.0:
            centroids[i] = data[int(rng.integers(0, n))]
            continue
        probs = closest_sq / total
        centroids[i] = data[int(rng.choice(n, p=probs))]
    return centroids


def kmeans(
    data: np.ndarray,
    k: int,
    *,
    max_iter: int = 25,
    seed: int = 0,
    tol: float = 1e-4,
) -> KMeansResult:
    """Fit k-means on ``data`` (``(n, d)``); deterministic for a given seed."""
    data = np.asarray(data, dtype=np.float32)
    if data.ndim != 2 or data.shape[0] == 0:
        raise ConfigError("kmeans requires a non-empty (n, d) matrix")
    n = data.shape[0]
    if k <= 0:
        raise ConfigError(f"k must be positive, got {k}")
    k = min(k, n)
    rng = derive_rng(seed, "kmeans", n, k)
    centroids = _plus_plus_init(data, k, rng)
    assignments = np.zeros(n, dtype=np.int64)
    prev_inertia: Optional[float] = None
    inertia = 0.0
    # Point norms never change across Lloyd iterations; compute them once.
    d_norms = np.einsum("ij,ij->i", data, data)
    for _ in range(max_iter):
        # Assign: squared distance via the expansion trick.
        cross = data @ centroids.T
        c_norms = np.einsum("ij,ij->i", centroids, centroids)
        dist_sq = d_norms[:, None] - 2.0 * cross + c_norms[None, :]
        assignments = np.argmin(dist_sq, axis=1)
        inertia = float(dist_sq[np.arange(n), assignments].sum())
        # Update.
        for c in range(k):
            members = data[assignments == c]
            if members.shape[0] > 0:
                centroids[c] = members.mean(axis=0)
            else:  # re-seed empty cluster at the farthest point
                far = int(np.argmax(dist_sq.min(axis=1)))
                centroids[c] = data[far]
        if prev_inertia is not None and abs(prev_inertia - inertia) <= tol * max(
            prev_inertia, 1e-12
        ):
            break
        prev_inertia = inertia
    return KMeansResult(centroids=centroids, assignments=assignments, inertia=inertia)
