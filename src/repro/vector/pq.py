"""Product-quantization index with asymmetric distance computation (ADC).

Splits each vector into ``num_subspaces`` chunks, k-means-codes each chunk
into one byte, and scores queries against codes via per-subspace lookup
tables. Trades a controlled accuracy loss for ~``dim*4 / num_subspaces``-fold
memory compression — the standard trick for RAM-bound vector stores.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import VectorIndexError
from .base import QUERY_CHUNK, VectorIndex
from .kmeans import kmeans


class PQIndex(VectorIndex):
    """Flat scan over PQ codes (IVF-free, so compression effects isolate)."""

    def __init__(
        self,
        dim: int,
        metric: str = "cosine",
        *,
        num_subspaces: int = 8,
        bits: int = 6,
        train_size: int = 256,
        rerank_factor: int = 8,
        seed: int = 0,
    ) -> None:
        super().__init__(dim, metric)
        if dim % num_subspaces:
            raise VectorIndexError(f"dim {dim} not divisible by num_subspaces {num_subspaces}")
        if not 2 <= bits <= 8:
            raise VectorIndexError("bits must be in [2, 8]")
        self.num_subspaces = num_subspaces
        self.sub_dim = dim // num_subspaces
        self.num_centroids = 1 << bits
        self.train_size = train_size
        if rerank_factor < 1:
            raise VectorIndexError("rerank_factor must be >= 1")
        self.rerank_factor = rerank_factor
        self.seed = seed
        self._codebooks: Optional[np.ndarray] = None  # (S, K, sub_dim)
        self._codes = np.zeros((0, num_subspaces), dtype=np.uint8)

    # ------------------------------------------------------------- training
    def _maybe_train(self) -> None:
        if self._codebooks is not None or self.total_rows < self.train_size:
            return
        live = self._vectors[~self._deleted]
        books = np.zeros(
            (self.num_subspaces, self.num_centroids, self.sub_dim), dtype=np.float32
        )
        for s in range(self.num_subspaces):
            chunk = live[:, s * self.sub_dim : (s + 1) * self.sub_dim]
            result = kmeans(chunk, self.num_centroids, seed=self.seed + s)
            books[s, : result.centroids.shape[0]] = result.centroids
        self._codebooks = books
        self._codes = self._encode(self._vectors)

    def _encode(self, vectors: np.ndarray) -> np.ndarray:
        assert self._codebooks is not None
        codes = np.zeros((vectors.shape[0], self.num_subspaces), dtype=np.uint8)
        for s in range(self.num_subspaces):
            chunk = vectors[:, s * self.sub_dim : (s + 1) * self.sub_dim]
            book = self._codebooks[s]
            cross = chunk @ book.T
            d = (
                np.einsum("ij,ij->i", chunk, chunk)[:, None]
                - 2.0 * cross
                + np.einsum("ij,ij->i", book, book)[None, :]
            )
            codes[:, s] = np.argmin(d, axis=1).astype(np.uint8)
        return codes

    def _on_add(self, rows: np.ndarray, vectors: np.ndarray) -> None:
        if self._codebooks is None:
            self._maybe_train()
            return
        self._codes = np.vstack([self._codes, self._encode(vectors)])

    # --------------------------------------------------------------- search
    def _search_ids_many(self, queries: np.ndarray, k: int) -> List[List[tuple]]:
        self._maybe_train()
        if self._codebooks is None:
            # Untrained: fall back to exact scan.
            return self._batch_topk(queries, k)
        # ADC: per-subspace dot-product tables for the whole chunk at once;
        # similarity is additive over subspaces. The rerank pool is selected
        # by ADC score and rescored exactly (standard PQ refinement); the
        # pool size trades recall against extra exact distance computations
        # (crucial when many points are near-equidistant).
        nq = queries.shape[0]
        n = self._codes.shape[0]
        pool = min(max(k * self.rerank_factor, k), n)
        qsub = queries.reshape(nq, self.num_subspaces, self.sub_dim)
        deleted = self._deleted[:n]
        any_deleted = self._num_deleted > 0 and bool(deleted.any())
        results: List[List[tuple]] = []
        for start in range(0, nq, QUERY_CHUNK):
            chunk = qsub[start : start + QUERY_CHUNK]
            tables = np.einsum("skd,nsd->nsk", self._codebooks, chunk)
            scores = np.zeros((chunk.shape[0], n), dtype=np.float32)
            for s in range(self.num_subspaces):
                scores += tables[:, s, self._codes[:, s]]
            if any_deleted:
                scores[:, deleted] = -np.inf
            for i in range(chunk.shape[0]):
                if pool < n:
                    top = np.argpartition(scores[i], n - pool)[n - pool :]
                else:
                    top = np.arange(n)
                top = top[np.isfinite(scores[i][top])]  # drop deleted rows
                exact = self._exact_scores(top, queries[start + i])
                order = np.argsort(-exact, kind="stable")
                results.append(
                    [(int(r), float(v)) for r, v in zip(top[order], exact[order])]
                )
        return results

    def _on_compact(self, live: np.ndarray, row_map: np.ndarray) -> None:
        if self._codebooks is not None:
            self._codes = self._codes[live]

    # ----------------------------------------------------------- reporting
    def compression_ratio(self) -> float:
        """float32 bytes per vector divided by PQ code bytes per vector."""
        return (self.dim * 4.0) / float(self.num_subspaces)
