"""Vector indexes and the vector database (Figure 1 "Vec Index" / "Vector Database")."""

from .base import SearchHit, VectorIndex
from .database import Collection, QueryResult, Record, VectorDatabase
from .flat import FlatIndex
from .hnsw import HNSWIndex
from .ivf import IVFIndex
from .kmeans import KMeansResult, kmeans
from .lsh import LSHIndex
from .metrics import normalize_rows, resolve_metric
from .pq import PQIndex

__all__ = [
    "SearchHit",
    "VectorIndex",
    "Collection",
    "QueryResult",
    "Record",
    "VectorDatabase",
    "FlatIndex",
    "HNSWIndex",
    "IVFIndex",
    "KMeansResult",
    "kmeans",
    "LSHIndex",
    "normalize_rows",
    "resolve_metric",
    "PQIndex",
]
