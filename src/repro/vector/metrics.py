"""Distance/similarity metrics shared by all vector indexes.

All indexes operate in *similarity* space (higher is better). Cosine assumes
callers may pass unnormalized vectors; indexes normalize on ingest when the
metric is cosine so search is a plain dot product.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..errors import ConfigError


def dot_scores(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Inner-product similarity of ``query`` against each row of ``matrix``."""
    return matrix @ query


def l2_scores(query: np.ndarray, matrix: np.ndarray) -> np.ndarray:
    """Negative squared euclidean distance (so higher is better)."""
    diff = matrix - query
    return -np.einsum("ij,ij->i", diff, diff)


METRICS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "cosine": dot_scores,  # rows are normalized on ingest
    "dot": dot_scores,
    "l2": l2_scores,
}


def resolve_metric(name: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a metric by name, raising :class:`ConfigError` on unknown."""
    try:
        return METRICS[name]
    except KeyError:
        raise ConfigError(f"unknown metric {name!r}; choose from {sorted(METRICS)}") from None


def normalize_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise L2 normalization (zero rows left untouched)."""
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms
