"""Replay driver: run a workload through a StreamingCorpus and measure it.

Staleness (arrival -> retrievable) follows the single-server queue
recurrence ``ready_i = max(arrival_i, ready_{i-1}) + service_i``: a batch
cannot start ingesting before it arrives or before the previous batch
finished, and every document in a batch becomes retrievable when its batch
finishes. Service times come from an *injected* clock (the perf harness
passes a monotonic timer) or from a deterministic cost model (tests) —
this module itself never reads a wall clock, keeping replays reproducible.

``convergence_check`` quantifies the tentpole guarantee: after any replay,
the incremental path's survivors are identical to a from-scratch rebuild
and its recall@k matches the rebuild's within tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..prep.dedup import MinHashDeduper
from ..utils import derive_rng
from ..vector.database import Collection
from ..vector.flat import FlatIndex
from .corpus import IngestReport, StreamingCorpus
from .workload import StreamEvent


@dataclass(frozen=True)
class StreamReport:
    """Aggregate metrics of one replay."""

    docs: int
    admitted: int
    rejected: int
    evicted: int
    refreshes: int
    rebalances: int
    total_service: float
    makespan: float
    mean_staleness: float
    p95_staleness: float
    max_staleness: float

    @property
    def docs_per_sec(self) -> float:
        """Steady-state ingest rate (documents over total service time)."""
        return self.docs / self.total_service if self.total_service > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "docs": float(self.docs),
            "admitted": float(self.admitted),
            "rejected": float(self.rejected),
            "evicted": float(self.evicted),
            "refreshes": float(self.refreshes),
            "rebalances": float(self.rebalances),
            "total_service_s": self.total_service,
            "makespan_s": self.makespan,
            "docs_per_sec": self.docs_per_sec,
            "mean_staleness_s": self.mean_staleness,
            "p95_staleness_s": self.p95_staleness,
            "max_staleness_s": self.max_staleness,
        }


def replay(
    corpus: StreamingCorpus,
    events: Sequence[StreamEvent],
    *,
    clock: Optional[Callable[[], float]] = None,
    cost_model: Optional[Callable[[IngestReport], float]] = None,
) -> StreamReport:
    """Ingest every event in arrival order; returns throughput + staleness.

    Exactly one of ``clock`` (measured service times, e.g.
    ``time.perf_counter`` injected by the perf harness) or ``cost_model``
    (deterministic service time per batch report) may be supplied; with
    neither, service time is zero and staleness reflects pure queueing.
    """
    if clock is not None and cost_model is not None:
        raise ConfigError("pass clock or cost_model, not both")
    staleness: List[float] = []
    weights: List[int] = []
    ready = 0.0
    total_service = 0.0
    admitted = rejected = evicted = refreshes = rebalances = 0
    for event in events:
        if clock is not None:
            t0 = clock()
            report = corpus.ingest(list(event.docs))
            service = clock() - t0
        else:
            report = corpus.ingest(list(event.docs))
            service = cost_model(report) if cost_model is not None else 0.0
        total_service += service
        ready = max(event.arrival, ready) + service
        staleness.append(ready - event.arrival)
        weights.append(len(event.docs))
        admitted += report.admitted
        rejected += report.rejected
        evicted += report.evicted
        refreshes += int(report.refreshed)
        rebalances += int(report.rebalanced)
    if not staleness:
        return StreamReport(
            docs=0, admitted=0, rejected=0, evicted=0, refreshes=0,
            rebalances=0, total_service=0.0, makespan=0.0,
            mean_staleness=0.0, p95_staleness=0.0, max_staleness=0.0,
        )
    stale = np.repeat(
        np.array(staleness, dtype=np.float64),
        np.array(weights, dtype=np.int64),
    )
    return StreamReport(
        docs=int(stale.shape[0]),
        admitted=admitted,
        rejected=rejected,
        evicted=evicted,
        refreshes=refreshes,
        rebalances=rebalances,
        total_service=total_service,
        makespan=ready,
        mean_staleness=float(stale.mean()),
        p95_staleness=float(np.quantile(stale, 0.95)),
        max_staleness=float(stale.max()),
    )


# ---------------------------------------------------------------- convergence
def rebuild_from_scratch(
    all_docs: Sequence[TrainingDocument],
    *,
    like: StreamingCorpus,
) -> Tuple[Collection, EmbeddingModel, List[str]]:
    """The frozen baseline: batch-dedup, batch-fit IDF, embed, build fresh.

    Components are reconstructed from ``like``'s hyperparameters (same
    seeds, same index kwargs) so the only difference from the streaming
    path is *when* work happened, not *what* was configured.
    """
    deduper = MinHashDeduper(
        num_permutations=like.deduper.num_permutations,
        bands=like.deduper.bands,
        rows_per_band=like.deduper.rows_per_band,
        shingle_size=like.deduper.shingle_size,
        verify_threshold=like.deduper.verify_threshold,
        seed=like.deduper.seed,
    )
    kept = deduper.dedup(all_docs).kept
    embedder = EmbeddingModel(
        dim=like.embedder.dim,
        seed=like.embedder.seed,
        stem_len=like.embedder.stem_len,
        stem_weight=like.embedder.stem_weight,
        bigram_weight=like.embedder.bigram_weight,
    )
    texts = [d.text for d in kept]
    embedder.fit_idf(texts)
    vectors = embedder.embed_batch(texts)
    collection = Collection(
        "rebuild",
        like.dim,
        index_type=like.index_type,
        metric=like.collection.index.metric,
        **like.collection.index_kwargs,
    )
    if kept:
        collection.upsert([d.doc_id for d in kept], vectors=vectors, texts=texts)
    return collection, embedder, sorted(d.doc_id for d in kept)


def _recall_at_k(
    collection: Collection, queries: np.ndarray, k: int
) -> float:
    """Mean recall@k of ``collection``'s index against exact flat search
    over the same vectors (each path scored in its own embedding space)."""
    ids = sorted(r for r in collection._records)
    if not ids:
        return 1.0
    vectors = np.stack([collection.index.vector(i) for i in ids])
    exact = FlatIndex(collection.dim, collection.index.metric)
    exact.add(ids, vectors)
    truth = exact.search_many(queries, k=k)
    approx = collection.query_many(vectors=queries, k=k)
    total = 0.0
    for t_hits, a_hits in zip(truth, approx):
        t_ids = {h.id for h in t_hits}
        if not t_ids:
            continue
        total += len(t_ids & {h.id for h in a_hits}) / len(t_ids)
    return total / len(truth) if truth else 1.0


def convergence_check(
    corpus: StreamingCorpus,
    all_docs: Sequence[TrainingDocument],
    *,
    num_queries: int = 32,
    k: int = 10,
    seed: int = 0,
) -> Dict[str, float]:
    """Compare the streamed corpus against a from-scratch rebuild.

    Returns ``survivors_match`` (1.0 iff the kept doc_id sets are
    identical — the provable guarantee), each path's recall@k against
    exact search in its own embedding space, and the gap. Query texts are
    a seeded sample of the corpus.
    """
    rebuild_coll, rebuild_embedder, rebuild_kept = rebuild_from_scratch(
        all_docs, like=corpus
    )
    survivors_match = corpus.live_doc_ids() == rebuild_kept
    rng = derive_rng(seed, "stream-queries")
    pick = rng.integers(0, max(len(all_docs), 1), size=num_queries)
    query_texts = [all_docs[int(i)].text for i in pick]
    stream_q = corpus.embedder.embed_batch(query_texts)
    rebuild_q = rebuild_embedder.embed_batch(query_texts)
    stream_recall = _recall_at_k(corpus.collection, stream_q, k)
    rebuild_recall = _recall_at_k(rebuild_coll, rebuild_q, k)
    return {
        "survivors_match": 1.0 if survivors_match else 0.0,
        "live_docs": float(len(corpus)),
        "rebuild_docs": float(len(rebuild_kept)),
        "stream_recall": stream_recall,
        "rebuild_recall": rebuild_recall,
        "recall_gap": stream_recall - rebuild_recall,
    }
