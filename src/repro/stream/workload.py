"""Seeded arrival workloads for the streaming-ingestion driver.

Documents arrive in batches at Poisson times (exponential inter-arrivals,
the standard open-loop model), generated from a derived RNG so the same
(docs, rate, seed) always produces the same event sequence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..utils import derive_rng


@dataclass(frozen=True)
class StreamEvent:
    """One arrival: a batch of documents at an absolute time (seconds)."""

    arrival: float
    docs: Tuple[TrainingDocument, ...]


def poisson_stream(
    docs: Sequence[TrainingDocument],
    *,
    batch_size: int = 64,
    rate: float = 10.0,
    seed: int = 0,
) -> List[StreamEvent]:
    """Chunk ``docs`` into batches arriving as a Poisson process.

    ``rate`` is batch arrivals per second. Documents keep their input
    order (ingestion order is semantically meaningful for dedup: the
    oldest cluster member is the kept representative).
    """
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    if rate <= 0:
        raise ConfigError(f"rate must be positive, got {rate}")
    num_batches = (len(docs) + batch_size - 1) // batch_size
    rng = derive_rng(seed, "stream-arrivals")
    gaps = rng.exponential(1.0 / rate, size=max(num_batches, 1))
    events: List[StreamEvent] = []
    t = 0.0
    for b in range(num_batches):
        t += float(gaps[b])
        batch = tuple(docs[b * batch_size : (b + 1) * batch_size])
        events.append(StreamEvent(arrival=t, docs=batch))
    return events
