"""Streaming data flywheel: incremental dedup -> online embed -> live index.

Closes the loop of §2.3 for continuously arriving corpora: the batch prep
pipeline's stages get incremental counterparts (persistent MinHash
signature store, pinned/online IDF, insert/delete-capable ANN indexes) and
this package wires them into one measurable driver with a seeded arrival
workload, a staleness-accounting replay, and a convergence check against a
from-scratch rebuild.
"""

from .corpus import IngestReport, StreamingCorpus
from .replay import (
    StreamReport,
    convergence_check,
    rebuild_from_scratch,
    replay,
)
from .workload import StreamEvent, poisson_stream

__all__ = [
    "IngestReport",
    "StreamEvent",
    "StreamReport",
    "StreamingCorpus",
    "convergence_check",
    "poisson_stream",
    "rebuild_from_scratch",
    "replay",
]
