"""Streaming corpus: dedup -> embed -> index as one incremental pipeline.

The streaming counterpart of the batch prep pipeline (§2.3.2): documents
arrive in batches, near-duplicates are admitted or rejected against the
persistent MinHash signature store, admitted documents are embedded under
the embedder's *pinned* IDF statistics (so query and index vectors share a
space), and vectors land in a live ANN index via incremental insert.
Evictions (an arriving document bridging two previously distinct duplicate
clusters) delete the demoted representative from the index; IDF drift past
a threshold triggers a re-embed of the live set; IVF occupancy skew
triggers a coarse-quantizer rebalance. The result converges to a full
rebuild: identical dedup survivors (proven equivalence, see
``prep/dedup.py``) and matching retrieval quality (measured in
``replay.convergence_check``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..prep.dedup import MinHashDeduper
from ..vector.database import Collection
from ..vector.ivf import IVFIndex


@dataclass(frozen=True)
class IngestReport:
    """Outcome of one :meth:`StreamingCorpus.ingest` batch."""

    arrived: int
    admitted: int
    rejected: int
    evicted: int
    refreshed: bool
    reembedded: int
    rebalanced: bool


class StreamingCorpus:
    """Incremental dedup + online-IDF embedding + live ANN index.

    Parameters
    ----------
    dim:
        Embedding dimensionality (must match ``embedder.dim`` if one is
        supplied).
    index_type / metric / index_kwargs:
        Forwarded to the underlying :class:`~repro.vector.database.Collection`.
    embedder / deduper:
        Injectable components; defaults are seeded from ``seed``.
    refresh_threshold:
        IDF drift past which the embedder re-pins and the live corpus is
        re-embedded (see :meth:`EmbeddingModel.refresh`).
    auto_rebalance:
        Run :meth:`IVFIndex.maybe_rebalance` after each batch (no-op for
        other index types).
    compact_fraction:
        Tombstone fraction past which the index is compacted after a
        batch. Deletes come from evictions and from refresh re-embeds
        (an upsert replaces rows); without compaction a refresh at n live
        documents would leave n tombstones behind.
    """

    def __init__(
        self,
        *,
        dim: int = 64,
        index_type: str = "hnsw",
        metric: str = "cosine",
        embedder: Optional[EmbeddingModel] = None,
        deduper: Optional[MinHashDeduper] = None,
        refresh_threshold: float = 0.05,
        auto_rebalance: bool = True,
        compact_fraction: float = 0.3,
        seed: int = 0,
        **index_kwargs: object,
    ) -> None:
        if refresh_threshold < 0:
            raise ConfigError(
                f"refresh_threshold must be >= 0, got {refresh_threshold}"
            )
        if not 0.0 < compact_fraction <= 1.0:
            raise ConfigError(
                f"compact_fraction must be in (0, 1], got {compact_fraction}"
            )
        self.embedder = embedder or EmbeddingModel(dim=dim, seed=seed)
        if self.embedder.dim != dim:
            raise ConfigError(
                f"embedder dim {self.embedder.dim} != corpus dim {dim}"
            )
        self.deduper = deduper or MinHashDeduper(seed=seed)
        self.collection = Collection(
            "stream", dim, index_type=index_type, metric=metric, **index_kwargs
        )
        self.dim = dim
        self.index_type = index_type
        self.refresh_threshold = refresh_threshold
        self.auto_rebalance = auto_rebalance
        self.compact_fraction = compact_fraction
        self._live: Dict[str, TrainingDocument] = {}
        self.refreshes = 0
        self.rebalances = 0

    # ------------------------------------------------------------- ingestion
    def ingest(self, docs: Sequence[TrainingDocument]) -> IngestReport:
        """Admit one arrival batch; returns what happened.

        Order matters: evictions are applied before inserts (an arriving
        bridge document may both evict an old representative and itself be
        rejected), inserts are embedded under the current IDF pin, and the
        drift check runs last so a refresh re-embeds the batch too.
        """
        result = self.deduper.dedup_incremental(docs)
        for doc_id in result.evicted:
            self.collection.delete(doc_id)
            self._live.pop(doc_id, None)
        if result.admitted:
            texts = [d.text for d in result.admitted]
            self.embedder.partial_fit_idf(texts)
            vectors = self.embedder.embed_batch(texts)
            self.collection.upsert(
                [d.doc_id for d in result.admitted],
                vectors=vectors,
                texts=texts,
                metadatas=[{"domain": d.domain} for d in result.admitted],
            )
            for doc in result.admitted:
                self._live[doc.doc_id] = doc
        refreshed = self.embedder.refresh(self.refresh_threshold)
        reembedded = 0
        if refreshed:
            self.refreshes += 1
            reembedded = self._reembed_all()
        if self.collection.index.tombstone_fraction > self.compact_fraction:
            self.collection.index.compact()
        rebalanced = False
        if self.auto_rebalance and isinstance(self.collection.index, IVFIndex):
            rebalanced = self.collection.index.maybe_rebalance()
            if rebalanced:
                self.rebalances += 1
        return IngestReport(
            arrived=len(docs),
            admitted=len(result.admitted),
            rejected=len(result.rejected),
            evicted=len(result.evicted),
            refreshed=refreshed,
            reembedded=reembedded,
            rebalanced=rebalanced,
        )

    def _reembed_all(self) -> int:
        """Re-embed every live document under the freshly pinned IDF stats."""
        if not self._live:
            return 0
        ids = list(self._live)
        docs = [self._live[i] for i in ids]
        texts = [d.text for d in docs]
        vectors = self.embedder.embed_batch(texts)
        self.collection.upsert(
            ids,
            vectors=vectors,
            texts=texts,
            metadatas=[{"domain": d.domain} for d in docs],
        )
        return len(ids)

    # --------------------------------------------------------------- queries
    def search(self, text: str, k: int = 10) -> List[str]:
        """Top-k live doc_ids for a text query (pinned embedding space)."""
        vector = self.embedder.embed(text)
        return [hit.id for hit in self.collection.query(vector=vector, k=k)]

    def search_vectors(self, queries: np.ndarray, k: int = 10) -> List[List[str]]:
        """Batched top-k doc_ids for pre-embedded queries."""
        per_query = self.collection.query_many(vectors=queries, k=k)
        return [[hit.id for hit in hits] for hits in per_query]

    # ------------------------------------------------------------ inspection
    def __len__(self) -> int:
        return len(self._live)

    def live_doc_ids(self) -> List[str]:
        """doc_ids currently retrievable, sorted."""
        return sorted(self._live)

    def live_docs(self) -> List[TrainingDocument]:
        """Live documents sorted by doc_id."""
        return [self._live[i] for i in sorted(self._live)]

    def live_vectors(self) -> np.ndarray:
        """``(n, dim)`` matrix of the live vectors, in sorted doc_id order."""
        ids = self.live_doc_ids()
        if not ids:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack([self.collection.index.vector(i) for i in ids])
