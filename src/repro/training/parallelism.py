"""Parallel training strategies: memory and step-time models.

Implements the published per-GPU memory formulas the tutorial points at
(§2.3.2 Data Parallelism):

=============  =======================================================
strategy       per-GPU model-state bytes (P params, N data-parallel)
=============  =======================================================
ddp            (2 + 2 + 12) * P
zero1          (2 + 2) * P + 12 * P / N
zero2          2 * P + (2 + 12) * P / N
zero3 / fsdp   (2 + 2 + 12) * P / N
=============  =======================================================

combined with tensor parallelism (divide by TP degree) and pipeline
parallelism (layers divided across PP stages), plus a step-time model with
the per-strategy communication volumes (DDP: one 2P-byte gradient
all-reduce; ZeRO-3 adds weight all-gathers in forward and backward) and
the GPipe bubble term for pipeline schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..errors import ConfigError
from .cluster import GIB, ClusterSpec
from .model_spec import (
    BYTES_PER_PARAM_GRADS,
    BYTES_PER_PARAM_OPTIMIZER,
    BYTES_PER_PARAM_WEIGHTS,
    TrainModelSpec,
)

STRATEGIES = ("ddp", "zero1", "zero2", "zero3", "fsdp")


@dataclass(frozen=True)
class ParallelConfig:
    """A (data, tensor, pipeline) decomposition of the world."""

    strategy: str = "ddp"
    dp: int = 1
    tp: int = 1
    pp: int = 1
    micro_batch: int = 1
    micro_batches_per_step: int = 8
    checkpoint_activations: bool = True

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ConfigError(f"unknown strategy {self.strategy!r}; have {STRATEGIES}")
        if min(self.dp, self.tp, self.pp, self.micro_batch, self.micro_batches_per_step) < 1:
            raise ConfigError("parallel degrees must be >= 1")

    @property
    def world_size(self) -> int:
        return self.dp * self.tp * self.pp

    @property
    def global_batch(self) -> int:
        return self.dp * self.micro_batch * self.micro_batches_per_step


def model_state_bytes_per_gpu(spec: TrainModelSpec, config: ParallelConfig) -> float:
    """Per-GPU model-state memory under the published sharding formulas."""
    # TP and PP both shard the parameter tensor itself.
    local_params = spec.params / (config.tp * config.pp)
    w, g, o = (
        BYTES_PER_PARAM_WEIGHTS,
        BYTES_PER_PARAM_GRADS,
        BYTES_PER_PARAM_OPTIMIZER,
    )
    n = config.dp
    if config.strategy == "ddp":
        per_param = w + g + o
    elif config.strategy == "zero1":
        per_param = w + g + o / n
    elif config.strategy == "zero2":
        per_param = w + (g + o) / n
    else:  # zero3 / fsdp
        per_param = (w + g + o) / n
    return local_params * per_param


def activation_bytes_per_gpu(spec: TrainModelSpec, config: ParallelConfig) -> float:
    """Per-GPU activation memory (TP shards activations; PP shards layers)."""
    full = spec.activation_bytes(
        config.micro_batch, checkpoint_activations=config.checkpoint_activations
    )
    return full / (config.tp * config.pp)


def total_bytes_per_gpu(spec: TrainModelSpec, config: ParallelConfig) -> float:
    return model_state_bytes_per_gpu(spec, config) + activation_bytes_per_gpu(spec, config)


def fits(
    spec: TrainModelSpec, config: ParallelConfig, cluster: ClusterSpec, *, headroom: float = 0.9
) -> bool:
    """Does the configuration fit in GPU memory (with fragmentation headroom)?"""
    return total_bytes_per_gpu(spec, config) <= cluster.gpu.memory_bytes * headroom


def max_trainable_params(
    strategy: str,
    dp: int,
    gpu_memory_bytes: float,
    *,
    activation_budget: float = 0.2,
) -> float:
    """Largest parameter count trainable per the memory formula alone.

    ``activation_budget`` reserves a fraction of memory for activations.
    """
    budget = gpu_memory_bytes * (1.0 - activation_budget)
    w, g, o = (
        BYTES_PER_PARAM_WEIGHTS,
        BYTES_PER_PARAM_GRADS,
        BYTES_PER_PARAM_OPTIMIZER,
    )
    if strategy == "ddp":
        per_param = w + g + o
    elif strategy == "zero1":
        per_param = w + g + o / dp
    elif strategy == "zero2":
        per_param = w + (g + o) / dp
    elif strategy in {"zero3", "fsdp"}:
        per_param = (w + g + o) / dp
    else:
        raise ConfigError(f"unknown strategy {strategy!r}")
    return budget / per_param


@dataclass
class StepTimeBreakdown:
    """Where one optimizer step's time goes (seconds)."""

    compute: float
    dp_communication: float
    tp_communication: float
    pipeline_bubble: float

    @property
    def total(self) -> float:
        return self.compute + self.dp_communication + self.tp_communication + self.pipeline_bubble

    @property
    def communication_fraction(self) -> float:
        if self.total == 0:
            return 0.0
        return (self.dp_communication + self.tp_communication) / self.total


def step_time(
    spec: TrainModelSpec, config: ParallelConfig, cluster: ClusterSpec
) -> StepTimeBreakdown:
    """One-step wall time under the analytic model."""
    if config.world_size > cluster.world_size:
        raise ConfigError(
            f"config needs {config.world_size} GPUs, cluster has {cluster.world_size}"
        )
    tokens_per_gpu = (
        config.micro_batch * config.micro_batches_per_step * spec.seq_len
    ) / (config.tp * config.pp) * 1.0
    # Activation recomputation adds ~1/3 extra forward compute.
    recompute_factor = 4.0 / 3.0 if config.checkpoint_activations else 1.0
    compute = (
        spec.flops_per_token() * tokens_per_gpu * recompute_factor
    ) / cluster.gpu.effective_flops

    local_params = spec.params / (config.tp * config.pp)
    grad_bytes = local_params * BYTES_PER_PARAM_GRADS
    if config.strategy == "ddp":
        dp_comm = cluster.allreduce_time(grad_bytes, config.dp)
    elif config.strategy in {"zero1", "zero2"}:
        # reduce-scatter + all-gather of updated weights ~ one all-reduce.
        dp_comm = cluster.allreduce_time(grad_bytes, config.dp)
    else:  # zero3/fsdp: per-step weight all-gathers (fwd + bwd) + grad reduce-scatter
        weight_bytes = local_params * BYTES_PER_PARAM_WEIGHTS
        dp_comm = 2.0 * cluster.allgather_time(
            weight_bytes, config.dp
        ) + cluster.allreduce_time(grad_bytes, config.dp)

    # TP: two all-reduces of activations per layer (fwd) and two (bwd).
    if config.tp > 1:
        act_bytes = spec.seq_len * config.micro_batch * spec.hidden_size * 2.0
        per_layer = 4.0 * cluster.allreduce_time(act_bytes, config.tp)
        tp_comm = per_layer * spec.num_layers / config.pp * config.micro_batches_per_step
    else:
        tp_comm = 0.0

    # GPipe bubble: (pp - 1) / (m + pp - 1) of the pipeline is idle.
    if config.pp > 1:
        m = config.micro_batches_per_step
        bubble_fraction = (config.pp - 1) / (m + config.pp - 1)
        pipeline_bubble = compute * bubble_fraction / max(1.0 - bubble_fraction, 1e-9)
    else:
        pipeline_bubble = 0.0

    return StepTimeBreakdown(
        compute=compute,
        dp_communication=dp_comm,
        tp_communication=tp_comm,
        pipeline_bubble=pipeline_bubble,
    )


def plan_parallelism(
    spec: TrainModelSpec,
    cluster: ClusterSpec,
    *,
    strategies: Iterable[str] = STRATEGIES,
    micro_batch: int = 1,
    micro_batches_per_step: int = 8,
) -> List[Dict[str, object]]:
    """Search (strategy, dp, tp, pp) configs that fit; rank by step time.

    Returns feasible configurations sorted fastest-first, each with its
    memory and time breakdown — the auto-parallelism planner's core loop.
    """
    world = cluster.world_size
    results: List[Dict[str, object]] = []
    degrees = [d for d in (1, 2, 4, 8, 16, 32, 64) if d <= world]
    for strategy in strategies:
        for tp in degrees:
            if tp > cluster.gpus_per_node:
                continue  # TP across nodes is impractical
            for pp in degrees:
                if tp * pp > world or world % (tp * pp):
                    continue
                dp = world // (tp * pp)
                config = ParallelConfig(
                    strategy=strategy,
                    dp=dp,
                    tp=tp,
                    pp=pp,
                    micro_batch=micro_batch,
                    micro_batches_per_step=micro_batches_per_step,
                )
                if not fits(spec, config, cluster):
                    continue
                breakdown = step_time(spec, config, cluster)
                results.append(
                    {
                        "config": config,
                        "step_time_s": breakdown.total,
                        "memory_gb": total_bytes_per_gpu(spec, config) / GIB,
                        "breakdown": breakdown,
                    }
                )
    results.sort(key=lambda r: r["step_time_s"])
    return results
