"""Transformer training-footprint arithmetic.

The memory and FLOPs formulas that ZeRO [47], FSDP [68] and Megatron [40]
results are built on:

* mixed-precision training state per parameter: 2 bytes weights (fp16),
  2 bytes gradients, and K = 12 bytes optimizer state (fp32 master copy +
  Adam momentum + variance) — so 16 bytes/param unsharded;
* activation memory per layer ~ s*b*h*(34 + 5*a*s/h) bytes (Megatron-LM
  recomputation paper), with checkpointed-activation variants;
* training compute ~ 6 * params * tokens FLOPs (forward 2, backward 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import ConfigError

BYTES_PER_PARAM_WEIGHTS = 2.0  # fp16/bf16
BYTES_PER_PARAM_GRADS = 2.0
BYTES_PER_PARAM_OPTIMIZER = 12.0  # fp32 master + Adam m + v
GIB = 1024.0**3


@dataclass(frozen=True)
class TrainModelSpec:
    """Architecture of a model being trained."""

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    vocab_size: int = 50_000
    seq_len: int = 2048

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads:
            raise ConfigError("hidden_size must be divisible by num_heads")
        if min(self.num_layers, self.hidden_size, self.num_heads) <= 0:
            raise ConfigError("architecture dims must be positive")

    # ------------------------------------------------------------ parameters
    @property
    def params(self) -> float:
        """Approximate parameter count: 12*l*h^2 + 2*V*h (embeddings tied)."""
        transformer = 12.0 * self.num_layers * self.hidden_size**2
        embeddings = 2.0 * self.vocab_size * self.hidden_size
        return transformer + embeddings

    @property
    def params_b(self) -> float:
        return self.params / 1e9

    # --------------------------------------------------------------- memory
    def state_bytes(self) -> Dict[str, float]:
        """Unsharded training-state bytes by component."""
        p = self.params
        return {
            "weights": p * BYTES_PER_PARAM_WEIGHTS,
            "gradients": p * BYTES_PER_PARAM_GRADS,
            "optimizer": p * BYTES_PER_PARAM_OPTIMIZER,
        }

    def activation_bytes(
        self, micro_batch: int, *, checkpoint_activations: bool = True
    ) -> float:
        """Activation memory for one micro-batch across all local layers.

        With activation checkpointing only the per-layer boundary
        activations are retained (s*b*h*2 bytes each) plus one layer's full
        working set; without it, the full 34*s*b*h + 5*a*s^2*b term per
        layer is resident.
        """
        s, b, h, a = self.seq_len, micro_batch, self.hidden_size, self.num_heads
        full_per_layer = s * b * h * 34.0 + 5.0 * a * s * s * b
        if checkpoint_activations:
            boundary = s * b * h * 2.0 * self.num_layers
            return boundary + full_per_layer
        return full_per_layer * self.num_layers

    # -------------------------------------------------------------- compute
    def flops_per_token(self) -> float:
        """Training FLOPs per token (the 6N rule)."""
        return 6.0 * self.params

    def step_flops(self, global_batch: int) -> float:
        """FLOPs for one optimizer step."""
        return self.flops_per_token() * global_batch * self.seq_len


# Reference sizes used across benchmarks and docs.
MODEL_ZOO: Dict[str, TrainModelSpec] = {
    "tiny-125m": TrainModelSpec("tiny-125m", num_layers=12, hidden_size=768, num_heads=12),
    "small-1b": TrainModelSpec("small-1b", num_layers=24, hidden_size=2048, num_heads=16),
    "base-7b": TrainModelSpec("base-7b", num_layers=32, hidden_size=4096, num_heads=32),
    "large-13b": TrainModelSpec("large-13b", num_layers=40, hidden_size=5120, num_heads=40),
    "xl-70b": TrainModelSpec("xl-70b", num_layers=80, hidden_size=8192, num_heads=64),
}


def get_model_spec(name: str) -> TrainModelSpec:
    try:
        return MODEL_ZOO[name]
    except KeyError:
        raise ConfigError(f"unknown model {name!r}; have {sorted(MODEL_ZOO)}") from None
