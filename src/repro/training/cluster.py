"""Simulated GPU training cluster.

Substitutes for real training hardware (DESIGN.md §1): capacities,
bandwidths and failure behaviour are explicit parameters, so parallelism
memory math, checkpoint stall analysis, and failure-recovery goodput are
exactly computable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ClusterError
from ..utils import derive_rng

GIB = 1024.0**3


@dataclass(frozen=True)
class GPUSpec:
    """One accelerator's capabilities (defaults approximate an A100-80G)."""

    memory_gb: float = 80.0
    flops: float = 312e12  # dense bf16
    mfu: float = 0.42  # achieved model-FLOPs utilization

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * GIB

    @property
    def effective_flops(self) -> float:
        return self.flops * self.mfu


@dataclass(frozen=True)
class ClusterSpec:
    """Cluster topology and reliability."""

    num_nodes: int = 4
    gpus_per_node: int = 8
    gpu: GPUSpec = field(default_factory=GPUSpec)
    intra_node_bw: float = 300e9  # NVLink bytes/s per GPU
    inter_node_bw: float = 25e9  # IB bytes/s per GPU
    storage_write_bw: float = 2e9  # checkpoint store bytes/s per writer
    storage_read_bw: float = 5e9
    mtbf_hours: float = 100.0  # per-cluster mean time between failures

    def __post_init__(self) -> None:
        if self.num_nodes <= 0 or self.gpus_per_node <= 0:
            raise ClusterError("cluster dims must be positive")
        if self.mtbf_hours <= 0:
            raise ClusterError("mtbf_hours must be positive")

    @property
    def world_size(self) -> int:
        return self.num_nodes * self.gpus_per_node

    def collective_bandwidth(self, group_size: int) -> float:
        """Per-GPU bandwidth available to a collective of ``group_size``.

        Groups that fit in one node ride NVLink; anything larger is bound
        by the inter-node fabric.
        """
        if group_size <= 1:
            return float("inf")
        if group_size <= self.gpus_per_node:
            return self.intra_node_bw
        return self.inter_node_bw

    def allreduce_time(self, bytes_per_gpu: float, group_size: int) -> float:
        """Ring all-reduce time: 2*(n-1)/n * bytes / bw."""
        if group_size <= 1:
            return 0.0
        bw = self.collective_bandwidth(group_size)
        return 2.0 * (group_size - 1) / group_size * bytes_per_gpu / bw

    def allgather_time(self, bytes_per_gpu: float, group_size: int) -> float:
        """Ring all-gather time: (n-1)/n * bytes / bw."""
        if group_size <= 1:
            return 0.0
        bw = self.collective_bandwidth(group_size)
        return (group_size - 1) / group_size * bytes_per_gpu / bw


class FailureModel:
    """Seeded exponential failure process for the whole cluster."""

    def __init__(self, cluster: ClusterSpec, seed: int = 0) -> None:
        self.cluster = cluster
        self.seed = seed

    def failure_times(self, horizon_hours: float) -> List[float]:
        """Failure timestamps (hours) within the horizon."""
        rng = derive_rng(self.seed, "failures")
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.cluster.mtbf_hours))
            if t >= horizon_hours:
                return times
            times.append(t)
