"""Checkpoint resharding: change world size / layout without losing state.

The problem UCP [33], ByteCheckpoint [56] and PyTorch DCP [51] solve: a
run saved under one parallel configuration must resume under another. The
universal-checkpoint approach is implemented literally:

1. each rank's shard holds a contiguous slice of every tensor's flattened
   value range (:func:`shard_state`);
2. resharding consolidates shards into the atomic (unsharded) state
   (:func:`consolidate`) and re-slices for the target layout
   (:func:`reshard`);
3. round-trips are bit-identical (verified by tests and benchmark E14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ...errors import CheckpointError
from .formats import State, states_equal


@dataclass
class Shard:
    """One rank's slice of the global state."""

    rank: int
    world_size: int
    # name -> (start, stop) in the tensor's flattened range, plus the values
    slices: Dict[str, Tuple[int, int, np.ndarray]] = field(default_factory=dict)


@dataclass
class ShardedState:
    """A complete sharded checkpoint: manifest + all ranks' shards."""

    world_size: int
    shapes: Dict[str, Tuple[int, ...]]
    dtypes: Dict[str, str]
    shards: List[Shard]


def shard_state(state: State, world_size: int) -> ShardedState:
    """Split every tensor's flattened range evenly across ``world_size`` ranks."""
    if world_size <= 0:
        raise CheckpointError("world_size must be positive")
    shards = [Shard(rank=r, world_size=world_size) for r in range(world_size)]
    shapes: Dict[str, Tuple[int, ...]] = {}
    dtypes: Dict[str, str] = {}
    for name, array in state.items():
        shapes[name] = tuple(array.shape)
        dtypes[name] = str(array.dtype)
        flat = np.ascontiguousarray(array).reshape(-1)
        per_rank = -(-flat.size // world_size)
        for rank in range(world_size):
            start = min(rank * per_rank, flat.size)
            stop = min(start + per_rank, flat.size)
            shards[rank].slices[name] = (start, stop, flat[start:stop].copy())
    return ShardedState(
        world_size=world_size, shapes=shapes, dtypes=dtypes, shards=shards
    )


def consolidate(sharded: ShardedState) -> State:
    """Reassemble the atomic (unsharded) state from all shards."""
    if len(sharded.shards) != sharded.world_size:
        raise CheckpointError(
            f"expected {sharded.world_size} shards, got {len(sharded.shards)}"
        )
    state: State = {}
    for name, shape in sharded.shapes.items():
        dtype = np.dtype(sharded.dtypes[name])
        size = int(np.prod(shape)) if shape else 1
        flat = np.zeros(size, dtype=dtype)
        covered = np.zeros(size, dtype=bool)
        for shard in sharded.shards:
            if name not in shard.slices:
                raise CheckpointError(f"rank {shard.rank} missing tensor {name!r}")
            start, stop, values = shard.slices[name]
            if stop - start != values.size:
                raise CheckpointError(f"corrupt slice for {name!r} on rank {shard.rank}")
            flat[start:stop] = values
            covered[start:stop] = True
        if not covered.all():
            raise CheckpointError(f"tensor {name!r} has uncovered ranges")
        state[name] = flat.reshape(shape)
    return state


def reshard(sharded: ShardedState, new_world_size: int) -> ShardedState:
    """Re-slice a sharded checkpoint for a different world size."""
    return shard_state(consolidate(sharded), new_world_size)


def verify_roundtrip(state: State, world_sizes: List[int]) -> bool:
    """Shard -> reshard across every world size -> consolidate == original."""
    current = shard_state(state, world_sizes[0] if world_sizes else 1)
    for ws in world_sizes[1:]:
        current = reshard(current, ws)
    return states_equal(consolidate(current), state)


def shard_bytes(sharded: ShardedState) -> List[int]:
    """Per-rank payload bytes (for write-parallelism time models)."""
    return [
        int(sum(values.nbytes for _, _, values in shard.slices.values()))
        for shard in sharded.shards
    ]
