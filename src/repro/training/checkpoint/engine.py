"""Checkpoint engine: sync / async / pipelined / differential / quantized.

Combines *real serialization* (states are actually saved and restorable)
with an explicit *time model*: writing B bytes over storage bandwidth W
takes B/W seconds, and each mode differs in how much of that time stalls
training (the quantity CheckFreq [38], DataStates-LLM [37], and
Check-N-Run [17] optimize):

=============  ====================================================
mode           training stall per checkpoint
=============  ====================================================
sync           snapshot + full write
async          snapshot only (write overlaps following compute) [27, 37, 61]
pipelined      snapshot split into per-layer copies overlapped with
               the step (CheckFreq-style two-phase) — stall is one
               layer's copy time
differential   snapshot + write of *changed* chunks only [17]
quantized      snapshot + write of fp16->int8 payload (2x smaller) [17]
=============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import CheckpointError
from .formats import State, state_bytes

MODES = ("sync", "async", "pipelined", "differential", "quantized")

_SNAPSHOT_BANDWIDTH = 50e9  # device->host copy bytes/s


@dataclass
class CheckpointRecord:
    """One saved checkpoint with its cost accounting."""

    step: int
    payload: Dict[str, object]
    mode: str
    bytes_written: int
    stall_s: float
    background_s: float
    base_step: Optional[int] = None  # for differential chains


@dataclass
class CheckpointStats:
    """Aggregate accounting across a run."""

    checkpoints: int = 0
    total_bytes: int = 0
    total_stall_s: float = 0.0
    total_background_s: float = 0.0


class CheckpointEngine:
    """Saves and restores training states under a chosen mode."""

    def __init__(
        self,
        *,
        mode: str = "sync",
        storage_write_bw: float = 2e9,
        storage_read_bw: float = 5e9,
        snapshot_bw: float = _SNAPSHOT_BANDWIDTH,
        diff_chunk: int = 4096,
    ) -> None:
        if mode not in MODES:
            raise CheckpointError(f"unknown mode {mode!r}; have {MODES}")
        self.mode = mode
        self.storage_write_bw = storage_write_bw
        self.storage_read_bw = storage_read_bw
        self.snapshot_bw = snapshot_bw
        self.diff_chunk = diff_chunk
        self.stats = CheckpointStats()
        self._records: List[CheckpointRecord] = []
        self._last_full: Optional[State] = None

    # ----------------------------------------------------------------- save
    def save(self, step: int, state: State) -> CheckpointRecord:
        """Save a checkpoint; returns the record with stall accounting."""
        total = state_bytes(state)
        snapshot_s = total / self.snapshot_bw
        if self.mode == "differential" and self._last_full is not None:
            payload, written = self._diff_payload(state)
            base = self._records[-1].step if self._records else None
            write_s = written / self.storage_write_bw
            record = CheckpointRecord(
                step=step,
                payload=payload,
                mode=self.mode,
                bytes_written=written,
                stall_s=snapshot_s,
                background_s=write_s,
                base_step=base,
            )
        elif self.mode == "quantized":
            payload, written = self._quantized_payload(state)
            write_s = written / self.storage_write_bw
            record = CheckpointRecord(
                step=step,
                payload=payload,
                mode=self.mode,
                bytes_written=written,
                stall_s=snapshot_s + write_s,
                background_s=0.0,
            )
        else:
            payload = {"full": {k: v.copy() for k, v in state.items()}}
            write_s = total / self.storage_write_bw
            if self.mode == "async":
                stall, background = snapshot_s, write_s
            elif self.mode == "pipelined":
                # Per-tensor copies overlap the step; stall = largest copy.
                largest = max((a.nbytes for a in state.values()), default=0)
                stall = largest / self.snapshot_bw
                background = write_s
            else:  # sync, or the full base save opening a differential chain
                stall, background = snapshot_s + write_s, 0.0
            record = CheckpointRecord(
                step=step,
                payload=payload,
                mode=self.mode,
                bytes_written=total,
                stall_s=stall,
                background_s=background,
            )
        self._last_full = {k: v.copy() for k, v in state.items()}
        self._records.append(record)
        self.stats.checkpoints += 1
        self.stats.total_bytes += record.bytes_written
        self.stats.total_stall_s += record.stall_s
        self.stats.total_background_s += record.background_s
        return record

    def _diff_payload(self, state: State) -> Tuple[Dict[str, object], int]:
        assert self._last_full is not None
        changed: Dict[str, Dict[int, np.ndarray]] = {}
        written = 0
        for name, array in state.items():
            old = self._last_full.get(name)
            flat = array.reshape(-1)
            diffs: Dict[int, np.ndarray] = {}
            if old is None or old.shape != array.shape:
                diffs = {0: flat.copy()}
                written += flat.nbytes
            else:
                old_flat = old.reshape(-1)
                for start in range(0, flat.size, self.diff_chunk):
                    new_chunk = flat[start : start + self.diff_chunk]
                    if not np.array_equal(
                        new_chunk, old_flat[start : start + self.diff_chunk]
                    ):
                        diffs[start] = new_chunk.copy()
                        written += new_chunk.nbytes
            if diffs:
                changed[name] = diffs
        return {"diff": changed, "shapes": {k: v.shape for k, v in state.items()},
                "dtypes": {k: str(v.dtype) for k, v in state.items()}}, written

    @staticmethod
    def _quantized_payload(state: State) -> Tuple[Dict[str, object], int]:
        quantized: Dict[str, Dict[str, object]] = {}
        written = 0
        for name, array in state.items():
            flat = array.astype(np.float32).reshape(-1)
            scale = float(np.max(np.abs(flat))) or 1.0
            q = np.clip(np.round(flat / scale * 127.0), -127, 127).astype(np.int8)
            quantized[name] = {"q": q, "scale": scale, "shape": array.shape,
                               "dtype": str(array.dtype)}
            written += q.nbytes + 8
        return {"quantized": quantized}, written

    # ---------------------------------------------------------------- load
    def load_latest(self) -> Tuple[int, State]:
        """Restore the most recent checkpoint (replaying diff chains)."""
        if not self._records:
            raise CheckpointError("no checkpoints saved")
        return self.load_step(self._records[-1].step)

    def load_step(self, step: int) -> Tuple[int, State]:
        index = next(
            (i for i, r in enumerate(self._records) if r.step == step), None
        )
        if index is None:
            raise CheckpointError(f"no checkpoint at step {step}")
        record = self._records[index]
        if "full" in record.payload:
            return step, {k: v.copy() for k, v in record.payload["full"].items()}  # type: ignore[union-attr]
        if "quantized" in record.payload:
            state: State = {}
            for name, info in record.payload["quantized"].items():  # type: ignore[union-attr]
                flat = info["q"].astype(np.float32) / 127.0 * info["scale"]
                state[name] = flat.reshape(info["shape"]).astype(np.dtype(info["dtype"]))
            return step, state
        # Differential: replay from the most recent full checkpoint backwards.
        base_index = index
        while base_index >= 0 and "full" not in self._records[base_index].payload:
            base_index -= 1
        if base_index < 0:
            raise CheckpointError("differential chain has no full base")
        _, state = self.load_step(self._records[base_index].step)
        for record_i in self._records[base_index + 1 : index + 1]:
            diffs = record_i.payload["diff"]
            shapes = record_i.payload["shapes"]
            for name, chunks in diffs.items():  # type: ignore[union-attr]
                flat = state[name].reshape(-1)
                for start, values in chunks.items():
                    flat[start : start + values.size] = values
                state[name] = flat.reshape(shapes[name])  # type: ignore[index]
        return step, state

    def restore_time_s(self) -> float:
        """Modeled time to read the latest checkpoint back."""
        if not self._records:
            return 0.0
        return self._records[-1].bytes_written / self.storage_read_bw

    @property
    def records(self) -> List[CheckpointRecord]:
        return list(self._records)
