"""Checkpoint serialization formats (§2.3.2 Checkpointing).

The tutorial lists three storage layouts [1, 2, 49, 50, 51, 56]; all three
are implemented as real, round-trippable serializations of a training
state (a dict of numpy arrays):

* :class:`ArrayFormat` — array-store layout (tensorstore/zarr): each
  tensor is chunked along its first axis into fixed-size blocks, enabling
  partial reads;
* :class:`FileFormat` — single-file layout (safetensors): one contiguous
  buffer with a JSON header of offsets;
* :class:`DisaggregatedFormat` — per-rank shard files plus a metadata
  manifest (PyTorch DCP): written by many ranks in parallel, reassembled
  on load.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import CheckpointError
from ...utils import derive_rng

State = Dict[str, np.ndarray]


def state_bytes(state: State) -> int:
    """Total payload bytes of a state dict."""
    return int(sum(a.nbytes for a in state.values()))


def states_equal(a: State, b: State) -> bool:
    """Exact equality of two state dicts (keys, shapes, dtypes, values)."""
    if set(a) != set(b):
        return False
    return all(
        a[k].shape == b[k].shape
        and a[k].dtype == b[k].dtype
        and np.array_equal(a[k], b[k])
        for k in a
    )


class ArrayFormat:
    """Chunked array-store layout: tensor -> list of first-axis chunks."""

    def __init__(self, *, chunk_rows: int = 1024) -> None:
        if chunk_rows <= 0:
            raise CheckpointError("chunk_rows must be positive")
        self.chunk_rows = chunk_rows

    def serialize(self, state: State) -> Dict[str, object]:
        store: Dict[str, object] = {"meta": {}, "chunks": {}}
        meta: Dict[str, Dict[str, object]] = {}
        chunks: Dict[str, bytes] = {}
        for name, array in state.items():
            arr2d = array.reshape(array.shape[0] if array.ndim else 1, -1)
            n_chunks = 0
            for start in range(0, arr2d.shape[0], self.chunk_rows):
                chunk = np.ascontiguousarray(arr2d[start : start + self.chunk_rows])
                chunks[f"{name}/{n_chunks}"] = chunk.tobytes()
                n_chunks += 1
            meta[name] = {
                "shape": list(array.shape),
                "dtype": str(array.dtype),
                "chunks": n_chunks,
            }
        store["meta"] = meta
        store["chunks"] = chunks
        return store

    def deserialize(self, store: Dict[str, object]) -> State:
        meta = store["meta"]
        chunks = store["chunks"]
        state: State = {}
        for name, info in meta.items():  # type: ignore[union-attr]
            shape = tuple(info["shape"])
            dtype = np.dtype(info["dtype"])
            parts = [
                np.frombuffer(chunks[f"{name}/{i}"], dtype=dtype)  # type: ignore[index]
                for i in range(info["chunks"])
            ]
            flat = np.concatenate(parts) if parts else np.zeros(0, dtype=dtype)
            state[name] = flat.reshape(shape)
        return state

    def read_partial(
        self, store: Dict[str, object], name: str, chunk_index: int
    ) -> np.ndarray:
        """Read a single chunk without touching the rest (the format's point)."""
        meta = store["meta"][name]  # type: ignore[index]
        dtype = np.dtype(meta["dtype"])
        raw = store["chunks"][f"{name}/{chunk_index}"]  # type: ignore[index]
        return np.frombuffer(raw, dtype=dtype)


class FileFormat:
    """Single-buffer layout with a JSON offset header (safetensors-style)."""

    MAGIC = b"RPCK"

    def serialize(self, state: State) -> bytes:
        header: Dict[str, Dict[str, object]] = {}
        payload = io.BytesIO()
        offset = 0
        for name in sorted(state):
            array = np.ascontiguousarray(state[name])
            header[name] = {
                "shape": list(array.shape),
                "dtype": str(array.dtype),
                "offset": offset,
                "nbytes": array.nbytes,
            }
            payload.write(array.tobytes())
            offset += array.nbytes
        header_bytes = json.dumps(header).encode("utf-8")
        return (
            self.MAGIC
            + len(header_bytes).to_bytes(8, "little")
            + header_bytes
            + payload.getvalue()
        )

    def deserialize(self, blob: bytes) -> State:
        if blob[:4] != self.MAGIC:
            raise CheckpointError("bad magic: not a FileFormat checkpoint")
        header_len = int.from_bytes(blob[4:12], "little")
        header = json.loads(blob[12 : 12 + header_len].decode("utf-8"))
        body = blob[12 + header_len :]
        state: State = {}
        for name, info in header.items():
            start = info["offset"]
            raw = body[start : start + info["nbytes"]]
            state[name] = np.frombuffer(raw, dtype=np.dtype(info["dtype"])).reshape(
                tuple(info["shape"])
            )
        return state


@dataclass
class ShardFile:
    """One rank's shard in the disaggregated layout."""

    rank: int
    # name -> (flat_start, flat_stop, bytes)
    entries: Dict[str, Tuple[int, int, bytes]]


class DisaggregatedFormat:
    """Per-rank shard files + manifest (PyTorch DCP-style).

    Each tensor's *flattened* value range is partitioned across ranks; the
    manifest records global shapes so any world size can reassemble.
    """

    def serialize(self, state: State, world_size: int) -> Dict[str, object]:
        if world_size <= 0:
            raise CheckpointError("world_size must be positive")
        manifest = {
            name: {"shape": list(a.shape), "dtype": str(a.dtype), "size": int(a.size)}
            for name, a in state.items()
        }
        shards: List[ShardFile] = []
        for rank in range(world_size):
            entries: Dict[str, Tuple[int, int, bytes]] = {}
            for name, array in state.items():
                flat = np.ascontiguousarray(array).reshape(-1)
                per_rank = -(-flat.size // world_size)  # ceil division
                start = min(rank * per_rank, flat.size)
                stop = min(start + per_rank, flat.size)
                entries[name] = (start, stop, flat[start:stop].tobytes())
            shards.append(ShardFile(rank=rank, entries=entries))
        return {"manifest": manifest, "shards": shards}

    def deserialize(self, store: Dict[str, object]) -> State:
        manifest = store["manifest"]
        shards: List[ShardFile] = sorted(store["shards"], key=lambda s: s.rank)  # type: ignore[arg-type]
        state: State = {}
        for name, info in manifest.items():  # type: ignore[union-attr]
            dtype = np.dtype(info["dtype"])
            flat = np.zeros(info["size"], dtype=dtype)
            for shard in shards:
                if name not in shard.entries:
                    raise CheckpointError(f"shard {shard.rank} missing tensor {name!r}")
                start, stop, raw = shard.entries[name]
                flat[start:stop] = np.frombuffer(raw, dtype=dtype)
            state[name] = flat.reshape(tuple(info["shape"]))
        return state


def make_state(
    *, num_tensors: int = 8, rows: int = 256, cols: int = 64, seed: int = 0
) -> State:
    """Deterministic toy training state (used by tests and benches)."""
    rng = derive_rng(seed, "ckpt-state")
    return {
        f"layer{i}.weight": rng.standard_normal((rows, cols)).astype(np.float32)
        for i in range(num_tensors)
    }
