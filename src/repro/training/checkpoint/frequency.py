"""Optimal checkpoint frequency (CheckFreq [38] / Young-Daly).

With checkpoint cost C seconds and mean time between failures M seconds,
the classic Young-Daly interval ``sqrt(2*C*M)`` minimizes expected lost
time; :func:`expected_overhead_fraction` gives the analytic overhead of
any interval so the optimum is verifiable by sweep (benchmark E12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ...errors import ConfigError


def young_daly_interval(checkpoint_cost_s: float, mtbf_s: float) -> float:
    """The Young-Daly optimal seconds-between-checkpoints."""
    if checkpoint_cost_s <= 0 or mtbf_s <= 0:
        raise ConfigError("checkpoint cost and MTBF must be positive")
    return math.sqrt(2.0 * checkpoint_cost_s * mtbf_s)


def expected_overhead_fraction(
    interval_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    *,
    restart_cost_s: float = 0.0,
) -> float:
    """Expected fraction of wall time lost to checkpoints + failures.

    First-order model: checkpoint overhead C/T, plus expected rework per
    failure of (T/2 + restart) spread over the MTBF.
    """
    if interval_s <= 0:
        raise ConfigError("interval must be positive")
    checkpoint_overhead = checkpoint_cost_s / interval_s
    failure_overhead = (interval_s / 2.0 + restart_cost_s + checkpoint_cost_s) / mtbf_s
    return checkpoint_overhead + failure_overhead


@dataclass(frozen=True)
class FrequencyPlan:
    """A chosen checkpoint cadence with its predicted overhead."""

    interval_s: float
    steps_between_checkpoints: int
    predicted_overhead: float


def plan_frequency(
    *,
    step_time_s: float,
    checkpoint_cost_s: float,
    mtbf_s: float,
    restart_cost_s: float = 0.0,
) -> FrequencyPlan:
    """Round the Young-Daly interval to a whole number of training steps."""
    if step_time_s <= 0:
        raise ConfigError("step_time_s must be positive")
    interval = young_daly_interval(checkpoint_cost_s, mtbf_s)
    steps = max(1, int(round(interval / step_time_s)))
    actual_interval = steps * step_time_s
    return FrequencyPlan(
        interval_s=actual_interval,
        steps_between_checkpoints=steps,
        predicted_overhead=expected_overhead_fraction(
            actual_interval, checkpoint_cost_s, mtbf_s, restart_cost_s=restart_cost_s
        ),
    )
