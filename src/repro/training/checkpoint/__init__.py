"""Checkpointing: formats, save/restore engine, resharding, frequency."""

from .engine import MODES, CheckpointEngine, CheckpointRecord, CheckpointStats
from .formats import ArrayFormat, DisaggregatedFormat, FileFormat, State, make_state, state_bytes, states_equal
from .frequency import FrequencyPlan, expected_overhead_fraction, plan_frequency, young_daly_interval
from .resharding import Shard, ShardedState, consolidate, reshard, shard_bytes, shard_state, verify_roundtrip

__all__ = [
    "MODES", "CheckpointEngine", "CheckpointRecord", "CheckpointStats",
    "ArrayFormat", "DisaggregatedFormat", "FileFormat", "State", "make_state",
    "state_bytes", "states_equal",
    "FrequencyPlan", "expected_overhead_fraction", "plan_frequency", "young_daly_interval",
    "Shard", "ShardedState", "consolidate", "reshard", "shard_bytes", "shard_state",
    "verify_roundtrip",
]
