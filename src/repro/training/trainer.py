"""Training-run simulator: steps, failures, checkpoints, recovery, goodput.

Ties the training substrates together (MegaScale-style accounting [27]):
the analytic step time drives a wall clock, the cluster's failure process
injects crashes, and the checkpoint engine determines both the per-
checkpoint stall and how much work a crash destroys. The headline metric
is **goodput** — the fraction of wall time spent on retained training
steps — plus a data-quality-aware loss curve so Data4LLM choices show up
in the same simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigError
from ..faults import RANK_DEATH, FaultPlan
from .checkpoint.engine import CheckpointEngine
from .checkpoint.formats import State, make_state
from .cluster import ClusterSpec, FailureModel
from .model_spec import TrainModelSpec
from .parallelism import ParallelConfig, step_time


def loss_at_tokens(
    tokens: float, *, quality: float = 1.0, floor: float = 1.7, scale: float = 12.0,
    exponent: float = 0.08,
) -> float:
    """Chinchilla-flavoured power-law loss curve.

    ``quality`` in (0, 1] rescales effective tokens (deduplicated, filtered
    data has quality near 1; duplicated/noisy data wastes tokens).
    """
    if tokens <= 0:
        return floor + scale
    effective = max(tokens * quality, 1.0)
    return floor + scale * effective ** (-exponent)


@dataclass
class RunResult:
    """Outcome of one simulated training run."""

    steps_completed: int
    wall_time_s: float
    useful_time_s: float
    checkpoint_stall_s: float
    lost_time_s: float
    restarts: int
    final_loss: float
    tokens_seen: float

    @property
    def goodput(self) -> float:
        """Useful step time / total wall time (MegaScale's headline metric)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.useful_time_s / self.wall_time_s


class TrainingRun:
    """Discrete step-loop simulation with failures and checkpointing."""

    def __init__(
        self,
        spec: TrainModelSpec,
        config: ParallelConfig,
        cluster: ClusterSpec,
        *,
        checkpoint_engine: Optional[CheckpointEngine] = None,
        checkpoint_every_steps: int = 200,
        restart_cost_s: float = 120.0,
        data_quality: float = 1.0,
        state_tensors: int = 4,
        seed: int = 0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if checkpoint_every_steps <= 0:
            raise ConfigError("checkpoint_every_steps must be positive")
        self.spec = spec
        self.config = config
        self.cluster = cluster
        # ``faults`` replaces the cluster's closed-form MTBF process with an
        # explicit schedule of RANK_DEATH events (seconds); an empty plan
        # means a failure-free run.  ``None`` keeps the legacy FailureModel.
        self.faults = faults
        self.engine = checkpoint_engine or CheckpointEngine(
            storage_write_bw=cluster.storage_write_bw,
            storage_read_bw=cluster.storage_read_bw,
        )
        self.checkpoint_every_steps = checkpoint_every_steps
        self.restart_cost_s = restart_cost_s
        self.data_quality = data_quality
        self.seed = seed
        self._state: State = make_state(num_tensors=state_tensors, seed=seed)
        self.step_time_s = step_time(spec, config, cluster).total

    @property
    def state(self) -> State:
        """A copy of the live training state (for bit-exactness checks)."""
        return {k: v.copy() for k, v in self._state.items()}

    def _advance_state(self, step: int) -> None:
        """Mutate a small part of the state (so differential mode has diffs)."""
        for i, (name, array) in enumerate(sorted(self._state.items())):
            if (step + i) % len(self._state) == 0:
                flat = array.reshape(-1)
                flat[step % flat.size] += 1.0

    def run(self, total_steps: int, *, horizon_hours: Optional[float] = None) -> RunResult:
        """Simulate up to ``total_steps`` steps (or until the time horizon)."""
        if total_steps <= 0:
            raise ConfigError("total_steps must be positive")
        tokens_per_step = self.config.global_batch * self.spec.seq_len
        est_hours = total_steps * self.step_time_s / 3600.0 * 3.0 + 1.0
        if self.faults is not None:
            failure_queue = [e.at_s for e in self.faults.of_kind(RANK_DEATH)]
        else:
            failures = FailureModel(self.cluster, seed=self.seed).failure_times(
                horizon_hours or est_hours
            )
            failure_queue = [t * 3600.0 for t in failures]
        clock = 0.0
        useful = 0.0
        stall = 0.0
        lost = 0.0
        restarts = 0
        step = 0
        last_checkpoint_step = 0
        last_checkpoint_clock = 0.0
        self.engine.save(0, self._state)
        stall += self.engine.records[-1].stall_s
        clock += self.engine.records[-1].stall_s
        while step < total_steps:
            next_failure = failure_queue[0] if failure_queue else math.inf
            step_end = clock + self.step_time_s
            if step_end > next_failure:
                # Crash mid-step: roll back to the last checkpoint.
                failure_queue.pop(0)
                lost_steps = step - last_checkpoint_step
                lost += (clock - last_checkpoint_clock) + (next_failure - clock)
                useful -= lost_steps * self.step_time_s
                clock = next_failure + self.restart_cost_s + self.engine.restore_time_s()
                lost += self.restart_cost_s + self.engine.restore_time_s()
                loaded_step, state = self.engine.load_latest()
                self._state = state
                step = loaded_step
                restarts += 1
                last_checkpoint_clock = clock
                continue
            clock = step_end
            useful += self.step_time_s
            step += 1
            self._advance_state(step)
            if step % self.checkpoint_every_steps == 0 or step == total_steps:
                record = self.engine.save(step, self._state)
                stall += record.stall_s
                clock += record.stall_s
                last_checkpoint_step = step
                last_checkpoint_clock = clock
        tokens = step * tokens_per_step
        return RunResult(
            steps_completed=step,
            wall_time_s=clock,
            useful_time_s=useful,
            checkpoint_stall_s=stall,
            lost_time_s=lost,
            restarts=restarts,
            final_loss=loss_at_tokens(tokens, quality=self.data_quality),
            tokens_seen=tokens,
        )
