"""Simulated distributed LLM training: parallelism, checkpointing, recovery."""

from .checkpoint import (
    ArrayFormat,
    CheckpointEngine,
    CheckpointRecord,
    DisaggregatedFormat,
    FileFormat,
    FrequencyPlan,
    consolidate,
    expected_overhead_fraction,
    make_state,
    plan_frequency,
    reshard,
    shard_state,
    states_equal,
    verify_roundtrip,
    young_daly_interval,
)
from .cluster import ClusterSpec, FailureModel, GPUSpec
from .model_spec import MODEL_ZOO, TrainModelSpec, get_model_spec
from .parallelism import (
    ParallelConfig,
    StepTimeBreakdown,
    activation_bytes_per_gpu,
    fits,
    max_trainable_params,
    model_state_bytes_per_gpu,
    plan_parallelism,
    step_time,
    total_bytes_per_gpu,
)
from .trainer import RunResult, TrainingRun, loss_at_tokens

__all__ = [
    "ArrayFormat", "CheckpointEngine", "CheckpointRecord", "DisaggregatedFormat",
    "FileFormat", "FrequencyPlan", "consolidate", "expected_overhead_fraction",
    "make_state", "plan_frequency", "reshard", "shard_state", "states_equal",
    "verify_roundtrip", "young_daly_interval",
    "ClusterSpec", "FailureModel", "GPUSpec",
    "MODEL_ZOO", "TrainModelSpec", "get_model_spec",
    "ParallelConfig", "StepTimeBreakdown", "activation_bytes_per_gpu", "fits",
    "max_trainable_params", "model_state_bytes_per_gpu", "plan_parallelism",
    "step_time", "total_bytes_per_gpu",
    "RunResult", "TrainingRun", "loss_at_tokens",
]
