"""Database diagnosis: anomaly detection + root-cause analysis (Figure 1
"Diagnosis").

The LLM-DBA pattern (D-Bot style): monitoring metrics are summarized into
text, an LLM names the root cause, and — per the paper's verification
principle — the answer is cross-checked against rule-based signature
matching before it is trusted.

* :class:`MetricsGenerator` — seeded time series of five DBMS metrics with
  injected incidents, each with its textbook signature (lock contention:
  lock waits up + qps down; cache thrash: buffer hit down + disk reads up;
  cpu saturation: cpu pinned + latency up; slow disk: disk latency up);
* :func:`detect_anomalies` — z-score change detection over the series;
* :class:`RuleDiagnoser` — signature matching (the verifier);
* :class:`LLMDiagnoser` — renders the anomalous window as text, asks the
  ``label`` skill for a cause, and reports whether the rules agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..utils import derive_rng

METRICS = ("qps", "latency_ms", "cpu", "buffer_hit", "lock_waits", "disk_reads")

INCIDENT_TYPES = ("lock_contention", "cache_thrash", "cpu_saturation", "slow_disk")

# Per-incident multiplicative effect on each metric during the window.
_SIGNATURES: Dict[str, Dict[str, float]] = {
    "lock_contention": {"lock_waits": 8.0, "qps": 0.5, "latency_ms": 3.0},
    "cache_thrash": {"buffer_hit": 0.55, "disk_reads": 6.0, "latency_ms": 2.0},
    "cpu_saturation": {"cpu": 1.8, "latency_ms": 2.5, "qps": 0.7},
    "slow_disk": {"disk_reads": 1.2, "latency_ms": 4.0, "qps": 0.8},
}

_BASELINES: Dict[str, float] = {
    "qps": 1000.0,
    "latency_ms": 10.0,
    "cpu": 0.45,
    "buffer_hit": 0.97,
    "lock_waits": 5.0,
    "disk_reads": 50.0,
}


@dataclass(frozen=True)
class Incident:
    """One injected fault with its ground-truth cause."""

    start: int
    end: int
    cause: str


@dataclass
class MetricsTrace:
    """Generated series plus injected ground truth."""

    series: Dict[str, np.ndarray]
    incidents: List[Incident]

    @property
    def length(self) -> int:
        return len(next(iter(self.series.values())))


class MetricsGenerator:
    """Seeded metric series with injected incidents."""

    def __init__(self, *, length: int = 240, noise: float = 0.04, seed: int = 0) -> None:
        if length < 40:
            raise ConfigError("length must be >= 40")
        self.length = length
        self.noise = noise
        self.seed = seed

    def generate(self, incidents: Sequence[Tuple[int, int, str]]) -> MetricsTrace:
        """Series with the given (start, end, cause) incidents injected."""
        rng = derive_rng(self.seed, "metrics")
        series = {
            m: _BASELINES[m] * (1.0 + self.noise * rng.standard_normal(self.length))
            for m in METRICS
        }
        parsed: List[Incident] = []
        for start, end, cause in incidents:
            if cause not in _SIGNATURES:
                raise ConfigError(f"unknown incident cause {cause!r}")
            if not 0 <= start < end <= self.length:
                raise ConfigError("incident window out of range")
            for metric, factor in _SIGNATURES[cause].items():
                series[metric][start:end] *= factor
            parsed.append(Incident(start=start, end=end, cause=cause))
        return MetricsTrace(series=series, incidents=parsed)


def detect_anomalies(
    trace: MetricsTrace, *, z_threshold: float = 4.0, min_gap: int = 10
) -> List[Tuple[int, int]]:
    """Z-score change detection: windows where any metric departs baseline."""
    length = trace.length
    flags = np.zeros(length, dtype=bool)
    for values in trace.series.values():
        baseline = np.median(values)
        spread = np.median(np.abs(values - baseline)) * 1.4826 + 1e-9
        flags |= np.abs(values - baseline) / spread > z_threshold
    windows: List[Tuple[int, int]] = []
    start: Optional[int] = None
    last = -min_gap
    for t in range(length):
        if flags[t]:
            if start is None:
                start = t
            last = t
        elif start is not None and t - last >= min_gap:
            windows.append((start, last + 1))
            start = None
    if start is not None:
        windows.append((start, last + 1))
    return windows


def _window_deviations(trace: MetricsTrace, window: Tuple[int, int]) -> Dict[str, float]:
    start, end = window
    deviations = {}
    for metric, values in trace.series.items():
        baseline = float(np.median(values))
        observed = float(np.median(values[start:end]))
        deviations[metric] = observed / baseline if baseline else 1.0
    return deviations


class RuleDiagnoser:
    """Signature matcher: the verifiable root-cause baseline."""

    def diagnose(self, trace: MetricsTrace, window: Tuple[int, int]) -> str:
        deviations = _window_deviations(trace, window)

        def score(cause: str) -> float:
            total = 0.0
            for metric, factor in _SIGNATURES[cause].items():
                observed = deviations[metric]
                expected_up = factor > 1.0
                moved_up = observed > 1.0
                magnitude = abs(np.log(max(observed, 1e-6)))
                total += magnitude if expected_up == moved_up else -magnitude
            return total

        return max(INCIDENT_TYPES, key=score)


def render_window(trace: MetricsTrace, window: Tuple[int, int]) -> str:
    """Human/LLM-readable summary of an anomalous window."""
    deviations = _window_deviations(trace, window)
    parts = []
    for metric in METRICS:
        ratio = deviations[metric]
        label = metric.replace("_", " ")
        if ratio > 1.3:
            parts.append(f"{label} elevated {ratio:.1f}x")
        elif ratio < 0.75:
            parts.append(f"{label} depressed to {ratio:.2f}x")
    return "; ".join(parts) or "no significant deviations"


@dataclass
class DiagnosisReport:
    """One window's diagnosis with verification outcome."""

    window: Tuple[int, int]
    llm_cause: str
    rule_cause: str
    agreed: bool
    summary: str


class LLMDiagnoser:
    """LLM root-cause naming, cross-checked against the rule diagnoser."""

    def __init__(self, llm: SimLLM) -> None:
        self.llm = llm
        self.rules = RuleDiagnoser()

    def diagnose(self, trace: MetricsTrace, window: Tuple[int, int]) -> DiagnosisReport:
        summary = render_window(trace, window)
        # Offer classes in natural phrasing (the embedding-space the model
        # judges in), then map back to the canonical snake_case labels.
        human = {c: c.replace("_", " ") for c in INCIDENT_TYPES}
        inverse = {v: k for k, v in human.items()}
        response = self.llm.generate(
            Prompt(
                task="label",
                instruction="Name the root cause of this database incident.",
                input=summary,
                fields={"classes": " | ".join(human.values())},
            ).render(),
            tag="diagnosis",
        )
        llm_cause = inverse.get(response.text.strip(), response.text.strip())
        rule_cause = self.rules.diagnose(trace, window)
        return DiagnosisReport(
            window=window,
            llm_cause=llm_cause,
            rule_cause=rule_cause,
            agreed=llm_cause == rule_cause,
            summary=summary,
        )
