"""Plan selection: choosing among physical query plans (Figure 1 "Plan
Selection").

For joins in the mini-SQL dialect there are real physical choices:

* **build side** — hash-join builds on the smaller input (classic), and
* **filter placement** — selective predicates should run before the join.

:func:`enumerate_plans` produces the candidate plans with their *logical
costs* (rows built + rows probed + predicate evaluations, from true table
statistics); :class:`CostBasedSelector` picks by that model, while
:class:`LLMPlanSelector` asks the model to rank rendered plan descriptions
(the LLM-as-optimizer setting the paper's related tutorial covers), with
measured **regret** against the cost-optimal plan. All candidates are
semantically equivalent (verified by execution in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..data.table import Table
from ..errors import ExecutionError
from ..llm.model import SimLLM
from ..llm.protocol import Prompt


@dataclass(frozen=True)
class JoinQuery:
    """A two-table equi-join with one optional selection."""

    left: str
    right: str
    left_on: str
    right_on: str
    filter_table: Optional[str] = None  # which table the predicate touches
    filter_column: Optional[str] = None
    filter_op: str = "=="
    filter_value: str = ""


@dataclass(frozen=True)
class PhysicalPlan:
    """One physical alternative."""

    build_side: str  # "left" | "right"
    filter_first: bool
    cost: float

    def describe(self, query: JoinQuery) -> str:
        build = query.left if self.build_side == "left" else query.right
        probe = query.right if self.build_side == "left" else query.left
        placement = (
            "apply the filter before the join"
            if self.filter_first
            else "apply the filter after the join"
        )
        return (
            f"hash join building on {build} and probing {probe}; {placement}; "
            f"estimated cost {self.cost:.0f} rows"
        )


def _filtered_size(query: JoinQuery, tables: Dict[str, Table]) -> int:
    """True cardinality of the filtered table's selection."""
    if query.filter_table is None or query.filter_column is None:
        return 0
    table = tables[query.filter_table]
    matching = table.where(query.filter_column, query.filter_op, query.filter_value)
    return len(matching)


def enumerate_plans(
    query: JoinQuery, tables: Dict[str, Table]
) -> List[PhysicalPlan]:
    """All four (build side x filter placement) candidates with costs."""
    if query.left not in tables or query.right not in tables:
        raise ExecutionError("query references unknown tables")
    left_n = len(tables[query.left])
    right_n = len(tables[query.right])
    filtered_n = _filtered_size(query, tables)
    plans = []
    for build_side in ("left", "right"):
        for filter_first in (True, False):
            sizes = {"left": left_n, "right": right_n}
            if filter_first and query.filter_table is not None:
                side = "left" if query.filter_table == query.left else "right"
                sizes[side] = filtered_n
            build_n = sizes[build_side]
            probe_n = sizes["right" if build_side == "left" else "left"]
            # Cost: build rows + probe rows (+ post-filter pass when late).
            cost = float(build_n + probe_n)
            if not filter_first and query.filter_table is not None:
                cost += probe_n  # evaluate the predicate on joined rows
            plans.append(
                PhysicalPlan(build_side=build_side, filter_first=filter_first, cost=cost)
            )
    return sorted(plans, key=lambda p: p.cost)


def execute_plan(
    query: JoinQuery, plan: PhysicalPlan, tables: Dict[str, Table]
) -> List[tuple]:
    """Execute a plan -> sorted result multiset (for equivalence checks)."""
    left = tables[query.left]
    right = tables[query.right]
    if plan.filter_first and query.filter_table is not None:
        if query.filter_table == query.left:
            left = left.where(query.filter_column, query.filter_op, query.filter_value)
        else:
            right = right.where(query.filter_column, query.filter_op, query.filter_value)
    # ``Table.join`` prefixes the *inner* (second) table's colliding column
    # names with the inner table's name; remember which side that was so a
    # late filter resolves to the right column.
    if plan.build_side == "left":
        joined = right.join(left, left_on=query.right_on, right_on=query.left_on)
        inner_name = left.name
    else:
        joined = left.join(right, left_on=query.left_on, right_on=query.right_on)
        inner_name = right.name
    if not plan.filter_first and query.filter_table is not None:
        column = query.filter_column
        if query.filter_table == inner_name and f"{inner_name}.{column}" in joined.schema:
            column = f"{inner_name}.{column}"
        joined = joined.where(column, query.filter_op, query.filter_value)
    # Normalize column naming differences between build orders: compare on
    # the multiset of value tuples only.
    return sorted(
        tuple(sorted(str(v) for v in row.values())) for row in joined.rows
    )


@dataclass
class SelectionOutcome:
    """Chosen plan plus its regret vs the cost optimum."""

    chosen: PhysicalPlan
    optimal: PhysicalPlan
    regret: float  # chosen.cost / optimal.cost - 1
    source: str


class CostBasedSelector:
    """Pick the cheapest plan by the cost model (the classical optimizer)."""

    def select(self, query: JoinQuery, tables: Dict[str, Table]) -> SelectionOutcome:
        plans = enumerate_plans(query, tables)
        best = plans[0]
        return SelectionOutcome(
            chosen=best, optimal=best, regret=0.0, source="cost-model"
        )


class LLMPlanSelector:
    """Ask the model to rank plan descriptions; measure regret."""

    def __init__(self, llm: SimLLM, *, show_costs: bool = True) -> None:
        self.llm = llm
        self.show_costs = show_costs

    def select(self, query: JoinQuery, tables: Dict[str, Table]) -> SelectionOutcome:
        plans = enumerate_plans(query, tables)
        optimal = plans[0]
        descriptions = []
        for i, plan in enumerate(plans):
            text = plan.describe(query)
            if not self.show_costs:
                text = text.split("; estimated cost")[0]
            descriptions.append(f"[{i}] {text}")
        response = self.llm.generate(
            Prompt(
                task="rank",
                instruction="Order the physical plans from cheapest to most expensive.",
                context="\n".join(descriptions),
                input="cheapest lowest estimated cost rows plan",
            ).render(),
            tag="plan-selection",
        )
        first = response.text.split(",")[0].strip()
        index = int(first) if first.isdigit() and int(first) < len(plans) else 0
        chosen = plans[index]
        return SelectionOutcome(
            chosen=chosen,
            optimal=optimal,
            regret=chosen.cost / optimal.cost - 1.0,
            source="llm",
        )
