"""Configuration advisor: LLM-guided knob tuning (Figure 1 "Configuration
Advisor").

The LLM-for-tuning loop (GPTuner/DB-BERT style): an advisor proposes knob
changes using database-domain heuristics, every proposal is *validated by
actually benchmarking* the (simulated) database, and only improvements are
kept — the same propose/verify discipline the paper's principles demand.

* :class:`SimulatedDB` — a closed-form throughput model over three classic
  knobs (buffer pool, worker threads, WAL sync) with workload-dependent
  optima and diminishing returns, standing in for a real DBMS benchmark;
* :class:`HeuristicAdvisorSkill` — the LLM side: domain rules ("read-heavy
  and low buffer hit => grow the buffer pool") with the usual error
  channel (a plausible-but-wrong suggestion such as growing threads past
  the contention knee);
* :class:`ConfigurationAdvisor` — the tuning loop, against random-search
  and coordinate-descent baselines at equal benchmark budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigError
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..llm.skills import SkillContext
from ..utils import derive_rng

KNOB_RANGES: Dict[str, Tuple[float, float]] = {
    "buffer_pool_mb": (128.0, 16384.0),
    "worker_threads": (1.0, 128.0),
    "wal_sync": (0.0, 1.0),  # 0 = async (fast, risky), 1 = fsync-per-commit
}


@dataclass(frozen=True)
class DBConfig:
    """A knob assignment."""

    buffer_pool_mb: float = 512.0
    worker_threads: float = 8.0
    wal_sync: float = 1.0

    def clamped(self) -> "DBConfig":
        values = {}
        for name, (lo, hi) in KNOB_RANGES.items():
            values[name] = float(min(max(getattr(self, name), lo), hi))
        return DBConfig(**values)

    def as_dict(self) -> Dict[str, float]:
        return {k: getattr(self, k) for k in KNOB_RANGES}


@dataclass(frozen=True)
class Workload:
    """Workload characteristics that move the knob optima."""

    name: str = "oltp"
    read_fraction: float = 0.8
    working_set_mb: float = 2048.0
    concurrency: int = 32


class SimulatedDB:
    """Closed-form benchmark: throughput(config, workload) in tx/s.

    Shapes follow DBMS folklore: buffer-pool benefit saturates once the
    working set fits; threads scale to ~concurrency then contend; synchronous
    WAL taxes writes only.
    """

    def __init__(self, workload: Workload, *, seed: int = 0, noise: float = 0.01) -> None:
        self.workload = workload
        self.seed = seed
        self.noise = noise
        self.benchmarks_run = 0

    def throughput(self, config: DBConfig) -> float:
        config = config.clamped()
        w = self.workload
        hit_rate = min(config.buffer_pool_mb / w.working_set_mb, 1.0) ** 0.5
        read_speed = 0.2 + 0.8 * hit_rate
        contention = 1.0 + max(config.worker_threads - w.concurrency, 0.0) / w.concurrency
        parallel = min(config.worker_threads, w.concurrency) / contention
        write_tax = 1.0 - (1.0 - w.read_fraction) * 0.6 * config.wal_sync
        base = 1000.0 * read_speed * (parallel / w.concurrency) ** 0.7 * write_tax
        self.benchmarks_run += 1
        rng = derive_rng(self.seed, "bench", self.benchmarks_run)
        return float(base * (1.0 + self.noise * rng.standard_normal()))


@dataclass
class TuningStep:
    """One accepted-or-rejected proposal."""

    knob: str
    factor: float
    throughput: float
    accepted: bool
    source: str


def heuristic_proposals(
    config: DBConfig, workload: Workload
) -> List[Tuple[str, float]]:
    """The domain rules a competent DBA (or tuned LLM) would state.

    Proposals are *targeted* ("size the buffer pool to the working set",
    "match worker threads to the concurrency level"), which is what makes
    knowledge-guided tuning sample-efficient compared to blind search.
    """
    proposals: List[Tuple[str, float]] = []
    if config.buffer_pool_mb < workload.working_set_mb * 0.95:
        proposals.append(
            ("buffer_pool_mb", workload.working_set_mb * 1.05 / config.buffer_pool_mb)
        )
    thread_ratio = workload.concurrency / config.worker_threads
    if not 0.8 <= thread_ratio <= 1.25:
        proposals.append(("worker_threads", thread_ratio))
    if workload.read_fraction < 0.6 and config.wal_sync > 0.5:
        proposals.append(("wal_sync", 0.0))
    if not proposals:
        proposals.append(("buffer_pool_mb", 1.25))
    return proposals


def make_tuning_skill(workload: Workload):
    """LLM ``tune`` skill: a heuristic proposal, or a plausible bad one."""

    def skill_tune(ctx: SkillContext):
        from .tuning import DBConfig  # self-import safe at call time

        import json

        try:
            state = json.loads(ctx.prompt.input)
            config = DBConfig(**{k: float(v) for k, v in state.items()})
        except (ValueError, TypeError):
            return "buffer_pool_mb *2.0", {"reason": "unparseable-state"}
        proposals = heuristic_proposals(config, workload)
        knob, factor = proposals[0]
        if ctx.draw_correct(grounded=True):
            return f"{knob} *{factor:.4f}", {}
        # Plausible-but-wrong: more threads always sounds good.
        return "worker_threads *4.0", {"reason": "cargo-cult"}

    return skill_tune


class ConfigurationAdvisor:
    """Propose/benchmark/keep-if-better tuning loop."""

    def __init__(
        self,
        db: SimulatedDB,
        *,
        llm: Optional[SimLLM] = None,
        seed: int = 0,
    ) -> None:
        self.db = db
        self.llm = llm
        self.seed = seed
        if llm is not None:
            llm.register_skill("tune", make_tuning_skill(db.workload))

    def _apply(self, config: DBConfig, knob: str, factor: float) -> DBConfig:
        if knob not in KNOB_RANGES:
            raise ConfigError(f"unknown knob {knob!r}")
        return replace(config, **{knob: getattr(config, knob) * factor}).clamped()

    def _propose(self, config: DBConfig, rng) -> Tuple[str, float, str]:
        if self.llm is not None:
            import json

            response = self.llm.generate(
                Prompt(
                    task="tune",
                    instruction="Suggest one knob change for more throughput.",
                    input=json.dumps(config.as_dict()),
                ).render(),
                tag="tuning",
            )
            parts = response.text.split("*")
            if len(parts) == 2 and parts[0].strip() in KNOB_RANGES:
                return parts[0].strip(), float(parts[1]), "llm"
        proposals = heuristic_proposals(config, self.db.workload)
        knob, factor = proposals[int(rng.integers(0, len(proposals)))]
        return knob, factor, "rules"

    def tune(
        self, start: DBConfig, *, budget: int = 12
    ) -> Tuple[DBConfig, float, List[TuningStep]]:
        """Run the loop for ``budget`` benchmark evaluations."""
        if budget < 1:
            raise ConfigError("budget must be >= 1")
        rng = derive_rng(self.seed, "advisor")
        best = start.clamped()
        best_throughput = self.db.throughput(best)
        history: List[TuningStep] = []
        for _ in range(budget - 1):
            knob, factor, source = self._propose(best, rng)
            candidate = self._apply(best, knob, factor)
            throughput = self.db.throughput(candidate)
            accepted = throughput > best_throughput
            history.append(
                TuningStep(
                    knob=knob,
                    factor=factor,
                    throughput=throughput,
                    accepted=accepted,
                    source=source,
                )
            )
            if accepted:
                best, best_throughput = candidate, throughput
        return best, best_throughput, history


def random_search(
    db: SimulatedDB, start: DBConfig, *, budget: int = 12, seed: int = 0
) -> Tuple[DBConfig, float]:
    """Equal-budget random baseline."""
    rng = derive_rng(seed, "random-tune")
    best = start.clamped()
    best_throughput = db.throughput(best)
    knobs = sorted(KNOB_RANGES)
    for _ in range(budget - 1):
        knob = knobs[int(rng.integers(0, len(knobs)))]
        lo, hi = KNOB_RANGES[knob]
        candidate = replace(best, **{knob: float(rng.uniform(lo, hi))}).clamped()
        throughput = db.throughput(candidate)
        if throughput > best_throughput:
            best, best_throughput = candidate, throughput
    return best, best_throughput


def coordinate_descent(
    db: SimulatedDB, start: DBConfig, *, budget: int = 12
) -> Tuple[DBConfig, float]:
    """Equal-budget doubling/halving sweep, one knob at a time."""
    best = start.clamped()
    best_throughput = db.throughput(best)
    spent = 1
    knobs = sorted(KNOB_RANGES)
    i = 0
    while spent < budget:
        knob = knobs[i % len(knobs)]
        i += 1
        for factor in (2.0, 0.5):
            if spent >= budget:
                break
            candidate = replace(best, **{knob: getattr(best, knob) * factor}).clamped()
            throughput = db.throughput(candidate)
            spent += 1
            if throughput > best_throughput:
                best, best_throughput = candidate, throughput
                break
    return best, best_throughput
