"""Classic LLM4DB tasks from Figure 1: query rewriting (with strict
equivalence verification), configuration advising, and diagnosis."""

from .diagnosis import (
    INCIDENT_TYPES,
    DiagnosisReport,
    Incident,
    LLMDiagnoser,
    MetricsGenerator,
    MetricsTrace,
    RuleDiagnoser,
    detect_anomalies,
    render_window,
)
from .plan_selection import (
    CostBasedSelector,
    JoinQuery,
    LLMPlanSelector,
    PhysicalPlan,
    SelectionOutcome,
    enumerate_plans,
    execute_plan,
)
from .rewrite import RULES, QueryRewriter, RewriteOutcome, query_cost, run_query
from .tuning import (
    KNOB_RANGES,
    ConfigurationAdvisor,
    DBConfig,
    SimulatedDB,
    Workload,
    coordinate_descent,
    random_search,
)

__all__ = [
    "INCIDENT_TYPES", "DiagnosisReport", "Incident", "LLMDiagnoser",
    "MetricsGenerator", "MetricsTrace", "RuleDiagnoser", "detect_anomalies",
    "render_window",
    "CostBasedSelector", "JoinQuery", "LLMPlanSelector", "PhysicalPlan",
    "SelectionOutcome", "enumerate_plans", "execute_plan",
    "RULES", "QueryRewriter", "RewriteOutcome", "query_cost", "run_query",
    "KNOB_RANGES", "ConfigurationAdvisor", "DBConfig", "SimulatedDB",
    "Workload", "coordinate_descent", "random_search",
]
