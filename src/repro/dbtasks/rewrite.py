"""LLM-assisted query rewriting with equivalence verification (Figure 1
"Query Rewrite"; §2.2.1: "strict equivalence before and after query
rewriting").

The pipeline mirrors LLM-rewriter systems (e.g. LLM-R2/GenRewrite):

1. a **rule library** of safe rewrites over the mini-SQL dialect
   (redundant-DISTINCT elimination, TRUE-predicate pruning, LIMIT
   pushdown past ORDER BY-free queries, constant-comparison folding);
2. an **LLM proposer** that suggests a rewrite (usually one of the rules,
   but — per the model's error channel — sometimes a *plausible wrong*
   rewrite that changes semantics, e.g. dropping a non-redundant
   DISTINCT);
3. an **equivalence verifier** that executes original and rewrite against
   the actual tables and compares result multisets, rejecting any
   non-equivalent proposal — the guardrail the tutorial says rewriting
   needs.

Cost is modeled by :func:`query_cost`, a simple logical-cost function
(rows scanned + rows materialized), so "rewrite helps" is measurable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..data.table import Table
from ..datalake.nl2sql import execute_sql, parse_sql
from ..errors import ExecutionError
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..llm.skills import SkillContext

RewriteRule = Callable[[str, Dict[str, Table]], Optional[str]]


# --------------------------------------------------------------- the rules
def rule_remove_redundant_distinct(sql: str, tables: Dict[str, Table]) -> Optional[str]:
    """DISTINCT over a key column of the base table is a no-op.

    The mini-dialect stores DISTINCT as ``SELECT DISTINCT col FROM t``;
    it is redundant when ``col`` is unique in ``t`` (checked against the
    actual data, as a catalog uniqueness constraint would be).
    """
    match = re.match(
        r"^SELECT\s+DISTINCT\s+(?P<col>\w+)\s+FROM\s+(?P<table>\w+)(?P<rest>.*)$",
        sql.strip(),
        re.IGNORECASE,
    )
    if match is None:
        return None
    table = tables.get(match.group("table"))
    if table is None:
        return None
    values = table.column_values(match.group("col"))
    if len(set(values)) != len(values):
        return None  # not unique: DISTINCT is load-bearing
    return f"SELECT {match.group('col')} FROM {match.group('table')}{match.group('rest')}"


_TRUE_PRED_RE = re.compile(
    r"\s+WHERE\s+1\s*=\s*1\s+AND\s+", re.IGNORECASE
)
_TRUE_ONLY_RE = re.compile(r"\s+WHERE\s+1\s*=\s*1\s*$", re.IGNORECASE)


def rule_prune_true_predicate(sql: str, tables: Dict[str, Table]) -> Optional[str]:
    """Drop tautological ``1 = 1`` conjuncts (ORM/codegen residue)."""
    if _TRUE_PRED_RE.search(sql):
        return _TRUE_PRED_RE.sub(" WHERE ", sql)
    if _TRUE_ONLY_RE.search(sql):
        return _TRUE_ONLY_RE.sub("", sql)
    return None


def rule_fold_constant_comparison(sql: str, tables: Dict[str, Table]) -> Optional[str]:
    """Fold ``col >= X AND col > Y`` into the tighter bound when both are
    numeric literals on the same column."""
    match = re.search(
        r"WHERE\s+(?P<c1>\w+)\s*(?P<o1>>=|>)\s*(?P<v1>\d+)\s+AND\s+"
        r"(?P<c2>\w+)\s*(?P<o2>>=|>)\s*(?P<v2>\d+)",
        sql,
        re.IGNORECASE,
    )
    if match is None or match.group("c1") != match.group("c2"):
        return None
    v1, v2 = int(match.group("v1")), int(match.group("v2"))
    if v1 >= v2:
        keep = f"{match.group('c1')} {match.group('o1')} {v1}"
    else:
        keep = f"{match.group('c2')} {match.group('o2')} {v2}"
    return sql[: match.start()] + "WHERE " + keep + sql[match.end():]


RULES: Dict[str, RewriteRule] = {
    "remove_redundant_distinct": rule_remove_redundant_distinct,
    "prune_true_predicate": rule_prune_true_predicate,
    "fold_constant_comparison": rule_fold_constant_comparison,
}


# ------------------------------------------------------------ cost + exec
def _strip_distinct(sql: str) -> str:
    return re.sub(r"SELECT\s+DISTINCT\s+", "SELECT ", sql, flags=re.IGNORECASE)


def run_query(sql: str, tables: Dict[str, Table]) -> List[tuple]:
    """Execute (handling the DISTINCT extension) -> sorted row multiset."""
    distinct = bool(re.match(r"^SELECT\s+DISTINCT\s+", sql.strip(), re.IGNORECASE))
    result = execute_sql(_strip_distinct(sql), tables)
    if distinct:
        result = result.distinct()
    return sorted(tuple(sorted(r.items())) for r in result.rows)


def query_cost(sql: str, tables: Dict[str, Table]) -> float:
    """Logical cost: base rows scanned + predicate evaluations + an extra
    pass for DISTINCT (the dedup sort)."""
    distinct = bool(re.match(r"^SELECT\s+DISTINCT\s+", sql.strip(), re.IGNORECASE))
    query = parse_sql(_strip_distinct(sql))
    base = tables.get(query.table)
    rows = len(base) if base is not None else 0
    cost = float(rows)
    if query.join_table and query.join_table in tables:
        cost += len(tables[query.join_table]) + rows
    cost += rows * len(query.where)
    if distinct:
        cost += rows  # dedup pass
    return cost


# ---------------------------------------------------------------- LLM side
def make_rewrite_skill(tables: Dict[str, Table]):
    """``rewrite`` skill: propose a rule's output, or (on an error draw) a
    plausible-but-wrong rewrite such as dropping a load-bearing DISTINCT."""

    def skill_rewrite(ctx: SkillContext):
        sql = ctx.prompt.input.strip()
        for rule in RULES.values():
            rewritten = rule(sql, tables)
            if rewritten is not None:
                if ctx.draw_correct(grounded=True):
                    return rewritten, {}
                break
        # Error channel: strip DISTINCT regardless of uniqueness — the
        # classic unsound "simplification".
        if re.match(r"^SELECT\s+DISTINCT\s+", sql, re.IGNORECASE):
            return _strip_distinct(sql), {"reason": "unsound-rewrite"}
        if ctx.draw_correct(grounded=True):
            return sql, {"reason": "no-rewrite-found"}
        # Another unsound proposal: drop the WHERE clause entirely.
        stripped = re.sub(r"\s+WHERE\s+.*$", "", sql, flags=re.IGNORECASE)
        return (stripped if stripped != sql else sql), {"reason": "unsound-rewrite"}

    return skill_rewrite


@dataclass
class RewriteOutcome:
    """One query's rewriting result."""

    original: str
    proposal: str
    accepted: bool
    equivalent: bool
    cost_before: float
    cost_after: float
    source: str  # "llm" | "rules"

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return 1.0
        return self.cost_before / self.cost_after


class QueryRewriter:
    """Rule/LLM rewriting with execute-and-compare equivalence checking."""

    def __init__(
        self, tables: Dict[str, Table], llm: Optional[SimLLM] = None, *, verify: bool = True
    ) -> None:
        self.tables = tables
        self.llm = llm
        self.verify = verify
        if llm is not None:
            llm.register_skill("rewrite", make_rewrite_skill(tables))

    def rewrite_with_rules(self, sql: str) -> RewriteOutcome:
        """Apply the first matching library rule (always sound)."""
        proposal = sql
        for rule in RULES.values():
            rewritten = rule(sql, self.tables)
            if rewritten is not None:
                proposal = rewritten
                break
        return self._finish(sql, proposal, source="rules")

    def rewrite_with_llm(self, sql: str) -> RewriteOutcome:
        """Ask the model for a rewrite; verify before accepting."""
        if self.llm is None:
            raise ExecutionError("no LLM configured for LLM rewriting")
        response = self.llm.generate(
            Prompt(
                task="rewrite",
                instruction="Rewrite the SQL to be cheaper but strictly equivalent.",
                input=sql,
            ).render(),
            tag="query-rewrite",
        )
        return self._finish(sql, response.text.strip(), source="llm")

    def _finish(self, sql: str, proposal: str, *, source: str) -> RewriteOutcome:
        cost_before = query_cost(sql, self.tables)
        try:
            equivalent = (
                run_query(sql, self.tables) == run_query(proposal, self.tables)
            )
            cost_after = query_cost(proposal, self.tables)
        except ExecutionError:
            equivalent = False
            cost_after = cost_before
        accepted = proposal != sql and (equivalent or not self.verify)
        return RewriteOutcome(
            original=sql,
            proposal=proposal,
            accepted=accepted,
            equivalent=equivalent,
            cost_before=cost_before,
            cost_after=cost_after if accepted else cost_before,
            source=source,
        )
