"""Data synthesis: generate artificial training data (§2.3.2).

The tutorial lists statistical methods, generative models, and rule-based
methods. Implemented, all seeded:

* :class:`MarkovSynthesizer` — the statistical/generative route: fit a
  bigram chain on real text, sample novel documents from it;
* :class:`TemplateSynthesizer` — the rule-based route: domain grammar
  templates with vocabulary sampling (same generator family the corpus
  builder uses, so synthetic data is distributionally on-target);
* :class:`TabularSynthesizer` — per-column marginal fitting + sampling for
  relational rows (the classic statistical baseline for tabular synthesis).

:func:`fidelity_report` scores synthetic text against real text: held-out
perplexity transfer and novelty (fraction of generated n-grams unseen in
the source).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..data.ngram import NGramLM
from ..data.synth import CorpusBuilder, CorpusConfig, TrainingDocument
from ..data.table import Table
from ..errors import ConfigError
from ..llm.tokenizer import default_tokenizer
from ..utils import derive_rng

_END = "</s>"


class MarkovSynthesizer:
    """Bigram Markov chain text generator fit on real documents."""

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        self._transitions: Dict[str, List[str]] = defaultdict(list)
        self._starts: List[str] = []

    def fit(self, docs: Sequence[TrainingDocument]) -> "MarkovSynthesizer":
        tok = default_tokenizer()
        for doc in docs:
            tokens = tok.content_tokens(doc.text)
            if not tokens:
                continue
            self._starts.append(tokens[0])
            for a, b in zip(tokens, tokens[1:]):
                self._transitions[a].append(b)
            self._transitions[tokens[-1]].append(_END)
        if not self._starts:
            raise ConfigError("fit requires non-empty documents")
        return self

    def sample(
        self, count: int, *, max_tokens: int = 80, domain: str = "synthetic"
    ) -> List[TrainingDocument]:
        rng = derive_rng(self.seed, "markov")
        docs = []
        for i in range(count):
            token = self._starts[int(rng.integers(0, len(self._starts)))]
            words = [token]
            for _ in range(max_tokens - 1):
                nexts = self._transitions.get(token)
                if not nexts:
                    break
                token = nexts[int(rng.integers(0, len(nexts)))]
                if token == _END:
                    break
                words.append(token)
            docs.append(
                TrainingDocument(
                    doc_id=f"markov-{i:04d}",
                    text=" ".join(words) + ".",
                    domain=domain,
                )
            )
        return docs


class TemplateSynthesizer:
    """Rule-based generation from the domain grammars of the corpus builder."""

    def __init__(self, *, seed: int = 0, sentences_per_doc: int = 8) -> None:
        self.seed = seed
        self.sentences_per_doc = sentences_per_doc

    def sample(self, count: int, *, domain: str = "news") -> List[TrainingDocument]:
        builder = CorpusBuilder(
            CorpusConfig(
                docs_per_domain=1,
                sentences_per_doc=self.sentences_per_doc,
                gibberish_fraction=0.0,
                boilerplate_fraction=0.0,
                repeated_fraction=0.0,
                toxic_fraction=0.0,
                exact_dup_fraction=0.0,
                near_dup_fraction=0.0,
                seed=self.seed,
            )
        )
        rng = derive_rng(self.seed, "template-synth", domain)
        docs = []
        for i in range(count):
            text = builder._clean_doc(domain, rng)
            docs.append(
                TrainingDocument(doc_id=f"tmpl-{domain}-{i:04d}", text=text, domain=domain)
            )
        return docs


class TabularSynthesizer:
    """Per-column marginal sampler for relational rows.

    Categorical columns sample from the empirical distribution; numeric
    columns sample from a fitted normal clipped to the observed range.
    """

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = seed
        self._columns: List[str] = []
        self._categorical: Dict[str, List[Any]] = {}
        self._numeric: Dict[str, Dict[str, float]] = {}
        self._dtypes: Dict[str, str] = {}

    def fit(self, table: Table) -> "TabularSynthesizer":
        if not len(table):
            raise ConfigError("cannot fit on an empty table")
        self._columns = table.schema.names()
        for col in table.schema.columns:
            values = [v for v in table.column_values(col.name) if v is not None]
            self._dtypes[col.name] = col.dtype
            if col.dtype in {"int", "float"} and values:
                arr = np.asarray(values, dtype=float)
                self._numeric[col.name] = {
                    "mean": float(arr.mean()),
                    "std": float(arr.std() or 1.0),
                    "min": float(arr.min()),
                    "max": float(arr.max()),
                }
            else:
                self._categorical[col.name] = values or [""]
        return self

    def sample(self, count: int, *, name: str = "synthetic") -> Table:
        if not self._columns:
            raise ConfigError("synthesizer not fitted")
        rng = derive_rng(self.seed, "tabular-synth")
        rows = []
        for _ in range(count):
            row: Dict[str, Any] = {}
            for col in self._columns:
                if col in self._numeric:
                    stats = self._numeric[col]
                    value = rng.normal(stats["mean"], stats["std"])
                    value = float(np.clip(value, stats["min"], stats["max"]))
                    row[col] = int(round(value)) if self._dtypes[col] == "int" else value
                else:
                    pool = self._categorical[col]
                    row[col] = pool[int(rng.integers(0, len(pool)))]
            rows.append(row)
        from ..data.table import Schema

        return Table(name, Schema(tuple(self._infer_columns())), rows)

    def _infer_columns(self):
        from ..data.table import Column

        return [Column(c, self._dtypes[c]) for c in self._columns]


def fidelity_report(
    real_docs: Sequence[TrainingDocument],
    synthetic_docs: Sequence[TrainingDocument],
    *,
    n: int = 3,
) -> Dict[str, float]:
    """Fidelity + novelty of synthetic text.

    * ``perplexity_transfer`` — perplexity of real held-out text under a
      model trained only on synthetic text (lower = synthetic captures the
      real distribution);
    * ``novelty`` — fraction of synthetic n-grams absent from the real
      corpus (higher = less verbatim copying). Defaults to trigrams: a
      bigram chain reuses source bigrams by construction, so bigram
      novelty is identically zero.
    """
    if not real_docs or not synthetic_docs:
        raise ConfigError("both corpora must be non-empty")
    lm = NGramLM(order=2).fit(d.text for d in synthetic_docs)
    transfer = lm.corpus_perplexity([d.text for d in real_docs])
    tok = default_tokenizer()

    def ngram_set(docs: Sequence[TrainingDocument]) -> set:
        grams = set()
        for doc in docs:
            tokens = tok.content_tokens(doc.text)
            grams.update(
                tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)
            )
        return grams

    real_grams = ngram_set(real_docs)
    synth_grams = ngram_set(synthetic_docs)
    novelty = (
        len(synth_grams - real_grams) / len(synth_grams) if synth_grams else 0.0
    )
    return {"perplexity_transfer": transfer, "novelty": novelty}
