"""LLM-in-the-loop data preparation (the paper's §2.4 open challenge).

Rule filters are cheap but brittle at the margin; LLM judgment is accurate
but costs per call. :class:`LLMAssistedFilter` combines them the way the
paper's "comprehensive, end-to-end solution" sketch suggests:

1. run the cheap signal (quality-classifier score);
2. accept/reject the *confident* band outright;
3. send only the ambiguous band to an LLM ``judge`` call.

The result is near-classifier cost with near-LLM accuracy — the same
cascade economics as the semantic-operator optimizer, applied to prep.
:class:`LLMPrepSystem` wires the assisted filter into a full
:class:`~repro.prep.pipeline.PrepPipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from .cleaning import QualityClassifier
from .pipeline import PrepPipeline


@dataclass
class AssistedFilterStats:
    """Where did each decision come from?"""

    classifier_decisions: int = 0
    llm_decisions: int = 0
    kept: int = 0
    dropped: int = 0

    @property
    def llm_fraction(self) -> float:
        total = self.classifier_decisions + self.llm_decisions
        return self.llm_decisions / total if total else 0.0


class LLMAssistedFilter:
    """Classifier-confident fast path + LLM slow path for the grey zone."""

    def __init__(
        self,
        classifier: QualityClassifier,
        llm: SimLLM,
        *,
        low_threshold: float = 0.25,
        high_threshold: float = 0.75,
    ) -> None:
        if not 0.0 <= low_threshold <= high_threshold <= 1.0:
            raise ConfigError("need 0 <= low <= high <= 1")
        self.classifier = classifier
        self.llm = llm
        self.low_threshold = low_threshold
        self.high_threshold = high_threshold

    def filter(
        self, docs: Sequence[TrainingDocument]
    ) -> Tuple[List[TrainingDocument], AssistedFilterStats]:
        stats = AssistedFilterStats()
        kept: List[TrainingDocument] = []
        for doc in docs:
            score = self.classifier.score(doc)
            if score >= self.high_threshold:
                stats.classifier_decisions += 1
                decision = True
            elif score <= self.low_threshold:
                stats.classifier_decisions += 1
                decision = False
            else:
                stats.llm_decisions += 1
                decision = self._llm_judge(doc)
            if decision:
                kept.append(doc)
                stats.kept += 1
            else:
                stats.dropped += 1
        return kept, stats

    def _llm_judge(self, doc: TrainingDocument) -> bool:
        prompt = Prompt(
            task="judge",
            instruction="Is this document fluent, informative text suitable for training?",
            input=doc.text[:400],
            fields={"predicate": "is_about informative fluent prose"},
        )
        response = self.llm.generate(prompt.render(), tag="prep-llm-judge")
        return response.text.strip().lower().startswith("y")


class LLMPrepSystem:
    """End-to-end LLM-in-the-loop preparation pipeline (open challenge C3)."""

    def __init__(
        self,
        llm: SimLLM,
        classifier: QualityClassifier,
        *,
        low_threshold: float = 0.25,
        high_threshold: float = 0.75,
    ) -> None:
        self.llm = llm
        self.assisted = LLMAssistedFilter(
            classifier,
            llm,
            low_threshold=low_threshold,
            high_threshold=high_threshold,
        )
        self.last_stats: Optional[AssistedFilterStats] = None

    def build_pipeline(self) -> PrepPipeline:
        """Toxicity -> LLM-assisted quality -> line dedup -> MinHash dedup."""
        from .cleaning import ToxicityFilter
        from .dedup import MinHashDeduper, line_dedup

        tox = ToxicityFilter()
        deduper = MinHashDeduper()

        def assisted_stage(docs: List[TrainingDocument]) -> List[TrainingDocument]:
            kept, stats = self.assisted.filter(docs)
            self.last_stats = stats
            return kept

        return (
            PrepPipeline()
            .add_stage("toxicity_filter", lambda docs: tox.filter(docs)[0])
            .add_stage("llm_assisted_quality", assisted_stage)
            .add_stage("line_dedup", lambda docs: line_dedup(docs)[0])
            .add_stage("minhash_dedup", lambda docs: deduper.dedup(docs).kept)
        )
