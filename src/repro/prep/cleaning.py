"""Data cleaning: quality filtering and toxicity filtering (§2.3.2).

Three quality-filter families the tutorial lists, all with the same
interface (``keep(doc) -> bool`` plus a reason):

* :class:`RuleBasedQualityFilter` — Gopher/C4-style heuristics [41, 46]:
  word-length bounds, alphabetic ratio, repetition ratio, stopword
  presence;
* :class:`PerplexityFilter` — metric-threshold filtering [39] under a
  reference language model;
* :class:`QualityClassifier` — a small logistic-regression classifier over
  text features, trained on labelled seed docs [10, 62].

Plus :class:`ToxicityFilter` — lexicon + hashed-ngram filtering [30, 46].
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.ngram import NGramLM
from ..data.synth import TOXIC_MARKERS, TrainingDocument
from ..errors import ConfigError
from ..llm.tokenizer import default_tokenizer
from ..rag.chunking import split_sentences

_STOPWORDS = {"the", "a", "this", "that", "and", "of", "in", "to", "is", "every", "another"}


@dataclass(frozen=True)
class FilterDecision:
    """Keep/drop verdict with the firing rule."""

    keep: bool
    reason: str = ""


def text_features(text: str) -> Dict[str, float]:
    """Quality-correlated features shared by rules and the classifier."""
    tokens = default_tokenizer().content_tokens(text)
    if not tokens:
        return {
            "mean_word_len": 0.0,
            "alpha_ratio": 0.0,
            "stopword_ratio": 0.0,
            "repetition_ratio": 1.0,
            "char_entropy": 0.0,
            "distinct_ratio": 0.0,
        }
    mean_len = sum(len(t) for t in tokens) / len(tokens)
    alpha = sum(1 for t in tokens if t.isalpha()) / len(tokens)
    stop = sum(1 for t in tokens if t in _STOPWORDS) / len(tokens)
    sentences = [s.strip().lower() for s in split_sentences(text)]
    most_common = Counter(sentences).most_common(1)
    repetition = most_common[0][1] / len(sentences) if sentences else 1.0
    chars = Counter(text.lower())
    total_chars = sum(chars.values())
    entropy = -sum(
        (c / total_chars) * math.log2(c / total_chars) for c in chars.values()
    )
    distinct = len(set(tokens)) / len(tokens)
    return {
        "mean_word_len": mean_len,
        "alpha_ratio": alpha,
        "stopword_ratio": stop,
        "repetition_ratio": repetition,
        "char_entropy": entropy,
        "distinct_ratio": distinct,
    }


class RuleBasedQualityFilter:
    """Heuristic quality rules; a document failing any rule is dropped."""

    def __init__(
        self,
        *,
        min_mean_word_len: float = 2.5,
        max_mean_word_len: float = 12.0,
        min_alpha_ratio: float = 0.7,
        min_stopword_ratio: float = 0.03,
        max_repetition_ratio: float = 0.3,
    ) -> None:
        self.min_mean_word_len = min_mean_word_len
        self.max_mean_word_len = max_mean_word_len
        self.min_alpha_ratio = min_alpha_ratio
        self.min_stopword_ratio = min_stopword_ratio
        self.max_repetition_ratio = max_repetition_ratio

    def decide(self, doc: TrainingDocument) -> FilterDecision:
        f = text_features(doc.text)
        if not self.min_mean_word_len <= f["mean_word_len"] <= self.max_mean_word_len:
            return FilterDecision(False, "word-length")
        if f["alpha_ratio"] < self.min_alpha_ratio:
            return FilterDecision(False, "alpha-ratio")
        if f["stopword_ratio"] < self.min_stopword_ratio:
            return FilterDecision(False, "stopwords")
        if f["repetition_ratio"] > self.max_repetition_ratio:
            return FilterDecision(False, "repetition")
        return FilterDecision(True)

    def filter(self, docs: Sequence[TrainingDocument]) -> Tuple[List[TrainingDocument], List[TrainingDocument]]:
        kept, dropped = [], []
        for doc in docs:
            (kept if self.decide(doc).keep else dropped).append(doc)
        return kept, dropped


class PerplexityFilter:
    """Drop documents whose perplexity under a reference LM exceeds a cut.

    The reference LM should be fit on known-good text (e.g. the builder's
    clean eval set), mirroring the CCNet/KenLM practice.
    """

    def __init__(self, reference_lm: NGramLM, *, max_perplexity: float) -> None:
        if max_perplexity <= 1.0:
            raise ConfigError("max_perplexity must exceed 1.0")
        self.reference_lm = reference_lm
        self.max_perplexity = max_perplexity

    def decide(self, doc: TrainingDocument) -> FilterDecision:
        ppl = self.reference_lm.perplexity(doc.text)
        if ppl > self.max_perplexity:
            return FilterDecision(False, f"perplexity={ppl:.0f}")
        return FilterDecision(True)

    def filter(self, docs: Sequence[TrainingDocument]) -> Tuple[List[TrainingDocument], List[TrainingDocument]]:
        kept, dropped = [], []
        for doc in docs:
            (kept if self.decide(doc).keep else dropped).append(doc)
        return kept, dropped


_FEATURE_ORDER = [
    "mean_word_len",
    "alpha_ratio",
    "stopword_ratio",
    "repetition_ratio",
    "char_entropy",
    "distinct_ratio",
]


class QualityClassifier:
    """Logistic regression over :func:`text_features` (numpy, full-batch GD)."""

    def __init__(self, *, lr: float = 0.5, epochs: int = 300, seed: int = 0) -> None:
        self.lr = lr
        self.epochs = epochs
        self.seed = seed
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    def _matrix(self, docs: Sequence[TrainingDocument]) -> np.ndarray:
        rows = []
        for doc in docs:
            f = text_features(doc.text)
            rows.append([f[name] for name in _FEATURE_ORDER])
        return np.asarray(rows, dtype=np.float64)

    def fit(
        self, docs: Sequence[TrainingDocument], labels: Sequence[bool]
    ) -> "QualityClassifier":
        """Train on (doc, is_high_quality) pairs."""
        if len(docs) != len(labels) or not docs:
            raise ConfigError("fit needs equal non-empty docs and labels")
        x = self._matrix(docs)
        self._mean = x.mean(axis=0)
        self._std = x.std(axis=0)
        self._std[self._std == 0] = 1.0
        x = (x - self._mean) / self._std
        x = np.hstack([x, np.ones((x.shape[0], 1))])
        y = np.asarray(labels, dtype=np.float64)
        w = np.zeros(x.shape[1])
        for _ in range(self.epochs):
            p = 1.0 / (1.0 + np.exp(-(x @ w)))
            w -= self.lr * (x.T @ (p - y)) / len(y)
        self._weights = w
        return self

    def score(self, doc: TrainingDocument) -> float:
        """P(high quality)."""
        if self._weights is None:
            raise ConfigError("classifier not fitted")
        f = text_features(doc.text)
        x = np.asarray([f[name] for name in _FEATURE_ORDER], dtype=np.float64)
        x = (x - self._mean) / self._std
        x = np.append(x, 1.0)
        return float(1.0 / (1.0 + np.exp(-(x @ self._weights))))

    def decide(self, doc: TrainingDocument, *, threshold: float = 0.5) -> FilterDecision:
        score = self.score(doc)
        if score < threshold:
            return FilterDecision(False, f"classifier={score:.2f}")
        return FilterDecision(True)

    def filter(
        self, docs: Sequence[TrainingDocument], *, threshold: float = 0.5
    ) -> Tuple[List[TrainingDocument], List[TrainingDocument]]:
        kept, dropped = [], []
        for doc in docs:
            (kept if self.decide(doc, threshold=threshold).keep else dropped).append(doc)
        return kept, dropped


class ToxicityFilter:
    """Lexicon-based toxicity filter (Perspective-style marker matching)."""

    def __init__(self, lexicon: Optional[Sequence[str]] = None) -> None:
        self.lexicon = sorted({w.lower() for w in (lexicon or TOXIC_MARKERS)})

    def decide(self, doc: TrainingDocument) -> FilterDecision:
        # Substring matching: subword tokenization can split long marker
        # words, so token-set matching would silently miss them.
        lowered = doc.text.lower()
        for marker in self.lexicon:
            if marker in lowered:
                return FilterDecision(False, f"toxic:{marker}")
        return FilterDecision(True)

    def filter(self, docs: Sequence[TrainingDocument]) -> Tuple[List[TrainingDocument], List[TrainingDocument]]:
        kept, dropped = [], []
        for doc in docs:
            (kept if self.decide(doc).keep else dropped).append(doc)
        return kept, dropped


def filter_metrics(
    docs: Sequence[TrainingDocument],
    kept: Sequence[TrainingDocument],
    *,
    target: str = "low_quality",
) -> Dict[str, float]:
    """Precision/recall of a filter at removing the targeted defect.

    ``target``: ``"low_quality"`` (non-clean quality label) or ``"toxic"``.
    """
    kept_ids = {d.doc_id for d in kept}
    removed = [d for d in docs if d.doc_id not in kept_ids]

    def is_bad(d: TrainingDocument) -> bool:
        if target == "toxic":
            return d.is_toxic
        return d.quality != "clean"

    bad_total = sum(1 for d in docs if is_bad(d))
    if not removed:
        return {"precision": 1.0 if bad_total == 0 else 0.0, "recall": 0.0 if bad_total else 1.0}
    tp = sum(1 for d in removed if is_bad(d))
    return {
        "precision": tp / len(removed),
        "recall": tp / bad_total if bad_total else 1.0,
    }
