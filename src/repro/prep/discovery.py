"""Data discovery: finding the right domain mixture for pretraining (§2.3.2).

Three mixture-setting strategies from the tutorial's citations:

* :func:`heuristic_mixture` — hand-set weights (GLaM/Pile practice [16, 20]);
* :class:`DSIRMixer` — importance resampling [64]: weight candidate
  documents by the likelihood ratio of target vs. source n-gram models and
  resample; the induced domain histogram is the discovered mixture;
* :class:`GradientMixer` — DOGE-flavoured [18]: multiplicative-weights
  updates where each domain's "gradient" is its held-out contribution
  (how much a proxy trained with the domain upweighted improves target
  perplexity).

:class:`MixtureEvaluator` trains the n-gram proxy under a mixture and
reports target perplexity, the downstream metric (Data-Juicer's evaluation
loop [13]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.ngram import NGramLM
from ..data.synth import DOMAINS, TrainingDocument
from ..errors import ConfigError
from ..utils import derive_rng

Mixture = Dict[str, float]


def normalize_mixture(weights: Mixture) -> Mixture:
    """Normalize weights to sum to 1 (dropping non-positive entries)."""
    positive = {k: v for k, v in weights.items() if v > 0}
    total = sum(positive.values())
    if total <= 0:
        raise ConfigError("mixture must contain positive weights")
    return {k: v / total for k, v in sorted(positive.items())}


def heuristic_mixture(**weights: float) -> Mixture:
    """Hand-set mixture, normalized (the experimental-intuition baseline)."""
    return normalize_mixture(dict(weights))


def empirical_mixture(docs: Sequence[TrainingDocument]) -> Mixture:
    """The corpus's natural domain histogram ("no discovery" baseline)."""
    counts: Dict[str, float] = {}
    for doc in docs:
        counts[doc.domain] = counts.get(doc.domain, 0.0) + 1.0
    return normalize_mixture(counts)


def sample_by_mixture(
    docs: Sequence[TrainingDocument],
    mixture: Mixture,
    budget: int,
    *,
    seed: int = 0,
) -> List[int]:
    """Draw a ``budget``-sized subset matching the domain mixture."""
    if budget <= 0:
        raise ConfigError("budget must be positive")
    mixture = normalize_mixture(mixture)
    rng = derive_rng(seed, "mixture-sample")
    by_domain: Dict[str, List[int]] = {}
    for i, doc in enumerate(docs):
        by_domain.setdefault(doc.domain, []).append(i)
    selected: List[int] = []
    for domain, weight in mixture.items():
        pool = by_domain.get(domain, [])
        if not pool:
            continue
        want = int(round(budget * weight))
        take = min(want, len(pool))
        picks = rng.permutation(len(pool))[:take]
        selected.extend(pool[int(p)] for p in picks)
    return sorted(selected)


class DSIRMixer:
    """Data Selection with Importance Resampling [64].

    Fits target and source n-gram models; each candidate document gets an
    importance weight ``exp(log p_target(x) - log p_source(x))`` (per
    token). Resampling by those weights yields both a document selection
    and — via the selected documents' domain histogram — a discovered
    mixture.
    """

    def __init__(self, *, order: int = 1, seed: int = 0) -> None:
        self.order = order
        self.seed = seed
        self._target_lm: Optional[NGramLM] = None
        self._source_lm: Optional[NGramLM] = None

    def fit(
        self, source_docs: Sequence[TrainingDocument], target_texts: Sequence[str]
    ) -> "DSIRMixer":
        self._target_lm = NGramLM(order=self.order, interpolation=(1.0,) * self.order).fit(
            target_texts
        )
        self._source_lm = NGramLM(order=self.order, interpolation=(1.0,) * self.order).fit(
            d.text for d in source_docs
        )
        return self

    def log_importance(self, text: str) -> float:
        """Per-token log importance weight of one document."""
        if self._target_lm is None or self._source_lm is None:
            raise ConfigError("DSIRMixer not fitted")
        tokens = max(
            len(self._target_lm.tokenizer.content_tokens(text)), 1
        )
        return (
            self._target_lm.logprob(text) - self._source_lm.logprob(text)
        ) / tokens

    def resample(
        self, docs: Sequence[TrainingDocument], budget: int
    ) -> List[int]:
        """Gumbel-top-k resampling by importance weight."""
        if budget <= 0:
            raise ConfigError("budget must be positive")
        rng = derive_rng(self.seed, "dsir")
        log_w = np.array([self.log_importance(d.text) for d in docs])
        gumbel = -np.log(-np.log(rng.random(len(docs)) + 1e-12) + 1e-12)
        keys = log_w + gumbel
        order = np.argsort(-keys)[: min(budget, len(docs))]
        return sorted(int(i) for i in order)

    def discovered_mixture(
        self, docs: Sequence[TrainingDocument], budget: int
    ) -> Mixture:
        selected = self.resample(docs, budget)
        return empirical_mixture([docs[i] for i in selected])


class GradientMixer:
    """Multiplicative-weights domain reweighting (DOGE-flavoured [18]).

    Iteratively: train a per-domain proxy, measure each domain's marginal
    utility on the target set (negative perplexity), and update domain
    weights multiplicatively toward useful domains.
    """

    def __init__(
        self,
        *,
        rounds: int = 3,
        learning_rate: float = 1.0,
        order: int = 2,
    ) -> None:
        self.rounds = rounds
        self.learning_rate = learning_rate
        self.order = order

    def discover(
        self,
        docs: Sequence[TrainingDocument],
        target_texts: Sequence[str],
        *,
        domains: Sequence[str] = DOMAINS,
    ) -> Mixture:
        by_domain: Dict[str, List[TrainingDocument]] = {d: [] for d in domains}
        for doc in docs:
            if doc.domain in by_domain:
                by_domain[doc.domain].append(doc)
        # Per-domain proxies are mixture-independent; fit once.
        domain_ppl: Dict[str, float] = {}
        for domain, members in by_domain.items():
            if not members:
                domain_ppl[domain] = float("inf")
                continue
            lm = NGramLM(order=self.order).fit(d.text for d in members)
            domain_ppl[domain] = lm.corpus_perplexity(list(target_texts))
        weights = {d: 1.0 for d in domains if by_domain[d]}
        finite = [p for p in domain_ppl.values() if math.isfinite(p)]
        scale = max(np.mean(finite), 1e-9) if finite else 1.0
        for _ in range(self.rounds):
            for domain in weights:
                utility = -domain_ppl[domain] / scale  # higher = more useful
                weights[domain] *= math.exp(self.learning_rate * utility)
            weights = dict(normalize_mixture(weights))
        return normalize_mixture(weights)


@dataclass
class MixtureEvaluation:
    """Result of training the proxy under one mixture."""

    mixture: Mixture
    target_perplexity: float
    docs_used: int


class MixtureEvaluator:
    """Data-Juicer-style loop: mixture -> sample -> train proxy -> evaluate."""

    def __init__(
        self,
        docs: Sequence[TrainingDocument],
        target_texts: Sequence[str],
        *,
        budget: int = 200,
        order: int = 2,
        seed: int = 0,
    ) -> None:
        self.docs = list(docs)
        self.target_texts = list(target_texts)
        self.budget = budget
        self.order = order
        self.seed = seed

    def evaluate(self, mixture: Mixture) -> MixtureEvaluation:
        selected = sample_by_mixture(self.docs, mixture, self.budget, seed=self.seed)
        lm = NGramLM(order=self.order).fit(self.docs[i].text for i in selected)
        return MixtureEvaluation(
            mixture=normalize_mixture(mixture),
            target_perplexity=lm.corpus_perplexity(self.target_texts),
            docs_used=len(selected),
        )

    def compare(self, mixtures: Dict[str, Mixture]) -> Dict[str, MixtureEvaluation]:
        """Evaluate several named mixtures under the same budget."""
        return {name: self.evaluate(mix) for name, mix in mixtures.items()}
