"""Instruction-tuning (SFT) and preference (RLHF) data preparation.

The paper's LLM life-cycle includes "fine-tuning (SFT and RLHF)" and its
Data4LLM challenge #1 is preparing high-quality data for it. This module
closes that gap with the standard recipe:

* :class:`InstructionGenerator` — self-instruct-style generation of
  (instruction, response) pairs from a grounded source (world facts), so
  every generated response has a verifiable gold answer;
* :func:`filter_sft_pairs` — SFT quality gates: grounded-correctness
  check, response-length bounds, near-duplicate-instruction dedup;
* :class:`PreferencePairBuilder` — RLHF data: for each instruction,
  sample multiple candidate responses from the policy model and label the
  grounded-correct one as *chosen* vs a hallucinated *rejected*;
* :class:`RewardModel` — a trainable proxy reward model (logistic head on
  embedding features of (instruction, response)) evaluated by pairwise
  ranking accuracy — the metric RLHF data quality is judged by.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.world import ATTRIBUTE_QUESTIONS, World
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..utils import derive_rng


@dataclass(frozen=True)
class SFTPair:
    """One supervised fine-tuning example with provenance."""

    instruction: str
    response: str
    gold: str
    subject: str
    attribute: str

    @property
    def is_correct(self) -> bool:
        return self.response.strip() == self.gold


@dataclass(frozen=True)
class PreferencePair:
    """One RLHF comparison: same instruction, chosen > rejected."""

    instruction: str
    chosen: str
    rejected: str


class InstructionGenerator:
    """Generate grounded instruction/response pairs from world facts."""

    def __init__(self, world: World, llm: SimLLM, *, seed: int = 0) -> None:
        self.world = world
        self.llm = llm
        self.seed = seed

    def generate(self, count: int) -> List[SFTPair]:
        """Sample (entity, attribute) instructions; responses come from the
        model (so they carry its error profile, as self-instruct data does)."""
        rng = derive_rng(self.seed, "sft-gen")
        entities = list(self.world.iter_entities())
        pairs: List[SFTPair] = []
        while len(pairs) < count:
            entity = entities[int(rng.integers(0, len(entities)))]
            keyed = [
                (attr, template)
                for (etype, attr), template in ATTRIBUTE_QUESTIONS.items()
                if etype == entity.etype and attr in entity.attributes
            ]
            attr, template = keyed[int(rng.integers(0, len(keyed)))]
            instruction = template.format(subject=entity.name)
            response = self.llm.generate(
                Prompt(task="qa", input=instruction).render(), tag="sft-gen"
            ).text
            pairs.append(
                SFTPair(
                    instruction=instruction,
                    response=response,
                    gold=entity.attributes[attr],
                    subject=entity.name,
                    attribute=attr,
                )
            )
        return pairs


def filter_sft_pairs(
    pairs: Sequence[SFTPair],
    *,
    grounding_facts: Optional[Dict[Tuple[str, str], str]] = None,
    min_response_chars: int = 1,
    max_response_chars: int = 200,
    embedder: Optional[EmbeddingModel] = None,
    dedup_threshold: float = 0.95,
) -> Tuple[List[SFTPair], Dict[str, int]]:
    """SFT quality gates: grounding, length, instruction near-dedup.

    ``grounding_facts`` maps (subject_lower, attribute) -> stated value
    (e.g. built from the document corpus); pairs whose response
    contradicts it are dropped — hallucinated responses must not become
    supervision. Returns (kept, per-gate drop counts).
    """
    embedder = embedder or EmbeddingModel()
    drops = {"grounding": 0, "length": 0, "duplicate": 0, "abstention": 0}
    kept: List[SFTPair] = []
    kept_vectors: List[np.ndarray] = []
    for pair in pairs:
        if pair.response.strip().lower() == "unknown":
            drops["abstention"] += 1
            continue
        if not min_response_chars <= len(pair.response) <= max_response_chars:
            drops["length"] += 1
            continue
        if grounding_facts is not None:
            stated = grounding_facts.get((pair.subject.lower(), pair.attribute))
            if stated is not None and stated != pair.response.strip():
                drops["grounding"] += 1
                continue
        vector = embedder.embed(pair.instruction)
        if any(float(np.dot(vector, kv)) > dedup_threshold for kv in kept_vectors):
            drops["duplicate"] += 1
            continue
        kept.append(pair)
        kept_vectors.append(vector)
    return kept, drops


class PreferencePairBuilder:
    """Build chosen/rejected pairs by sampling the policy at temperatures."""

    def __init__(self, llm: SimLLM, *, samples: int = 4, seed: int = 0) -> None:
        if samples < 2:
            raise ConfigError("need at least 2 samples to form a preference")
        self.llm = llm
        self.samples = samples
        self.seed = seed

    def build(self, pairs: Sequence[SFTPair]) -> List[PreferencePair]:
        """For instructions where the policy produces both a correct and an
        incorrect committed answer, emit a preference pair."""
        preferences: List[PreferencePair] = []
        for pair in pairs:
            rendered = Prompt(task="qa", input=pair.instruction).render()
            answers = {
                self.llm.generate(
                    rendered, temperature=0.3 * i, tag="pref-sample"
                ).text.strip()
                for i in range(self.samples)
            }
            correct = [a for a in answers if a == pair.gold]
            wrong = [a for a in answers if a != pair.gold and a.lower() != "unknown"]
            if correct and wrong:
                preferences.append(
                    PreferencePair(
                        instruction=pair.instruction,
                        chosen=correct[0],
                        rejected=sorted(wrong)[0],
                    )
                )
        return preferences


class RewardModel:
    """Pairwise reward model: logistic head over (instruction, response)
    embedding features, trained on preference pairs (Bradley-Terry)."""

    def __init__(self, embedder: Optional[EmbeddingModel] = None, *, lr: float = 0.3,
                 epochs: int = 150, seed: int = 0) -> None:
        self.embedder = embedder or EmbeddingModel()
        self.lr = lr
        self.epochs = epochs
        self.seed = seed
        self._weights: Optional[np.ndarray] = None

    def _features(self, instruction: str, response: str) -> np.ndarray:
        ivec = self.embedder.embed(instruction)
        rvec = self.embedder.embed(response)
        return np.concatenate(
            [
                rvec,
                [float(np.dot(ivec, rvec))],
                [min(len(response), 200) / 200.0],
                [1.0 if response.strip().lower() == "unknown" else 0.0],
            ]
        )

    def fit(self, pairs: Sequence[PreferencePair]) -> "RewardModel":
        if not pairs:
            raise ConfigError("cannot fit a reward model on zero pairs")
        chosen = np.stack([self._features(p.instruction, p.chosen) for p in pairs])
        rejected = np.stack([self._features(p.instruction, p.rejected) for p in pairs])
        diff = chosen - rejected
        w = np.zeros(diff.shape[1])
        for _ in range(self.epochs):
            margins = diff @ w
            grad = -(diff.T @ (1.0 / (1.0 + np.exp(margins)))) / len(pairs)
            w -= self.lr * grad
        self._weights = w
        return self

    def score(self, instruction: str, response: str) -> float:
        if self._weights is None:
            raise ConfigError("reward model not fitted")
        return float(self._features(instruction, response) @ self._weights)

    def ranking_accuracy(self, pairs: Sequence[PreferencePair]) -> float:
        """Fraction of pairs where chosen outscores rejected."""
        if not pairs:
            return 0.0
        wins = sum(
            self.score(p.instruction, p.chosen) > self.score(p.instruction, p.rejected)
            for p in pairs
        )
        return wins / len(pairs)
