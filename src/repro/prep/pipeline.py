"""Composable data-preparation pipeline with per-stage tracing (Data-Juicer).

Data-Juicer's contribution [13] is not any single operator but the
*composable, observable pipeline*: stages chain, and every stage reports
what it consumed, produced, and dropped. :class:`PrepPipeline` provides
that: stages are named callables over document lists; :meth:`run` returns
the final corpus plus a :class:`PipelineReport` with per-stage token/doc
deltas and timings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..data.ngram import NGramLM
from ..data.synth import TrainingDocument
from ..errors import PipelineError
from ..llm.tokenizer import default_tokenizer

Stage = Callable[[List[TrainingDocument]], List[TrainingDocument]]


@dataclass
class StageReport:
    """One stage's accounting."""

    name: str
    docs_in: int
    docs_out: int
    tokens_in: int
    tokens_out: int
    seconds: float

    @property
    def docs_dropped(self) -> int:
        return self.docs_in - self.docs_out

    @property
    def token_reduction(self) -> float:
        if self.tokens_in == 0:
            return 0.0
        return 1.0 - self.tokens_out / self.tokens_in


@dataclass
class PipelineReport:
    """Full-run accounting."""

    stages: List[StageReport] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"{'stage':<24}{'docs in':>9}{'docs out':>9}{'tok in':>10}"
            f"{'tok out':>10}{'tok -%':>8}{'sec':>8}"
        ]
        for s in self.stages:
            lines.append(
                f"{s.name:<24}{s.docs_in:>9}{s.docs_out:>9}{s.tokens_in:>10}"
                f"{s.tokens_out:>10}{s.token_reduction * 100:>7.1f}%{s.seconds:>8.2f}"
            )
        return "\n".join(lines)

    @property
    def total_token_reduction(self) -> float:
        if not self.stages or self.stages[0].tokens_in == 0:
            return 0.0
        return 1.0 - self.stages[-1].tokens_out / self.stages[0].tokens_in


class PrepPipeline:
    """An ordered chain of named preparation stages."""

    def __init__(self) -> None:
        self._stages: List[Tuple[str, Stage]] = []

    def add_stage(self, name: str, stage: Stage) -> "PrepPipeline":
        """Append a stage; returns self for chaining."""
        if any(existing == name for existing, _ in self._stages):
            raise PipelineError(f"duplicate stage name {name!r}")
        self._stages.append((name, stage))
        return self

    def stage_names(self) -> List[str]:
        return [name for name, _ in self._stages]

    def run(
        self, docs: Sequence[TrainingDocument]
    ) -> Tuple[List[TrainingDocument], PipelineReport]:
        """Execute all stages; raises :class:`PipelineError` on stage failure."""
        if not self._stages:
            raise PipelineError("pipeline has no stages")
        tok = default_tokenizer()

        def token_total(items: Sequence[TrainingDocument]) -> int:
            # One batched tokenizer pass per stage boundary; equals summing
            # tok.count(d.text) per document.
            return sum(tok.count_many([d.text for d in items]))

        current = list(docs)
        report = PipelineReport()
        for name, stage in self._stages:
            docs_in = len(current)
            tokens_in = token_total(current)
            started = time.perf_counter()
            try:
                current = list(stage(current))
            except Exception as exc:
                raise PipelineError(f"stage {name!r} failed: {exc}") from exc
            report.stages.append(
                StageReport(
                    name=name,
                    docs_in=docs_in,
                    docs_out=len(current),
                    tokens_in=tokens_in,
                    tokens_out=token_total(current),
                    seconds=time.perf_counter() - started,
                )
            )
        return current, report


def standard_pipeline(
    *,
    reference_lm: "Optional[NGramLM]" = None,
    max_perplexity: Optional[float] = None,
    dedup: bool = True,
    toxicity: bool = True,
    quality_rules: bool = True,
    line_level: bool = True,
) -> PrepPipeline:
    """The canonical cleaning chain: toxicity -> rules -> [ppl] -> line -> dedup.

    Order follows practice: cheap filters first (they shrink what the more
    expensive near-dup pass must shingle).
    """
    from .cleaning import PerplexityFilter, RuleBasedQualityFilter, ToxicityFilter
    from .dedup import MinHashDeduper, line_dedup

    pipeline = PrepPipeline()
    if toxicity:
        tox = ToxicityFilter()
        pipeline.add_stage("toxicity_filter", lambda docs: tox.filter(docs)[0])
    if quality_rules:
        rules = RuleBasedQualityFilter()
        pipeline.add_stage("quality_rules", lambda docs: rules.filter(docs)[0])
    if reference_lm is not None and max_perplexity is not None:
        ppl = PerplexityFilter(reference_lm, max_perplexity=max_perplexity)
        pipeline.add_stage("perplexity_filter", lambda docs: ppl.filter(docs)[0])
    if line_level:
        pipeline.add_stage("line_dedup", lambda docs: line_dedup(docs)[0])
    if dedup:
        deduper = MinHashDeduper()
        pipeline.add_stage("minhash_dedup", lambda docs: deduper.dedup(docs).kept)
    return pipeline
