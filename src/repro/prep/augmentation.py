"""Data augmentation: grow training-set diversity by transformation (§2.3.2).

The tutorial names "data linking, synonym replacement, etc."; implemented:

* :func:`synonym_replace` — swap words for in-domain lexicon neighbours;
* :func:`sentence_shuffle` — permute sentence order (content-preserving);
* :func:`token_dropout` — randomly drop a small fraction of words
  (robustness-style noising);
* :func:`link_documents` — data linking: concatenate same-domain document
  pairs into longer composite examples;
* :class:`Augmenter` — composes strategies and tracks provenance.

:func:`diversity_score` quantifies what augmentation buys: distinct-n-gram
fraction over the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.synth import _DOMAIN_NOUNS, _DOMAIN_VERBS, TrainingDocument
from ..errors import ConfigError
from ..llm.tokenizer import default_tokenizer
from ..rag.chunking import split_sentences
from ..utils import derive_rng


def synonym_replace(
    doc: TrainingDocument, *, rate: float = 0.15, seed: int = 0
) -> TrainingDocument:
    """Replace ~``rate`` of content words with same-domain lexicon words."""
    if not 0.0 <= rate <= 1.0:
        raise ConfigError("rate must be in [0, 1]")
    rng = derive_rng(seed, "aug-syn", doc.doc_id)
    nouns = _DOMAIN_NOUNS.get(doc.domain, [])
    verbs = _DOMAIN_VERBS.get(doc.domain, [])
    noun_set, verb_set = set(nouns), set(verbs)
    words = doc.text.split()
    for i, word in enumerate(words):
        if rng.random() > rate:
            continue
        stripped = word.strip(".,").lower()
        if stripped in noun_set and len(nouns) > 1:
            replacement = nouns[int(rng.integers(0, len(nouns)))]
        elif stripped in verb_set and len(verbs) > 1:
            replacement = verbs[int(rng.integers(0, len(verbs)))]
        else:
            continue
        suffix = word[len(stripped):] if word.lower().startswith(stripped) else ""
        words[i] = replacement + suffix
    return _derived(doc, " ".join(words), "syn")


def sentence_shuffle(doc: TrainingDocument, *, seed: int = 0) -> TrainingDocument:
    """Permute sentence order."""
    rng = derive_rng(seed, "aug-shuffle", doc.doc_id)
    sentences = split_sentences(doc.text)
    order = rng.permutation(len(sentences))
    return _derived(doc, " ".join(sentences[int(i)] for i in order), "shuf")


def token_dropout(
    doc: TrainingDocument, *, rate: float = 0.1, seed: int = 0
) -> TrainingDocument:
    """Drop ~``rate`` of words uniformly."""
    if not 0.0 <= rate < 1.0:
        raise ConfigError("rate must be in [0, 1)")
    rng = derive_rng(seed, "aug-drop", doc.doc_id)
    words = [w for w in doc.text.split() if rng.random() > rate]
    return _derived(doc, " ".join(words) if words else doc.text, "drop")


def link_documents(
    left: TrainingDocument, right: TrainingDocument
) -> TrainingDocument:
    """Data linking: compose two related documents into one longer example."""
    return TrainingDocument(
        doc_id=f"{left.doc_id}+{right.doc_id}",
        text=left.text + " " + right.text,
        domain=left.domain,
        quality=left.quality if left.quality == right.quality else "clean",
        is_toxic=left.is_toxic or right.is_toxic,
    )


def _derived(doc: TrainingDocument, text: str, tag: str) -> TrainingDocument:
    return TrainingDocument(
        doc_id=f"{doc.doc_id}~{tag}",
        text=text,
        domain=doc.domain,
        quality=doc.quality,
        is_toxic=doc.is_toxic,
    )


STRATEGIES = {
    "synonym": synonym_replace,
    "shuffle": sentence_shuffle,
    "dropout": token_dropout,
}


class Augmenter:
    """Composable corpus augmentation."""

    def __init__(
        self,
        strategies: Sequence[str] = ("synonym", "shuffle"),
        *,
        copies_per_doc: int = 1,
        link_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        unknown = [s for s in strategies if s not in STRATEGIES]
        if unknown:
            raise ConfigError(f"unknown strategies {unknown}; have {sorted(STRATEGIES)}")
        if copies_per_doc < 0:
            raise ConfigError("copies_per_doc must be >= 0")
        self.strategies = list(strategies)
        self.copies_per_doc = copies_per_doc
        self.link_fraction = link_fraction
        self.seed = seed

    def augment(self, docs: Sequence[TrainingDocument]) -> List[TrainingDocument]:
        """Original docs plus generated variants (originals always first)."""
        rng = derive_rng(self.seed, "augmenter")
        out = list(docs)
        for copy_idx in range(self.copies_per_doc):
            for doc in docs:
                strategy = self.strategies[int(rng.integers(0, len(self.strategies)))]
                out.append(
                    STRATEGIES[strategy](doc, seed=self.seed + copy_idx)  # type: ignore[operator]
                )
        if self.link_fraction > 0:
            by_domain: Dict[str, List[TrainingDocument]] = {}
            for doc in docs:
                by_domain.setdefault(doc.domain, []).append(doc)
            n_links = int(len(docs) * self.link_fraction)
            domains = sorted(by_domain)
            for _ in range(n_links):
                domain = domains[int(rng.integers(0, len(domains)))]
                pool = by_domain[domain]
                if len(pool) < 2:
                    continue
                i, j = rng.choice(len(pool), size=2, replace=False)
                out.append(link_documents(pool[int(i)], pool[int(j)]))
        return out


def diversity_score(docs: Sequence[TrainingDocument], *, n: int = 2) -> float:
    """Distinct-n ratio: unique n-grams / total n-grams across the corpus."""
    unique, total = _ngram_counts(docs, n)
    return unique / total if total else 0.0


def distinct_ngrams(docs: Sequence[TrainingDocument], *, n: int = 2) -> int:
    """Absolute count of unique n-grams — the coverage augmentation buys.

    (The distinct-*ratio* necessarily falls as a corpus grows, so absolute
    coverage is the fair before/after augmentation comparison.)"""
    unique, _total = _ngram_counts(docs, n)
    return unique


def _ngram_counts(docs: Sequence[TrainingDocument], n: int) -> tuple:
    tok = default_tokenizer()
    total = 0
    unique = set()
    for doc in docs:
        tokens = tok.content_tokens(doc.text)
        for i in range(len(tokens) - n + 1):
            total += 1
            unique.add(tuple(tokens[i : i + n]))
    return len(unique), total
