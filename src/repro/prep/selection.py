"""Data selection: pick a small, representative training subset (§2.3.2).

The goal (the coreset literature [11, 12, 57] applied to LLM data [9, 14,
63, 67]): a budgeted subset whose trained model matches full-data quality.
Strategies, all returning indices into the candidate list:

* :func:`random_selection` — the baseline every paper compares against;
* :func:`perplexity_selection` — importance by reference-model perplexity
  [14]: keep the most fluent (mode ``"low"``) or mid-band (``"mid"``,
  which avoids both garbage and trivially repetitive text);
* :func:`kcenter_coreset` — greedy k-center over embeddings (classic
  geometric coreset);
* :func:`cluster_coreset` — k-means clustering + proportional per-cluster
  sampling (the cluster-based method of [12], also the diversity-aware
  selection of [67]);
* :func:`target_similarity_selection` — LESS-flavoured [63]: rank
  candidates by gradient-proxy alignment with a target task sample (here,
  embedding similarity to the target centroid).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..data.ngram import NGramLM
from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..utils import derive_rng
from ..vector.kmeans import kmeans


def _check_budget(budget: int, n: int) -> int:
    if budget <= 0:
        raise ConfigError(f"budget must be positive, got {budget}")
    return min(budget, n)


def random_selection(
    docs: Sequence[TrainingDocument], budget: int, *, seed: int = 0
) -> List[int]:
    """Uniform random subset (the standard baseline)."""
    budget = _check_budget(budget, len(docs))
    rng = derive_rng(seed, "select-random")
    return sorted(int(i) for i in rng.permutation(len(docs))[:budget])


def perplexity_selection(
    docs: Sequence[TrainingDocument],
    budget: int,
    reference_lm: NGramLM,
    *,
    mode: str = "mid",
) -> List[int]:
    """Select by reference-LM perplexity.

    ``"low"`` keeps the most fluent documents; ``"mid"`` keeps the middle
    band — low-perplexity text is often degenerate/repetitive, and
    high-perplexity text is noise, so mid-band selection is the common
    practical recipe.
    """
    if mode not in {"low", "mid"}:
        raise ConfigError(f"mode must be 'low' or 'mid', got {mode!r}")
    budget = _check_budget(budget, len(docs))
    ppls = np.array([reference_lm.perplexity(d.text) for d in docs])
    if mode == "low":
        order = np.argsort(ppls)
        return sorted(int(i) for i in order[:budget])
    center = int(len(docs) * 0.4)  # mid-band anchor on the fluent side
    order = np.argsort(ppls)
    lo = max(center - budget // 2, 0)
    return sorted(int(i) for i in order[lo : lo + budget])


def kcenter_coreset(
    embeddings: np.ndarray, budget: int, *, seed: int = 0
) -> List[int]:
    """Greedy k-center (farthest-first traversal) over embedding rows."""
    n = embeddings.shape[0]
    budget = _check_budget(budget, n)
    rng = derive_rng(seed, "select-kcenter")
    first = int(rng.integers(0, n))
    selected = [first]
    diff = embeddings - embeddings[first]
    min_dist = np.einsum("ij,ij->i", diff, diff)
    for _ in range(budget - 1):
        nxt = int(np.argmax(min_dist))
        selected.append(nxt)
        diff = embeddings - embeddings[nxt]
        dist = np.einsum("ij,ij->i", diff, diff)
        min_dist = np.minimum(min_dist, dist)
    return sorted(selected)


def cluster_coreset(
    embeddings: np.ndarray,
    budget: int,
    *,
    num_clusters: int = 16,
    seed: int = 0,
) -> List[int]:
    """k-means clustering + proportional sampling nearest to centroids.

    Allocates the budget across clusters proportionally to size, then takes
    the documents closest to each centroid — representative *and* diverse.
    """
    n = embeddings.shape[0]
    budget = _check_budget(budget, n)
    num_clusters = min(num_clusters, n, budget)
    result = kmeans(embeddings, num_clusters, seed=seed)
    selected: List[int] = []
    remaining = budget
    cluster_ids = sorted(set(int(c) for c in result.assignments))
    for rank, cluster in enumerate(cluster_ids):
        members = np.flatnonzero(result.assignments == cluster)
        share = int(round(budget * len(members) / n))
        if rank == len(cluster_ids) - 1:
            share = remaining
        share = min(max(share, 1), remaining, len(members))
        if share <= 0:
            continue
        centroid = result.centroids[cluster]
        diff = embeddings[members] - centroid
        dist = np.einsum("ij,ij->i", diff, diff)
        closest = members[np.argsort(dist)[:share]]
        selected.extend(int(i) for i in closest)
        remaining -= share
        if remaining <= 0:
            break
    return sorted(set(selected))[:budget]


def target_similarity_selection(
    embeddings: np.ndarray,
    target_embeddings: np.ndarray,
    budget: int,
) -> List[int]:
    """Rank candidates by similarity to the target-task centroid (LESS-like).

    With a linear proxy model, the gradient of a document's loss is a
    linear function of its features, so gradient alignment with a target
    set reduces to embedding-space alignment — which is what we compute.
    """
    if target_embeddings.shape[0] == 0:
        raise ConfigError("target set must be non-empty")
    budget = _check_budget(budget, embeddings.shape[0])
    centroid = target_embeddings.mean(axis=0)
    norm = np.linalg.norm(centroid)
    if norm > 0:
        centroid = centroid / norm
    scores = embeddings @ centroid
    order = np.argsort(-scores)
    return sorted(int(i) for i in order[:budget])


def embed_docs(
    docs: Sequence[TrainingDocument], embedder: Optional[EmbeddingModel] = None
) -> np.ndarray:
    """Embedding matrix for a document list (helper for the coreset APIs)."""
    embedder = embedder or EmbeddingModel()
    return embedder.embed_batch([d.text for d in docs])


def selection_quality(
    docs: Sequence[TrainingDocument],
    selected: Sequence[int],
    eval_texts: Sequence[str],
    *,
    order: int = 2,
) -> float:
    """Train the n-gram proxy on the selection; return held-out perplexity.

    This is the downstream metric every selection strategy is judged by —
    lower is better.
    """
    lm = NGramLM(order=order).fit(docs[i].text for i in selected)
    return lm.corpus_perplexity(list(eval_texts))
