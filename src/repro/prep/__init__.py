"""Data preparation for LLMs: discovery, selection, cleaning, dedup,
augmentation, labeling, synthesis, pipelines (paper §2.3.2)."""

from .augmentation import Augmenter, distinct_ngrams, diversity_score, link_documents, sentence_shuffle, synonym_replace, token_dropout
from .cleaning import (
    FilterDecision,
    PerplexityFilter,
    QualityClassifier,
    RuleBasedQualityFilter,
    ToxicityFilter,
    filter_metrics,
    text_features,
)
from .dedup import DedupResult, ExactDeduper, MinHashDeduper, dedup_metrics, jaccard, line_dedup, shingles
from .discovery import (
    DSIRMixer,
    GradientMixer,
    MixtureEvaluation,
    MixtureEvaluator,
    empirical_mixture,
    heuristic_mixture,
    normalize_mixture,
    sample_by_mixture,
)
from .instruction import (
    InstructionGenerator,
    PreferencePair,
    PreferencePairBuilder,
    RewardModel,
    SFTPair,
    filter_sft_pairs,
)
from .labeling import ActiveLearner, ActiveLearningRound, CentroidClassifier, model_label
from .llm_loop import AssistedFilterStats, LLMAssistedFilter, LLMPrepSystem
from .pipeline import PipelineReport, PrepPipeline, StageReport, standard_pipeline
from .selection import (
    cluster_coreset,
    embed_docs,
    kcenter_coreset,
    perplexity_selection,
    random_selection,
    selection_quality,
    target_similarity_selection,
)
from .synthesis import MarkovSynthesizer, TabularSynthesizer, TemplateSynthesizer, fidelity_report

__all__ = [
    "Augmenter", "distinct_ngrams", "diversity_score", "link_documents", "sentence_shuffle",
    "synonym_replace", "token_dropout",
    "FilterDecision", "PerplexityFilter", "QualityClassifier",
    "RuleBasedQualityFilter", "ToxicityFilter", "filter_metrics", "text_features",
    "DedupResult", "ExactDeduper", "MinHashDeduper", "dedup_metrics", "jaccard",
    "line_dedup", "shingles",
    "DSIRMixer", "GradientMixer", "MixtureEvaluation", "MixtureEvaluator",
    "empirical_mixture", "heuristic_mixture", "normalize_mixture", "sample_by_mixture",
    "InstructionGenerator", "PreferencePair", "PreferencePairBuilder",
    "RewardModel", "SFTPair", "filter_sft_pairs",
    "ActiveLearner", "ActiveLearningRound", "CentroidClassifier", "model_label",
    "AssistedFilterStats", "LLMAssistedFilter", "LLMPrepSystem",
    "PipelineReport", "PrepPipeline", "StageReport", "standard_pipeline",
    "cluster_coreset", "embed_docs", "kcenter_coreset", "perplexity_selection",
    "random_selection", "selection_quality", "target_similarity_selection",
    "MarkovSynthesizer", "TabularSynthesizer", "TemplateSynthesizer", "fidelity_report",
]
