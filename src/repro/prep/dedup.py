"""Deduplication: exact-document, line-level, and MinHash-LSH near-dup.

Implements the dedup toolbox of §2.3.2 [24, 29, 46, 52]:

* :class:`ExactDeduper` — content-hash exact document dedup;
* :func:`line_dedup` — line/sentence-level dedup (LLaMA-style): sentences
  occurring more than ``max_occurrences`` times across the corpus are
  stripped everywhere (kills boilerplate and degenerate repetition);
* :class:`MinHashDeduper` — document-level near-duplicate detection:
  n-gram shingles → MinHash signatures → LSH banding → candidate pairs →
  exact-Jaccard verification → union-find clustering, keeping one
  representative per cluster.

Detection quality is measurable against the corpus generator's
``dup_group`` ground truth via :func:`dedup_metrics`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.tokenizer import default_tokenizer
from ..rag.chunking import split_sentences
from ..utils import derive_rng, stable_hash

_MERSENNE = (1 << 61) - 1


def shingles(text: str, n: int = 3) -> Set[int]:
    """Hashed token n-gram shingle set of a document."""
    tokens = default_tokenizer().content_tokens(text)
    if len(tokens) < n:
        return {stable_hash(" ".join(tokens))} if tokens else set()
    return {
        stable_hash(" ".join(tokens[i : i + n])) % _MERSENNE
        for i in range(len(tokens) - n + 1)
    }


def jaccard(a: Set[int], b: Set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


class _UnionFind:
    """Path-compressed union-find over arbitrary hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            self._parent[x] = self.find(parent)
        return self._parent[x]

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


@dataclass
class DedupResult:
    """Kept documents plus the detected duplicate structure."""

    kept: List[TrainingDocument]
    removed: List[TrainingDocument]
    clusters: List[List[int]] = field(default_factory=list)  # indices into input
    candidate_pairs: int = 0
    verified_pairs: int = 0

    @property
    def removed_fraction(self) -> float:
        total = len(self.kept) + len(self.removed)
        return len(self.removed) / total if total else 0.0


class ExactDeduper:
    """Keep the first document of each exact (normalized) text."""

    def dedup(self, docs: Sequence[TrainingDocument]) -> DedupResult:
        seen: Dict[int, int] = {}
        kept: List[TrainingDocument] = []
        removed: List[TrainingDocument] = []
        clusters: Dict[int, List[int]] = defaultdict(list)
        for i, doc in enumerate(docs):
            key = stable_hash(" ".join(doc.text.split()).lower())
            if key in seen:
                removed.append(doc)
            else:
                seen[key] = i
                kept.append(doc)
            clusters[key].append(i)
        return DedupResult(
            kept=kept,
            removed=removed,
            clusters=[ids for ids in clusters.values() if len(ids) > 1],
        )


def line_dedup(
    docs: Sequence[TrainingDocument], *, max_occurrences: int = 2
) -> Tuple[List[TrainingDocument], int]:
    """Strip sentences that repeat more than ``max_occurrences`` times corpus-wide.

    Returns (rewritten documents, sentences removed). Documents reduced to
    nothing are dropped entirely.
    """
    if max_occurrences < 1:
        raise ConfigError("max_occurrences must be >= 1")
    counts: Counter = Counter()
    doc_sentences: List[List[str]] = []
    for doc in docs:
        sentences = split_sentences(doc.text)
        doc_sentences.append(sentences)
        normalized = {s.strip().lower() for s in sentences}
        for s in normalized:
            counts[s] += 1
    banned = {s for s, c in counts.items() if c > max_occurrences}
    out: List[TrainingDocument] = []
    removed_sentences = 0
    for doc, sentences in zip(docs, doc_sentences):
        kept_sentences = []
        seen_local: Set[str] = set()
        for s in sentences:
            key = s.strip().lower()
            if key in banned or key in seen_local:
                removed_sentences += 1
                continue
            seen_local.add(key)
            kept_sentences.append(s)
        if kept_sentences:
            out.append(
                TrainingDocument(
                    doc_id=doc.doc_id,
                    text=" ".join(kept_sentences),
                    domain=doc.domain,
                    quality=doc.quality,
                    is_toxic=doc.is_toxic,
                    dup_group=doc.dup_group,
                    is_duplicate=doc.is_duplicate,
                )
            )
    return out, removed_sentences


class MinHashDeduper:
    """MinHash + LSH near-duplicate document detection.

    Parameters
    ----------
    num_permutations:
        Signature length; must equal ``bands * rows_per_band``.
    bands / rows_per_band:
        LSH banding; the detection threshold is roughly
        ``(1/bands) ** (1/rows_per_band)``.
    shingle_size:
        Token n-gram size for shingling.
    verify_threshold:
        Candidate pairs below this exact Jaccard are rejected.
    """

    def __init__(
        self,
        *,
        num_permutations: int = 64,
        bands: int = 16,
        rows_per_band: int = 4,
        shingle_size: int = 3,
        verify_threshold: float = 0.6,
        seed: int = 0,
    ) -> None:
        if bands * rows_per_band != num_permutations:
            raise ConfigError("bands * rows_per_band must equal num_permutations")
        self.num_permutations = num_permutations
        self.bands = bands
        self.rows_per_band = rows_per_band
        self.shingle_size = shingle_size
        self.verify_threshold = verify_threshold
        rng = derive_rng(seed, "minhash")
        self._a = rng.integers(1, _MERSENNE, size=num_permutations, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=num_permutations, dtype=np.int64)

    def signature(self, shingle_set: Set[int]) -> np.ndarray:
        """MinHash signature of one shingle set."""
        if not shingle_set:
            return np.full(self.num_permutations, _MERSENNE, dtype=np.int64)
        values = np.fromiter(shingle_set, dtype=np.int64)
        # (P, S) permuted hash values; min over shingles per permutation.
        hashed = (self._a[:, None] * values[None, :] + self._b[:, None]) % _MERSENNE
        return hashed.min(axis=1)

    def estimated_threshold(self) -> float:
        """The S-curve midpoint of the banding scheme."""
        return float((1.0 / self.bands) ** (1.0 / self.rows_per_band))

    def dedup(self, docs: Sequence[TrainingDocument]) -> DedupResult:
        shingle_sets = [shingles(d.text, self.shingle_size) for d in docs]
        signatures = [self.signature(s) for s in shingle_sets]
        buckets: Dict[Tuple[int, int], List[int]] = defaultdict(list)
        for i, sig in enumerate(signatures):
            for band in range(self.bands):
                lo = band * self.rows_per_band
                key = stable_hash(
                    f"{band}:" + ",".join(map(str, sig[lo : lo + self.rows_per_band]))
                )
                buckets[(band, key)].append(i)
        uf = _UnionFind()
        candidate_pairs = 0
        verified_pairs = 0
        checked: Set[Tuple[int, int]] = set()
        for ids in buckets.values():
            if len(ids) < 2:
                continue
            for x in range(len(ids)):
                for y in range(x + 1, len(ids)):
                    pair = (min(ids[x], ids[y]), max(ids[x], ids[y]))
                    if pair in checked:
                        continue
                    checked.add(pair)
                    candidate_pairs += 1
                    if jaccard(shingle_sets[pair[0]], shingle_sets[pair[1]]) >= self.verify_threshold:
                        verified_pairs += 1
                        uf.union(pair[0], pair[1])
        clusters: Dict[int, List[int]] = defaultdict(list)
        for i in range(len(docs)):
            clusters[uf.find(i)].append(i)
        kept: List[TrainingDocument] = []
        removed: List[TrainingDocument] = []
        for root, members in clusters.items():
            members.sort()
            kept.append(docs[members[0]])
            removed.extend(docs[m] for m in members[1:])
        kept.sort(key=lambda d: d.doc_id)
        return DedupResult(
            kept=kept,
            removed=removed,
            clusters=[m for m in clusters.values() if len(m) > 1],
            candidate_pairs=candidate_pairs,
            verified_pairs=verified_pairs,
        )


def dedup_metrics(
    docs: Sequence[TrainingDocument], result: DedupResult
) -> Dict[str, float]:
    """Precision/recall of duplicate detection against ground truth.

    A removed document is a true positive iff it belongs to a ``dup_group``
    (the generator marked it as having copies).
    """
    removed_ids = {d.doc_id for d in result.removed}
    true_dups = {d.doc_id for d in docs if d.is_duplicate}
    if not removed_ids:
        return {"precision": 1.0 if not true_dups else 0.0, "recall": 0.0}
    tp = len(removed_ids & true_dups)
    precision = tp / len(removed_ids)
    recall = tp / len(true_dups) if true_dups else 1.0
    return {"precision": precision, "recall": recall}
