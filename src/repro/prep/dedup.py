"""Deduplication: exact-document, line-level, and MinHash-LSH near-dup.

Implements the dedup toolbox of §2.3.2 [24, 29, 46, 52]:

* :class:`ExactDeduper` — content-hash exact document dedup;
* :func:`line_dedup` — line/sentence-level dedup (LLaMA-style): sentences
  occurring more than ``max_occurrences`` times across the corpus are
  stripped everywhere (kills boilerplate and degenerate repetition);
* :class:`MinHashDeduper` — document-level near-duplicate detection:
  n-gram shingles → MinHash signatures → LSH banding → candidate pairs →
  exact-Jaccard verification → union-find clustering, keeping one
  representative per cluster.

The corpus-level path is fully batched (the pre-overhaul per-document
implementation is frozen in ``benchmarks/perf/_legacy_prep.py``): shingling
interns tokens into integer ids and blake2b-hashes only the corpus's
*unique* shingles, signatures come from a branchless Mersenne-reduction
kernel over reused buffers with a segmented ``np.minimum.reduceat`` min,
and LSH banding factorizes band rows into dense int64 keys grouped with
``np.unique`` instead of hashing one string per document per band.
Outputs are identical to the legacy path (proven element-wise in
``tests/test_prep_batch.py``).

Detection quality is measurable against the corpus generator's
``dup_group`` ground truth via :func:`dedup_metrics`.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.tokenizer import default_tokenizer
from ..rag.chunking import split_sentences
from ..utils import derive_rng, stable_hash

_MERSENNE = (1 << 61) - 1

# Shingle-value block size per signature kernel call: bounds the (P, block)
# int64 buffers to a few MB (measured fastest width on the perf harness).
_SIGNATURE_BLOCK = 1 << 15


def shingles(text: str, n: int = 3) -> Set[int]:
    """Hashed token n-gram shingle set of a document."""
    tokens = default_tokenizer().content_tokens(text)
    if len(tokens) < n:
        # Reduced modulo the Mersenne prime like the main branch: raw 64-bit
        # stable_hash values above 2**63 - 1 overflow int64 signature kernels.
        return {stable_hash(" ".join(tokens)) % _MERSENNE} if tokens else set()
    return {
        stable_hash(" ".join(tokens[i : i + n])) % _MERSENNE
        for i in range(len(tokens) - n + 1)
    }


def _hash_shingle(shingle: str) -> int:
    """``stable_hash(shingle) % _MERSENNE`` without the per-call validation."""
    return (
        int.from_bytes(blake2b(shingle.encode("utf-8"), digest_size=8).digest(), "big")
        % _MERSENNE
    )


def shingle_hashes_many(texts: Sequence[str], n: int = 3) -> List[np.ndarray]:
    """Per-document shingle hash arrays for a whole corpus, one pass.

    Semantically each array holds the same values as ``shingles(text, n)``
    (possibly with in-document repeats, which neither MinHash nor the
    Jaccard verifier is sensitive to after a ``np.unique``). Exact-duplicate
    texts share one tokenization; tokens are interned into dense integer
    ids so every n-gram window becomes one int64 key via vectorized
    polynomial packing; only the corpus's unique keys are blake2b-hashed,
    then broadcast back with a single gather.
    """
    if n < 1:
        raise ConfigError(f"shingle size must be >= 1, got {n}")
    tok = default_tokenizer()
    out: List[Optional[np.ndarray]] = [None] * len(texts)
    first_of: Dict[str, int] = {}
    rep_idx: List[int] = []
    dup_pairs: List[Tuple[int, int]] = []
    for i, t in enumerate(texts):
        j = first_of.setdefault(t, i)
        if j == i:
            rep_idx.append(i)
        else:
            dup_pairs.append((i, j))
    token_lists = tok.content_tokens_many([texts[i] for i in rep_idx])
    empty = np.zeros(0, dtype=np.int64)
    long_pos: List[int] = []
    for p, tokens in enumerate(token_lists):
        if not tokens:
            out[rep_idx[p]] = empty
        elif len(tokens) < n:
            out[rep_idx[p]] = np.array(
                [_hash_shingle(" ".join(tokens))], dtype=np.int64
            )
        else:
            long_pos.append(p)
    if long_pos:
        token_ids: Dict[str, int] = {}
        setdefault = token_ids.setdefault
        flat: List[str] = []
        extend = flat.extend
        for p in long_pos:
            extend(token_lists[p])
        ids_list = [setdefault(t, len(token_ids)) for t in flat]
        vocab = len(token_ids)
        if vocab ** n >= 2 ** 63:
            # Polynomial packing would overflow int64; fall back to hashing
            # shingle strings directly (still memoized corpus-wide).
            memo: Dict[str, int] = {}
            for p in long_pos:
                tokens = token_lists[p]
                values = []
                for j in range(len(tokens) - n + 1):
                    key = " ".join(tokens[j : j + n])
                    h = memo.get(key)
                    if h is None:
                        h = memo[key] = _hash_shingle(key)
                    values.append(h)
                out[rep_idx[p]] = np.array(values, dtype=np.int64)
        else:
            all_ids = np.array(ids_list, dtype=np.int64)
            lengths = np.array(
                [len(token_lists[p]) for p in long_pos], dtype=np.int64
            )
            doc_of = np.repeat(np.arange(len(long_pos), dtype=np.int64), lengths)
            total = all_ids.shape[0]
            # Window keys over the concatenated stream; windows straddling a
            # document boundary are masked out.
            keys = np.zeros(total - n + 1, dtype=np.int64)
            for j in range(n):
                keys *= vocab
                keys += all_ids[j : total - n + 1 + j]
            valid = doc_of[: total - n + 1] == doc_of[n - 1 :]
            keys = keys[valid]
            uniq_keys, inverse = np.unique(keys, return_inverse=True)
            # Hash each unique shingle once: decode packed keys back to
            # tokens and join at the bytes level (UTF-8 concatenates).
            digits = np.empty((n, uniq_keys.shape[0]), dtype=np.int64)
            rest = uniq_keys
            for j in range(n - 1, -1, -1):
                digits[j] = rest % vocab
                rest = rest // vocab
            tok_bytes = [t.encode("utf-8") for t in token_ids]
            getter = tok_bytes.__getitem__
            cols = [digits[j].tolist() for j in range(n)]
            uniq_hashes = np.fromiter(
                (
                    int.from_bytes(
                        blake2b(b" ".join(map(getter, tup)), digest_size=8).digest(),
                        "big",
                    )
                    % _MERSENNE
                    for tup in zip(*cols)
                ),
                dtype=np.int64,
                count=uniq_keys.shape[0],
            )
            hashes = uniq_hashes[inverse]
            counts = lengths - n + 1
            offsets = np.zeros(len(long_pos) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            for q, p in enumerate(long_pos):
                out[rep_idx[p]] = hashes[offsets[q] : offsets[q + 1]]
    for i, j in dup_pairs:
        out[i] = out[j]
    return out  # type: ignore[return-value]


def _permute_mod_mersenne(
    a: np.ndarray, b: np.ndarray, values: np.ndarray, out: np.ndarray, tmp: np.ndarray
) -> np.ndarray:
    """``(a * values + b) % _MERSENNE`` into ``out``, no temporaries.

    Element-wise identical to ``np.remainder`` for every int64 input,
    including negatively wrapped products: with ``M = 2**61 - 1``,
    ``x = (x >> 61) * 2**61 + (x & M)`` and ``2**61 ≡ 1 (mod M)``, so
    ``x ≡ (x >> 61) + (x & M)``; two branchless range fixups land the
    result in ``[0, M)``. Division-free, ~3x faster than ``%``.
    """
    np.multiply(a, values[None, :], out=out)
    np.add(out, b, out=out)
    np.right_shift(out, 61, out=tmp)
    np.bitwise_and(out, _MERSENNE, out=out)
    np.add(out, tmp, out=out)  # in [-4, M + 3]
    np.right_shift(out, 63, out=tmp)
    np.bitwise_and(tmp, _MERSENNE, out=tmp)
    np.add(out, tmp, out=out)  # in [0, M + 3]
    np.subtract(out, _MERSENNE, out=out)
    np.right_shift(out, 63, out=tmp)
    np.bitwise_and(tmp, _MERSENNE, out=tmp)
    np.add(out, tmp, out=out)  # in [0, M)
    return out


def jaccard(a: Set[int], b: Set[int]) -> float:
    """Exact Jaccard similarity of two shingle sets."""
    if not a and not b:
        return 1.0
    union = len(a | b)
    return len(a & b) / union if union else 0.0


class _UnionFind:
    """Path-compressed union-find over arbitrary hashable items."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        parent = self._parent.setdefault(x, x)
        if parent != x:
            self._parent[x] = self.find(parent)
        return self._parent[x]

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra


@dataclass
class IncrementalDedupResult:
    """One streaming batch's admission decisions.

    ``admitted`` are the new documents that joined the kept set;
    ``rejected`` are new documents subsumed by an already-kept (or
    earlier-in-batch) document; ``evicted`` are doc_ids of *previously
    kept* documents that a new document bridged into a cluster with an
    older representative — exactly what a full re-dedup over the whole
    ingested corpus would have removed.
    """

    admitted: List[TrainingDocument]
    rejected: List[TrainingDocument]
    evicted: List[str] = field(default_factory=list)
    candidate_pairs: int = 0
    verified_pairs: int = 0


class SignatureStore:
    """Persistent MinHash/LSH state for incremental dedup.

    Holds, for every document ever ingested (kept *and* rejected — rejected
    documents can transitively bridge future candidates, so dropping them
    would break equivalence with a full re-dedup): its signature band
    buckets, its unique shingle array, a persistent union-find parent, and
    the kept flag. Band buckets map band-row bytes to the store indices
    that produced them, so admitting a batch probes exactly the documents
    a full LSH banding pass would pair it with.
    """

    def __init__(self, bands: int) -> None:
        self.buckets: List[Dict[bytes, List[int]]] = [{} for _ in range(bands)]
        self.shingles: List[np.ndarray] = []
        self.docs: List[TrainingDocument] = []
        self.parent: List[int] = []
        self.kept: List[bool] = []

    def __len__(self) -> int:
        return len(self.docs)

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # Root at the smaller index so every cluster's root is its oldest
        # member — the representative a full dedup would keep.
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra

    def kept_doc_ids(self) -> List[str]:
        """doc_ids of the currently kept documents, in ingestion order."""
        return [d.doc_id for d, k in zip(self.docs, self.kept) if k]

    def kept_docs(self) -> List[TrainingDocument]:
        """The currently kept documents, in ingestion order."""
        return [d for d, k in zip(self.docs, self.kept) if k]


@dataclass
class DedupResult:
    """Kept documents plus the detected duplicate structure."""

    kept: List[TrainingDocument]
    removed: List[TrainingDocument]
    clusters: List[List[int]] = field(default_factory=list)  # indices into input
    candidate_pairs: int = 0
    verified_pairs: int = 0

    @property
    def removed_fraction(self) -> float:
        total = len(self.kept) + len(self.removed)
        return len(self.removed) / total if total else 0.0


class ExactDeduper:
    """Keep the first document of each exact (normalized) text."""

    def dedup(self, docs: Sequence[TrainingDocument]) -> DedupResult:
        seen: Dict[int, int] = {}
        kept: List[TrainingDocument] = []
        removed: List[TrainingDocument] = []
        clusters: Dict[int, List[int]] = defaultdict(list)
        for i, doc in enumerate(docs):
            key = stable_hash(" ".join(doc.text.split()).lower())
            if key in seen:
                removed.append(doc)
            else:
                seen[key] = i
                kept.append(doc)
            clusters[key].append(i)
        return DedupResult(
            kept=kept,
            removed=removed,
            clusters=[ids for ids in clusters.values() if len(ids) > 1],
        )


def line_dedup(
    docs: Sequence[TrainingDocument], *, max_occurrences: int = 2
) -> Tuple[List[TrainingDocument], int]:
    """Strip sentences that repeat more than ``max_occurrences`` times corpus-wide.

    Returns (rewritten documents, sentences removed). Documents reduced to
    nothing are dropped entirely.
    """
    if max_occurrences < 1:
        raise ConfigError("max_occurrences must be >= 1")
    counts: Counter = Counter()
    doc_sentences: List[List[str]] = []
    for doc in docs:
        sentences = split_sentences(doc.text)
        doc_sentences.append(sentences)
        # One Counter.update per document (each distinct sentence counted
        # once per doc) instead of materializing and re-walking a set.
        counts.update({s.strip().lower() for s in sentences})
    banned = {s for s, c in counts.items() if c > max_occurrences}
    out: List[TrainingDocument] = []
    removed_sentences = 0
    for doc, sentences in zip(docs, doc_sentences):
        kept_sentences = []
        seen_local: Set[str] = set()
        for s in sentences:
            key = s.strip().lower()
            if key in banned or key in seen_local:
                removed_sentences += 1
                continue
            seen_local.add(key)
            kept_sentences.append(s)
        if kept_sentences:
            out.append(
                TrainingDocument(
                    doc_id=doc.doc_id,
                    text=" ".join(kept_sentences),
                    domain=doc.domain,
                    quality=doc.quality,
                    is_toxic=doc.is_toxic,
                    dup_group=doc.dup_group,
                    is_duplicate=doc.is_duplicate,
                )
            )
    return out, removed_sentences


class MinHashDeduper:
    """MinHash + LSH near-duplicate document detection.

    Parameters
    ----------
    num_permutations:
        Signature length; must equal ``bands * rows_per_band``.
    bands / rows_per_band:
        LSH banding; the detection threshold is roughly
        ``(1/bands) ** (1/rows_per_band)``.
    shingle_size:
        Token n-gram size for shingling.
    verify_threshold:
        Candidate pairs below this exact Jaccard are rejected.
    """

    def __init__(
        self,
        *,
        num_permutations: int = 64,
        bands: int = 16,
        rows_per_band: int = 4,
        shingle_size: int = 3,
        verify_threshold: float = 0.6,
        seed: int = 0,
    ) -> None:
        if bands * rows_per_band != num_permutations:
            raise ConfigError("bands * rows_per_band must equal num_permutations")
        self.num_permutations = num_permutations
        self.bands = bands
        self.rows_per_band = rows_per_band
        self.shingle_size = shingle_size
        self.verify_threshold = verify_threshold
        self.seed = seed
        rng = derive_rng(seed, "minhash")
        self._a = rng.integers(1, _MERSENNE, size=num_permutations, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE, size=num_permutations, dtype=np.int64)
        self._store: Optional[SignatureStore] = None

    @property
    def store(self) -> SignatureStore:
        """The persistent signature store (created on first use)."""
        if self._store is None:
            self._store = SignatureStore(self.bands)
        return self._store

    def reset_store(self) -> None:
        """Discard all incremental state."""
        self._store = None

    def signature(self, shingle_set: Set[int]) -> np.ndarray:
        """MinHash signature of one shingle set."""
        if not shingle_set:
            return np.full(self.num_permutations, _MERSENNE, dtype=np.int64)
        values = np.fromiter(shingle_set, dtype=np.int64)
        # (P, S) permuted hash values; min over shingles per permutation.
        hashed = (self._a[:, None] * values[None, :] + self._b[:, None]) % _MERSENNE
        return hashed.min(axis=1)

    def signature_many(self, shingle_values: Sequence[np.ndarray]) -> np.ndarray:
        """``(n_docs, P)`` signature matrix from per-doc shingle hash arrays.

        The Mersenne permutation kernel runs over reused ``(P, block)``
        buffers; per-document minima are segmented with
        ``np.minimum.reduceat``. Documents with byte-identical shingle
        arrays (exact duplicates) reuse the first copy's signature row.
        Element-wise identical to calling :meth:`signature` per document
        (repeated values cannot change a min, and the int64 wrap semantics
        of the kernel do not depend on batching).
        """
        n = len(shingle_values)
        out = np.full((n, self.num_permutations), _MERSENNE, dtype=np.int64)
        if n == 0:
            return out
        first_by_bytes: Dict[bytes, int] = {}
        reps: List[int] = []
        dup_of: List[Tuple[int, int]] = []
        for i, v in enumerate(shingle_values):
            if v.shape[0] == 0:
                continue
            key = v.tobytes()
            seen = first_by_bytes.get(key)
            if seen is None:
                first_by_bytes[key] = i
                reps.append(i)
            else:
                dup_of.append((i, seen))
        if not reps:
            return out
        sizes = np.array([shingle_values[i].shape[0] for i in reps], dtype=np.int64)
        values = (
            shingle_values[reps[0]]
            if len(reps) == 1
            else np.concatenate([shingle_values[i] for i in reps])
        )
        offsets = np.zeros(len(reps), dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        a = self._a[:, None]
        b = self._b[:, None]
        width = max(_SIGNATURE_BLOCK, int(sizes.max()))
        kernel_buf = np.empty((self.num_permutations, width), dtype=np.int64)
        shift_buf = np.empty_like(kernel_buf)
        start = 0
        while start < len(reps):
            end = start
            block = 0
            while end < len(reps) and (
                block == 0 or block + sizes[end] <= width
            ):
                block += int(sizes[end])
                end += 1
            lo = int(offsets[start])
            hashed = _permute_mod_mersenne(
                a,
                b,
                values[lo : lo + block],
                kernel_buf[:, :block],
                shift_buf[:, :block],
            )
            offs = offsets[start:end] - lo
            out[reps[start:end]] = np.minimum.reduceat(hashed, offs, axis=1).T
            start = end
        for i, src in dup_of:
            out[i] = out[src]
        return out

    def estimated_threshold(self) -> float:
        """The S-curve midpoint of the banding scheme."""
        return float((1.0 / self.bands) ** (1.0 / self.rows_per_band))

    def _candidate_pairs(self, signatures: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct document pairs sharing at least one LSH band.

        Identical band rows ⇔ identical legacy bucket keys (the legacy path
        hashed the row string; grouping the rows directly drops the hash).
        Documents with identical full signatures co-bucket in every band,
        so they are collapsed to one representative first: banding runs on
        unique signature rows and each representative-level pair expands to
        the full cross product afterwards, generating every document pair
        exactly once instead of once per shared band. Band rows are
        factorized column-by-column into dense int64 keys — key equality ⇔
        row equality — so grouping is four 1D sorts per band instead of a
        structured-dtype sort. Returns distinct ``(lo, hi)`` index arrays
        (unordered).
        """
        n_docs = signatures.shape[0]
        first_by_row: Dict[bytes, int] = {}
        groups: List[List[int]] = []
        for i in range(n_docs):
            g = first_by_row.setdefault(signatures[i].tobytes(), len(groups))
            if g == len(groups):
                groups.append([i])
            else:
                groups[g].append(i)
        n = len(groups)
        group_sizes = np.array([len(g) for g in groups], dtype=np.int64)
        rep_rows = np.array([g[0] for g in groups], dtype=np.int64)
        banded = signatures[rep_rows].reshape(n, self.bands, self.rows_per_band)
        pair_lo: List[np.ndarray] = []
        pair_hi: List[np.ndarray] = []
        for band in range(self.bands):
            uniq0, key = np.unique(banded[:, band, 0], return_inverse=True)
            key = key.astype(np.int64, copy=False).reshape(-1)
            card = uniq0.shape[0]
            for c in range(1, self.rows_per_band):
                uniq_c, inv_c = np.unique(banded[:, band, c], return_inverse=True)
                if card * uniq_c.shape[0] >= 2 ** 62:
                    # Re-densify so the combined key stays in int64 range
                    # (card <= n afterwards, and n**2 < 2**62 always here).
                    _, key = np.unique(key, return_inverse=True)
                    key = key.astype(np.int64, copy=False).reshape(-1)
                    card = n
                key *= uniq_c.shape[0]
                key += inv_c.reshape(-1)
                card *= uniq_c.shape[0]
            _, inverse, counts = np.unique(
                key, return_inverse=True, return_counts=True
            )
            inverse = inverse.reshape(-1)
            if not (counts >= 2).any():
                continue
            order = np.argsort(inverse, kind="stable")
            sorted_inv = inverse[order]
            starts = np.flatnonzero(
                np.r_[True, sorted_inv[1:] != sorted_inv[:-1]]
            )
            seg_sizes = np.diff(np.r_[starts, sorted_inv.shape[0]])
            # One pair-extraction kernel per distinct bucket size: every
            # bucket of size c yields its C(c, 2) pairs in a single fancy
            # index instead of a Python loop over buckets.
            for size in np.unique(seg_sizes).tolist():
                if size < 2:
                    continue
                members = order[
                    starts[seg_sizes == size][:, None]
                    + np.arange(size, dtype=np.int64)
                ]
                ii, jj = np.triu_indices(size, k=1)
                a_idx = members[:, ii].reshape(-1)
                b_idx = members[:, jj].reshape(-1)
                pair_lo.append(np.minimum(a_idx, b_idx))
                pair_hi.append(np.maximum(a_idx, b_idx))
        # Expand representative-level pairs back to document pairs: every
        # cross pair between two groups, plus all within-group pairs of any
        # group with 2+ members (identical signatures always co-bucket).
        doc_lo: List[np.ndarray] = []
        doc_hi: List[np.ndarray] = []
        if pair_lo:
            keys = np.unique(
                np.concatenate(pair_lo) * n + np.concatenate(pair_hi)
            )
            glo = keys // n
            ghi = keys % n
            singleton = (group_sizes[glo] == 1) & (group_sizes[ghi] == 1)
            a_doc = rep_rows[glo[singleton]]
            b_doc = rep_rows[ghi[singleton]]
            doc_lo.append(np.minimum(a_doc, b_doc))
            doc_hi.append(np.maximum(a_doc, b_doc))
            multi = ~singleton
            for ga, gb in zip(glo[multi].tolist(), ghi[multi].tolist()):
                a_mem = np.array(groups[ga], dtype=np.int64)
                b_mem = np.array(groups[gb], dtype=np.int64)
                aa = np.repeat(a_mem, b_mem.shape[0])
                bb = np.tile(b_mem, a_mem.shape[0])
                doc_lo.append(np.minimum(aa, bb))
                doc_hi.append(np.maximum(aa, bb))
        for g in np.flatnonzero(group_sizes >= 2).tolist():
            members = np.array(groups[g], dtype=np.int64)
            ii, jj = np.triu_indices(members.shape[0], k=1)
            doc_lo.append(members[ii])
            doc_hi.append(members[jj])
        if not doc_lo:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(doc_lo), np.concatenate(doc_hi)

    def dedup(self, docs: Sequence[TrainingDocument]) -> DedupResult:
        shingle_values = shingle_hashes_many(
            [d.text for d in docs], self.shingle_size
        )
        signatures = self.signature_many(shingle_values)
        lo, hi = self._candidate_pairs(signatures)
        candidate_pairs = int(lo.shape[0])
        verified_pairs = 0
        parent = list(range(len(docs)))

        def find(x: int) -> int:
            root = x
            while parent[root] != root:
                root = parent[root]
            while parent[x] != root:
                parent[x], x = root, parent[x]
            return root

        def union(i: int, j: int) -> None:
            ra, rb = find(i), find(j)
            if ra != rb:
                parent[rb] = ra

        threshold = self.verify_threshold
        if candidate_pairs:
            # Group involved documents by identical unique-shingle arrays:
            # equal sets ⇒ Jaccard exactly 1.0, no set algebra needed. Docs
            # with equal shingle sets have equal signatures, so every pair
            # inside such a group is already a candidate — chain unions
            # connect the group in O(size) instead of O(size**2).
            involved = np.union1d(lo, hi)
            uniques: Dict[int, np.ndarray] = {}
            group_id = np.full(len(docs), -1, dtype=np.int64)
            group_members: Dict[int, List[int]] = defaultdict(list)
            gid_by_bytes: Dict[bytes, int] = {}
            for i in involved.tolist():
                ua = np.unique(shingle_values[i])
                uniques[i] = ua
                gid = gid_by_bytes.setdefault(ua.tobytes(), len(gid_by_bytes))
                group_id[i] = gid
                group_members[gid].append(i)
            equal_sets = group_id[lo] == group_id[hi]
            n_equal = int(np.count_nonzero(equal_sets))
            if n_equal and 1.0 >= threshold:
                verified_pairs += n_equal
                for members in group_members.values():
                    for i, j in zip(members, members[1:]):
                        union(i, j)
            as_set: Dict[int, Set[int]] = {}
            unequal = ~equal_sets
            for i, j in zip(lo[unequal].tolist(), hi[unequal].tolist()):
                sa = as_set.get(i)
                if sa is None:
                    sa = as_set[i] = set(uniques[i].tolist())
                sb = as_set.get(j)
                if sb is None:
                    sb = as_set[j] = set(uniques[j].tolist())
                inter = len(sa & sb)
                union_size = len(sa) + len(sb) - inter
                # Unequal sets are never both empty, so union_size > 0 and
                # the legacy both-empty => 1.0 rule cannot apply here.
                sim = inter / union_size
                if sim >= threshold:
                    verified_pairs += 1
                    union(i, j)
        clusters: Dict[int, List[int]] = defaultdict(list)
        for i in range(len(docs)):
            clusters[find(i)].append(i)
        kept: List[TrainingDocument] = []
        removed: List[TrainingDocument] = []
        for root, members in clusters.items():
            members.sort()
            kept.append(docs[members[0]])
            removed.extend(docs[m] for m in members[1:])
        kept.sort(key=lambda d: d.doc_id)
        return DedupResult(
            kept=kept,
            removed=removed,
            clusters=[m for m in clusters.values() if len(m) > 1],
            candidate_pairs=candidate_pairs,
            verified_pairs=verified_pairs,
        )

    # ------------------------------------------------------------ streaming
    def dedup_incremental(
        self, new_docs: Sequence[TrainingDocument]
    ) -> IncrementalDedupResult:
        """Admit a batch against the persistent signature store.

        Only the new documents are shingled and signed; candidates come
        from probing the existing LSH band buckets (which also surface
        pairs *within* the batch, since each document is bucketed before
        the next is probed). Verified pairs feed a persistent union-find
        whose roots are always the oldest cluster members, so after any
        sequence of batches the kept set equals :meth:`dedup` run once over
        the concatenation of every batch — including *evictions*: a new
        document that bridges two previously distinct clusters demotes the
        younger representative, and its doc_id is reported in ``evicted``
        so callers can drop it from downstream stores.
        """
        store = self.store
        base = len(store)
        shingle_values = shingle_hashes_many(
            [d.text for d in new_docs], self.shingle_size
        )
        signatures = self.signature_many(shingle_values)
        banded = signatures.reshape(len(new_docs), self.bands, self.rows_per_band)
        for i, doc in enumerate(new_docs):
            store.docs.append(doc)
            store.shingles.append(np.unique(shingle_values[i]))
            store.parent.append(base + i)
            store.kept.append(False)
        threshold = self.verify_threshold
        shingles = store.shingles
        candidate_pairs = 0
        verified_pairs = 0
        evicted_idx: List[int] = []

        def union_tracking(a: int, b: int) -> None:
            ra, rb = store.find(a), store.find(b)
            if ra == rb:
                return
            if rb < ra:
                ra, rb = rb, ra
            store.parent[rb] = ra
            if rb < base and store.kept[rb]:
                # A previously-kept representative just got subsumed by an
                # older cluster a new document bridged it to.
                store.kept[rb] = False
                evicted_idx.append(rb)

        for i in range(len(new_docs)):
            s = base + i
            partners: Set[int] = set()
            for band in range(self.bands):
                key = banded[i, band].tobytes()
                bucket = store.buckets[band].get(key)
                if bucket is None:
                    store.buckets[band][key] = [s]
                else:
                    partners.update(bucket)
                    bucket.append(s)
            candidate_pairs += len(partners)
            if not partners:
                continue
            a = shingles[s]
            a_bytes = a.tobytes()
            for p in sorted(partners):
                b = shingles[p]
                if a.shape[0] == 0 and b.shape[0] == 0:
                    sim = 1.0
                elif a.shape[0] == b.shape[0] and a_bytes == b.tobytes():
                    sim = 1.0
                elif a.shape[0] == 0 or b.shape[0] == 0:
                    sim = 0.0
                else:
                    inter = int(
                        np.intersect1d(a, b, assume_unique=True).shape[0]
                    )
                    sim = inter / (a.shape[0] + b.shape[0] - inter)
                if sim >= threshold:
                    verified_pairs += 1
                    union_tracking(p, s)
        admitted: List[TrainingDocument] = []
        rejected: List[TrainingDocument] = []
        for i, doc in enumerate(new_docs):
            s = base + i
            if store.find(s) == s:
                store.kept[s] = True
                admitted.append(doc)
            else:
                rejected.append(doc)
        return IncrementalDedupResult(
            admitted=admitted,
            rejected=rejected,
            evicted=[store.docs[e].doc_id for e in sorted(evicted_idx)],
            candidate_pairs=candidate_pairs,
            verified_pairs=verified_pairs,
        )


def dedup_metrics(
    docs: Sequence[TrainingDocument], result: DedupResult
) -> Dict[str, float]:
    """Precision/recall of duplicate detection against ground truth.

    A removed document is a true positive iff it belongs to a ``dup_group``
    (the generator marked it as having copies).
    """
    removed_ids = {d.doc_id for d in result.removed}
    true_dups = {d.doc_id for d in docs if d.is_duplicate}
    if not removed_ids:
        return {"precision": 1.0 if not true_dups else 0.0, "recall": 0.0}
    tp = len(removed_ids & true_dups)
    precision = tp / len(removed_ids)
    recall = tp / len(true_dups) if true_dups else 1.0
    return {"precision": precision, "recall": recall}
