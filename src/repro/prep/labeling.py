"""Data labeling: annotate documents for supervised use (§2.3.2).

The tutorial lists crowdsourcing, weak supervision, model-based labelling,
transfer learning, and active learning. Implemented:

* :func:`model_label` — LLM-as-annotator via the ``label`` skill;
* :class:`CentroidClassifier` — the cheap student model (nearest class
  centroid in embedding space) that labelled data trains;
* :class:`ActiveLearner` — uncertainty-sampling loop: iteratively spend an
  oracle budget on the documents the student is least sure about
  (margin-based), retraining after each batch — vs. spending the same
  budget at random;
* weak supervision is shared with
  :class:`repro.unstructured.weak_supervision.LabelModel` (labelling
  functions over documents).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..data.synth import TrainingDocument
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..utils import derive_rng

Oracle = Callable[[TrainingDocument], str]


def model_label(
    docs: Sequence[TrainingDocument],
    classes: Sequence[str],
    llm: SimLLM,
) -> List[str]:
    """LLM-annotator: one ``label`` call per document."""
    if not classes:
        raise ConfigError("classes must be non-empty")
    labels = []
    for doc in docs:
        prompt = Prompt(
            task="label",
            instruction="Classify the document into one of the classes.",
            input=doc.text[:500],
            fields={"classes": " | ".join(classes)},
        )
        labels.append(llm.generate(prompt.render(), tag="label").text.strip())
    return labels


class CentroidClassifier:
    """Nearest-class-centroid classifier in embedding space."""

    def __init__(self, embedder: Optional[EmbeddingModel] = None) -> None:
        self.embedder = embedder or EmbeddingModel()
        self._centroids: Dict[str, np.ndarray] = {}

    def fit(
        self, docs: Sequence[TrainingDocument], labels: Sequence[str]
    ) -> "CentroidClassifier":
        if len(docs) != len(labels) or not docs:
            raise ConfigError("fit needs equal, non-empty docs and labels")
        by_class: Dict[str, List[np.ndarray]] = {}
        for doc, label in zip(docs, labels):
            by_class.setdefault(label, []).append(self.embedder.embed(doc.text))
        self._centroids = {}
        for label, vectors in by_class.items():
            centroid = np.mean(vectors, axis=0)
            norm = np.linalg.norm(centroid)
            self._centroids[label] = centroid / norm if norm > 0 else centroid
        return self

    def partial_fit(self, doc: TrainingDocument, label: str) -> None:
        """Cheap incremental update (running mean, renormalized)."""
        vec = self.embedder.embed(doc.text)
        if label in self._centroids:
            updated = self._centroids[label] + vec
            norm = np.linalg.norm(updated)
            self._centroids[label] = updated / norm if norm > 0 else updated
        else:
            self._centroids[label] = vec

    def scores(self, doc: TrainingDocument) -> Dict[str, float]:
        if not self._centroids:
            raise ConfigError("classifier not fitted")
        vec = self.embedder.embed(doc.text)
        return {
            label: float(np.dot(vec, centroid))
            for label, centroid in self._centroids.items()
        }

    def predict(self, doc: TrainingDocument) -> str:
        scores = self.scores(doc)
        return max(sorted(scores), key=lambda c: scores[c])

    def margin(self, doc: TrainingDocument) -> float:
        """Top-1 minus top-2 score: small margin = uncertain."""
        values = sorted(self.scores(doc).values(), reverse=True)
        if len(values) < 2:
            return float("inf")
        return values[0] - values[1]

    def accuracy(
        self, docs: Sequence[TrainingDocument], labels: Sequence[str]
    ) -> float:
        if not docs:
            return 0.0
        return sum(
            self.predict(doc) == label for doc, label in zip(docs, labels)
        ) / len(docs)


@dataclass
class ActiveLearningRound:
    """One oracle round's accounting."""

    round_index: int
    labels_spent: int
    accuracy: float


class ActiveLearner:
    """Uncertainty-sampling active learning around :class:`CentroidClassifier`."""

    def __init__(
        self,
        oracle: Oracle,
        *,
        embedder: Optional[EmbeddingModel] = None,
        batch_size: int = 10,
        seed: int = 0,
        strategy: str = "uncertainty",
    ) -> None:
        if strategy not in {"uncertainty", "random"}:
            raise ConfigError("strategy must be 'uncertainty' or 'random'")
        self.oracle = oracle
        self.classifier = CentroidClassifier(embedder)
        self.batch_size = batch_size
        self.seed = seed
        self.strategy = strategy

    def run(
        self,
        pool: Sequence[TrainingDocument],
        *,
        budget: int,
        test_docs: Sequence[TrainingDocument],
        test_labels: Sequence[str],
        warmup: int = 6,
    ) -> List[ActiveLearningRound]:
        """Spend ``budget`` oracle labels; returns the learning curve."""
        if budget < warmup:
            raise ConfigError("budget must cover the warmup labels")
        rng = derive_rng(self.seed, "active")
        unlabeled = list(range(len(pool)))
        rounds: List[ActiveLearningRound] = []
        # Warmup: random seed labels (both strategies start identically).
        warm_idx = [int(i) for i in rng.permutation(len(unlabeled))[:warmup]]
        warm_rows = [unlabeled[i] for i in warm_idx]
        self.classifier.fit(
            [pool[i] for i in warm_rows], [self.oracle(pool[i]) for i in warm_rows]
        )
        unlabeled = [i for i in unlabeled if i not in set(warm_rows)]
        spent = warmup
        round_index = 0
        rounds.append(
            ActiveLearningRound(
                round_index, spent, self.classifier.accuracy(test_docs, test_labels)
            )
        )
        while spent < budget and unlabeled:
            take = min(self.batch_size, budget - spent, len(unlabeled))
            if self.strategy == "uncertainty":
                unlabeled.sort(key=lambda i: self.classifier.margin(pool[i]))
                batch = unlabeled[:take]
                unlabeled = unlabeled[take:]
            else:
                picks = rng.permutation(len(unlabeled))[:take]
                pick_set = {int(p) for p in picks}
                batch = [unlabeled[p] for p in pick_set]
                unlabeled = [x for j, x in enumerate(unlabeled) if j not in pick_set]
            for i in batch:
                self.classifier.partial_fit(pool[i], self.oracle(pool[i]))
            spent += take
            round_index += 1
            rounds.append(
                ActiveLearningRound(
                    round_index, spent, self.classifier.accuracy(test_docs, test_labels)
                )
            )
        return rounds
