"""The data flywheel: a closed serve/collect/prepare/train loop (§2.4)."""

from .loop import DataFlywheel, FlywheelRound, Interaction, QAStream

__all__ = ["DataFlywheel", "FlywheelRound", "Interaction", "QAStream"]
