"""The data flywheel (paper §2.4): serve -> collect -> prepare -> train -> redeploy.

A closed loop over the Data+AI engine:

1. **Serve** — answer a batch of user questions with the current model
   (RAG off, to expose the parametric-knowledge gap);
2. **Collect** — log the interactions; grounded verification (checking
   answers against the document corpus) separates confirmed facts from
   hallucinations;
3. **Prepare** — the verified interactions become supervised data
   (cleaning out the unverifiable ones — the quality-assurance step the
   paper's flywheel challenges emphasize);
4. **Train** — fine-tune (fact injection) on the verified data;
5. **Measure** — held-out accuracy each round.

The flywheel *accelerates*: more traffic -> more verified facts -> better
closed-book accuracy -> users trust longer queries -> more traffic. The
measurable claim (E22): per-round held-out accuracy rises monotonically,
and verification keeps hallucinated facts from poisoning training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..data.documents import Document, extract_stated_facts
from ..data.world import Fact, Question
from ..errors import ConfigError
from ..llm.protocol import Prompt
from ..llm.skills import parse_question
from ..core.engine import DataAI


@dataclass
class Interaction:
    """One served request with its verification outcome."""

    question: str
    answer: str
    verified: bool
    subject: str = ""
    attribute: str = ""


@dataclass
class FlywheelRound:
    """Per-round accounting."""

    round_index: int
    served: int
    verified: int
    facts_learned: int
    heldout_accuracy: float
    hallucinations_blocked: int


class DataFlywheel:
    """Closed-loop serve/collect/prepare/train cycle over a DataAI engine."""

    def __init__(
        self,
        engine: DataAI,
        *,
        verify: bool = True,
        questions_per_round: int = 40,
    ) -> None:
        self.engine = engine
        self.verify = verify
        self.questions_per_round = questions_per_round
        self._corpus_text = " ".join(d.text for d in engine.documents).lower()
        self._fact_index = {
            fact.key(): fact.value
            for doc in engine.documents
            for fact in extract_stated_facts(doc.text)
        }

    # -------------------------------------------------------------- serving
    def _serve(self, questions: Sequence[Question]) -> List[Interaction]:
        """Serve traffic with retrieval (production serving is grounded).

        Grounded serving is what makes the flywheel *gain* knowledge: the
        retrieved context lets the model answer facts outside its weights,
        and those verified answers are exactly the training signal the
        prepare/train stage distills back into the model.
        """
        interactions = []
        for q in questions:
            answer = self.engine.rag.answer(q.text)
            parsed = parse_question(q.text)
            subject, attribute = (parsed[0], parsed[1]) if parsed else ("", "")
            verified = self._verify(subject, attribute, answer.text)
            interactions.append(
                Interaction(
                    question=q.text,
                    answer=answer.text,
                    verified=verified,
                    subject=subject,
                    attribute=attribute,
                )
            )
        return interactions

    def _verify(self, subject: str, attribute: str, answer: str) -> bool:
        """Ground an answer against the document corpus (not gold labels)."""
        if answer.strip().lower() == "unknown" or not subject:
            return False
        stated = self._fact_index.get((subject.lower(), attribute))
        return stated is not None and stated == answer.strip()

    # ------------------------------------------------------------- training
    def _prepare_and_train(self, interactions: Sequence[Interaction]) -> Tuple[int, int]:
        """Verified interactions become facts; returns (learned, blocked)."""
        facts: List[Fact] = []
        blocked = 0
        for it in interactions:
            keep = it.verified if self.verify else (it.answer.lower() != "unknown")
            if not keep:
                if it.answer.lower() != "unknown":
                    blocked += 1
                continue
            facts.append(
                Fact(
                    subject=it.subject,
                    subject_type="",
                    attribute=it.attribute,
                    value=it.answer.strip(),
                )
            )
        learned = self.engine.llm.fine_tune(facts)
        return learned, blocked

    # ----------------------------------------------------------- evaluation
    def _heldout_accuracy(self, questions: Sequence[Question]) -> float:
        correct = 0
        for q in questions:
            response = self.engine.llm.generate(
                Prompt(task="qa", input=q.text).render(), tag="flywheel-eval"
            )
            correct += response.text == q.answer
        return correct / len(questions) if questions else 0.0

    # ------------------------------------------------------------ main loop
    def run(self, rounds: int, *, heldout: int = 60) -> List[FlywheelRound]:
        """Run the flywheel; returns per-round metrics."""
        if rounds <= 0:
            raise ConfigError("rounds must be positive")
        eval_questions = self.engine.qa.single_hop(heldout)
        history: List[FlywheelRound] = []
        for round_index in range(rounds):
            traffic = QAStream(self.engine, seed_offset=round_index).sample(
                self.questions_per_round
            )
            interactions = self._serve(traffic)
            learned, blocked = self._prepare_and_train(interactions)
            accuracy = self._heldout_accuracy(eval_questions)
            history.append(
                FlywheelRound(
                    round_index=round_index,
                    served=len(interactions),
                    verified=sum(1 for it in interactions if it.verified),
                    facts_learned=learned,
                    heldout_accuracy=accuracy,
                    hallucinations_blocked=blocked,
                )
            )
        return history


class QAStream:
    """Per-round user-traffic sampler (distinct questions each round)."""

    def __init__(self, engine: DataAI, *, seed_offset: int = 0) -> None:
        from ..data.world import QAGenerator

        self._generator = QAGenerator(
            engine.world, seed=engine.config.seed + 100 + seed_offset
        )

    def sample(self, count: int) -> List[Question]:
        return self._generator.single_hop(count)
