"""Simulated visual modality (Figure 1 "Multi-modal Data: Images Videos").

Real image understanding is out of reach offline, so images are simulated
at the representation level real multi-modal planners (CAESURA's VisualQA
tool [53]) actually consume: a **feature vector** whose geometry encodes
the depicted category, plus an optional **caption** carrying other facts.

* :class:`SimImage` — one image: features = its category's prototype
  direction + seeded noise, caption = a fact sentence (or empty);
* :class:`ImageRenderer` — renders one product photo per product; the
  *category* is visible (encoded in pixels/features) while the *maker*
  appears only in the caption — so answering "what kind of product is X"
  needs vision, and "who makes X" needs the caption;
* :class:`VisualQAModel` — the VisualQA tool: nearest-prototype category
  classification over features (accuracy controlled by the noise level)
  plus caption reading for non-visual attributes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..utils import derive_rng
from .documents import FACT_TEMPLATES, extract_stated_facts
from .world import World

FEATURE_DIM = 48


def category_prototype(category: str, *, dim: int = FEATURE_DIM) -> np.ndarray:
    """The deterministic unit direction 'photos of this category' cluster on."""
    rng = derive_rng(0, "imgproto", category)
    vec = rng.standard_normal(dim)
    return vec / np.linalg.norm(vec)


@dataclass
class SimImage:
    """One simulated image."""

    image_id: str
    subject: str
    features: np.ndarray
    caption: str = ""
    meta: Dict[str, str] = field(default_factory=dict)


class ImageRenderer:
    """Render product photos: category in the pixels, maker in the caption."""

    def __init__(
        self, world: World, *, noise: float = 0.35, caption_rate: float = 0.8,
        seed: int = 0
    ) -> None:
        if noise < 0:
            raise ConfigError("noise must be non-negative")
        self.world = world
        self.noise = noise
        self.caption_rate = caption_rate
        self.seed = seed

    def render_product_images(self) -> List[SimImage]:
        images = []
        rng = derive_rng(self.seed, "images")
        templates = FACT_TEMPLATES[("product", "maker")]
        for product in self.world.products:
            category = product.attributes["category"]
            features = category_prototype(category) + self.noise * rng.standard_normal(
                FEATURE_DIM
            )
            features = features / np.linalg.norm(features)
            caption = ""
            if rng.random() < self.caption_rate:
                template = templates[int(rng.integers(0, len(templates)))]
                caption = template.format(s=product.name, v=product.attributes["maker"])
            images.append(
                SimImage(
                    image_id=f"img-{product.uid}",
                    subject=product.name,
                    features=features,
                    caption=caption,
                    meta={"etype": "product"},
                )
            )
        return images


class VisualQAModel:
    """CAESURA's VisualQA tool: classify what is depicted; read the caption.

    Category recognition is a nearest-prototype classifier over the known
    category label set (the "open-vocabulary classifier given candidate
    labels" setting); non-visual attributes fall back to caption reading.
    """

    def __init__(self, categories: Sequence[str]) -> None:
        if not categories:
            raise ConfigError("VisualQAModel needs candidate categories")
        self.categories = sorted(set(categories))
        self._prototypes = np.stack(
            [category_prototype(c) for c in self.categories]
        )

    def classify(self, image: SimImage) -> str:
        """The depicted category (nearest prototype)."""
        scores = self._prototypes @ image.features
        return self.categories[int(np.argmax(scores))]

    def answer(self, image: SimImage, attribute: str) -> Optional[str]:
        """Answer an attribute question about one image (None = unknown)."""
        if attribute == "category":
            return self.classify(image)
        for fact in extract_stated_facts(image.caption):
            if fact.attribute == attribute and fact.subject == image.subject:
                return fact.value
        return None

    def extract_rows(
        self, images: Sequence[SimImage], attributes: Sequence[str]
    ) -> List[Dict[str, Optional[str]]]:
        """Materialize a structured view of an image collection."""
        rows = []
        for image in images:
            row: Dict[str, Optional[str]] = {"name": image.subject}
            for attribute in attributes:
                row[attribute] = self.answer(image, attribute)
            rows.append(row)
        return rows


def classification_accuracy(
    model: VisualQAModel, images: Sequence[SimImage], world: World
) -> float:
    """Fraction of images whose depicted category is recognized correctly."""
    if not images:
        return 0.0
    correct = 0
    for image in images:
        truth = world.lookup(image.subject, "category")
        correct += model.classify(image) == truth
    return correct / len(images)
