"""Synthetic entity-relation world with known ground truth.

Every LLM4Data experiment needs a corpus whose true answers are known so
accuracy is measurable. :class:`World` generates a closed universe of typed
entities (cities, companies, people, products) with attributes and
cross-references, from a single seed. Downstream modules render the world
into documents (``repro.data.documents``), relational tables and JSON
(``repro.datalake``), and question/answer pairs (:class:`QAGenerator`) —
all grounded in the same facts, so cross-modal joins and multi-hop
questions have verifiable answers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..utils import derive_rng

# Name material. Combinatorial products of these give thousands of distinct,
# pronounceable, collision-checked names.
_CITY_STEMS = [
    "Aren", "Bel", "Cor", "Dun", "Elm", "Fal", "Gren", "Hal", "Ist", "Jor",
    "Kel", "Lor", "Mar", "Nor", "Ost", "Pel", "Quil", "Ros", "Sel", "Tor",
    "Ul", "Ver", "Wex", "Yor", "Zan",
]
_CITY_SUFFIXES = ["burg", "ford", "haven", "mont", "port", "stad", "ton", "ville", "wick"]
_COUNTRIES = [
    "Avaria", "Borland", "Cestova", "Drellia", "Esmara", "Fenwick",
    "Galdor", "Hestia", "Illyra", "Jovenia", "Kestral", "Lumeria",
]
_FIRST_NAMES = [
    "Ada", "Boris", "Clara", "Dmitri", "Elena", "Felix", "Greta", "Hugo",
    "Iris", "Jonas", "Karin", "Lars", "Mira", "Nils", "Olga", "Pavel",
    "Quinn", "Rosa", "Sven", "Tara", "Ugo", "Vera", "Wim", "Xenia", "Yuri", "Zoe",
]
_LAST_NAMES = [
    "Albrecht", "Berger", "Castell", "Dahl", "Eriksen", "Falk", "Grau",
    "Holm", "Iversen", "Jansen", "Krause", "Lindt", "Moreau", "Novak",
    "Olsen", "Petrov", "Quist", "Rohde", "Strand", "Thorne", "Ude",
    "Vogel", "Weiss", "Ysel", "Zimmer",
]
_COMPANY_STEMS = [
    "Acu", "Bryte", "Cirro", "Delta", "Ensor", "Flux", "Gale", "Helio",
    "Iono", "Junc", "Kyro", "Lumen", "Mecha", "Nimbo", "Opti", "Pyro",
    "Quanta", "Rhizo", "Strato", "Tensor", "Ultra", "Vanta", "Wavo", "Xeno", "Zephyr",
]
_COMPANY_SUFFIXES = ["Corp", "Dynamics", "Industries", "Labs", "Logic", "Systems", "Works"]
_INDUSTRIES = [
    "aerospace", "agritech", "biotech", "cloud computing", "energy",
    "finance", "logistics", "robotics", "semiconductors", "telecom",
]
_PRODUCT_STEMS = [
    "Aero", "Blaze", "Core", "Dash", "Echo", "Forge", "Glide", "Halo",
    "Ion", "Jet", "Krait", "Lift", "Mono", "Nova", "Orbit", "Pulse",
    "Quark", "Rift", "Spark", "Terra", "Unity", "Volt", "Wisp", "Xact", "Zen",
]
_PRODUCT_CATEGORIES = [
    "analytics platform", "battery pack", "camera drone", "database engine",
    "edge router", "flight controller", "gene sequencer", "humanoid arm",
    "inference chip", "juice press",
]
_ROLES = [
    "chief executive", "chief scientist", "head of design", "lead engineer",
    "operations director", "research fellow",
]


@dataclass(frozen=True)
class Fact:
    """One ground-truth statement: ``subject.attribute = value``."""

    subject: str
    subject_type: str
    attribute: str
    value: str

    def key(self) -> Tuple[str, str]:
        return (self.subject.lower(), self.attribute)


@dataclass
class Entity:
    """A typed entity with an attribute dict (values already stringified)."""

    uid: str
    etype: str
    name: str
    attributes: Dict[str, str] = field(default_factory=dict)

    def facts(self) -> List[Fact]:
        return [
            Fact(self.name, self.etype, attr, value)
            for attr, value in sorted(self.attributes.items())
        ]


@dataclass
class WorldConfig:
    """Sizing knobs for :class:`World`."""

    num_cities: int = 20
    num_companies: int = 30
    num_people: int = 60
    num_products: int = 50
    seed: int = 7

    def validate(self) -> None:
        for name in ("num_cities", "num_companies", "num_people", "num_products"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.num_cities > len(_CITY_STEMS) * len(_CITY_SUFFIXES):
            raise ConfigError("num_cities exceeds distinct name space")
        if self.num_companies > len(_COMPANY_STEMS) * len(_COMPANY_SUFFIXES):
            raise ConfigError("num_companies exceeds distinct name space")
        if self.num_people > len(_FIRST_NAMES) * len(_LAST_NAMES):
            raise ConfigError("num_people exceeds distinct name space")
        if self.num_products > len(_PRODUCT_STEMS) * 40:
            raise ConfigError("num_products exceeds distinct name space")


class World:
    """A closed, seeded universe of entities and facts.

    Entity attribute values that refer to other entities (a company's
    headquarters city, a product's maker) always name entities that exist in
    the world, which is what makes multi-hop questions and cross-modal joins
    answerable.
    """

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        self.config.validate()
        self.entities: Dict[str, Entity] = {}
        self.cities: List[Entity] = []
        self.companies: List[Entity] = []
        self.people: List[Entity] = []
        self.products: List[Entity] = []
        self._build()

    # ------------------------------------------------------------ building
    def _unique_names(self, rng, stems, suffixes, count, joiner="") -> List[str]:
        names: List[str] = []
        seen = set()
        while len(names) < count:
            name = f"{rng.choice(stems)}{joiner}{rng.choice(suffixes)}"
            if name not in seen:
                seen.add(name)
                names.append(name)
        return names

    def _build(self) -> None:
        cfg = self.config
        rng = derive_rng(cfg.seed, "world")

        city_names = self._unique_names(rng, _CITY_STEMS, _CITY_SUFFIXES, cfg.num_cities)
        for i, name in enumerate(city_names):
            city = Entity(
                uid=f"city-{i:03d}",
                etype="city",
                name=name,
                attributes={
                    "country": str(rng.choice(_COUNTRIES)),
                    "population": str(int(rng.integers(40, 9_000)) * 1000),
                },
            )
            self._register(city, self.cities)

        company_names = self._unique_names(
            rng, _COMPANY_STEMS, _COMPANY_SUFFIXES, cfg.num_companies, joiner=" "
        )
        for i, name in enumerate(company_names):
            company = Entity(
                uid=f"co-{i:03d}",
                etype="company",
                name=name,
                attributes={
                    "headquarters": str(rng.choice(city_names)),
                    "industry": str(rng.choice(_INDUSTRIES)),
                    "founded": str(int(rng.integers(1955, 2023))),
                    "revenue_musd": str(int(rng.integers(5, 90_000))),
                },
            )
            self._register(company, self.companies)

        person_names = self._unique_names(
            rng, _FIRST_NAMES, _LAST_NAMES, cfg.num_people, joiner=" "
        )
        for i, name in enumerate(person_names):
            person = Entity(
                uid=f"p-{i:03d}",
                etype="person",
                name=name,
                attributes={
                    "employer": str(rng.choice(company_names)),
                    "role": str(rng.choice(_ROLES)),
                    "age": str(int(rng.integers(24, 70))),
                    "residence": str(rng.choice(city_names)),
                },
            )
            self._register(person, self.people)

        product_suffixes = [f"{n}" for n in range(1, 41)]
        product_names = self._unique_names(
            rng, _PRODUCT_STEMS, product_suffixes, cfg.num_products, joiner="-"
        )
        for i, name in enumerate(product_names):
            product = Entity(
                uid=f"prod-{i:03d}",
                etype="product",
                name=name,
                attributes={
                    "maker": str(rng.choice(company_names)),
                    "category": str(rng.choice(_PRODUCT_CATEGORIES)),
                    "price_usd": str(int(rng.integers(20, 250_000))),
                    "released": str(int(rng.integers(2005, 2026))),
                },
            )
            self._register(product, self.products)

        # Every company gets a CEO drawn from people employed by it when
        # possible, otherwise any person (keeps referential integrity).
        by_employer: Dict[str, List[Entity]] = {}
        for person in self.people:
            by_employer.setdefault(person.attributes["employer"], []).append(person)
        for company in self.companies:
            staff = by_employer.get(company.name) or self.people
            ceo = staff[int(rng.integers(0, len(staff)))]
            company.attributes["ceo"] = ceo.name

    def _register(self, entity: Entity, bucket: List[Entity]) -> None:
        self.entities[entity.uid] = entity
        bucket.append(entity)

    # ------------------------------------------------------------- queries
    def facts(self) -> List[Fact]:
        """All ground-truth facts, deterministically ordered."""
        out: List[Fact] = []
        for uid in sorted(self.entities):
            out.extend(self.entities[uid].facts())
        return out

    def entity_by_name(self, name: str) -> Optional[Entity]:
        lowered = name.lower()
        for entity in self.entities.values():
            if entity.name.lower() == lowered:
                return entity
        return None

    def lookup(self, subject: str, attribute: str) -> Optional[str]:
        """Ground-truth value of ``subject.attribute`` or None."""
        entity = self.entity_by_name(subject)
        if entity is None:
            return None
        return entity.attributes.get(attribute)

    def entities_of_type(self, etype: str) -> List[Entity]:
        return [e for e in self.entities.values() if e.etype == etype]

    def iter_entities(self) -> Iterator[Entity]:
        for uid in sorted(self.entities):
            yield self.entities[uid]


# Attribute phrasing used by both the document renderer and the QA
# generator, so questions match how facts appear in text.
ATTRIBUTE_QUESTIONS: Dict[Tuple[str, str], str] = {
    ("city", "country"): "Which country is {subject} in?",
    ("city", "population"): "What is the population of {subject}?",
    ("company", "headquarters"): "Where is {subject} headquartered?",
    ("company", "industry"): "What industry is {subject} in?",
    ("company", "founded"): "In what year was {subject} founded?",
    ("company", "revenue_musd"): "What is the revenue of {subject} in million USD?",
    ("company", "ceo"): "Who is the CEO of {subject}?",
    ("person", "employer"): "Which company does {subject} work for?",
    ("person", "role"): "What is the role of {subject}?",
    ("person", "age"): "How old is {subject}?",
    ("person", "residence"): "Which city does {subject} live in?",
    ("product", "maker"): "Which company makes {subject}?",
    ("product", "category"): "What kind of product is {subject}?",
    ("product", "price_usd"): "What is the price of {subject} in USD?",
    ("product", "released"): "In what year was {subject} released?",
}

# (first_attr on start_type -> intermediate entity type, second_attr) chains
# used to build two-hop questions with guaranteed answers.
_HOP_CHAINS = [
    ("product", "maker", "company", "headquarters"),
    ("product", "maker", "company", "ceo"),
    ("product", "maker", "company", "industry"),
    ("person", "employer", "company", "headquarters"),
    ("person", "employer", "company", "founded"),
    ("person", "residence", "city", "country"),
    ("company", "headquarters", "city", "country"),
    ("company", "headquarters", "city", "population"),
    ("company", "ceo", "person", "age"),
]


@dataclass(frozen=True)
class Question:
    """A natural-language question with its gold answer and provenance."""

    text: str
    answer: str
    hops: int
    subject: str
    attribute: str
    chain: Tuple[Tuple[str, str], ...] = ()


class QAGenerator:
    """Generates single-hop and two-hop questions with gold answers."""

    def __init__(self, world: World, seed: int = 11) -> None:
        self.world = world
        self.seed = seed

    def single_hop(self, count: int) -> List[Question]:
        """``count`` single-hop questions over random (entity, attribute)."""
        rng = derive_rng(self.seed, "qa1")
        entities = list(self.world.iter_entities())
        questions: List[Question] = []
        while len(questions) < count:
            entity = entities[int(rng.integers(0, len(entities)))]
            keyed = [
                (attr, tmpl)
                for (etype, attr), tmpl in ATTRIBUTE_QUESTIONS.items()
                if etype == entity.etype and attr in entity.attributes
            ]
            attr, template = keyed[int(rng.integers(0, len(keyed)))]
            questions.append(
                Question(
                    text=template.format(subject=entity.name),
                    answer=entity.attributes[attr],
                    hops=1,
                    subject=entity.name,
                    attribute=attr,
                    chain=((entity.name, attr),),
                )
            )
        return questions

    def multi_hop(self, count: int) -> List[Question]:
        """``count`` two-hop questions whose chains resolve inside the world."""
        rng = derive_rng(self.seed, "qa2")
        questions: List[Question] = []
        attempts = 0
        while len(questions) < count:
            attempts += 1
            if attempts > count * 200:
                raise ConfigError("world too small to generate multi-hop questions")
            start_type, attr1, mid_type, attr2 = _HOP_CHAINS[
                int(rng.integers(0, len(_HOP_CHAINS)))
            ]
            starts = self.world.entities_of_type(start_type)
            start = starts[int(rng.integers(0, len(starts)))]
            mid_name = start.attributes.get(attr1)
            if mid_name is None:
                continue
            mid = self.world.entity_by_name(mid_name)
            if mid is None or mid.etype != mid_type:
                continue
            answer = mid.attributes.get(attr2)
            if answer is None:
                continue
            inner_q = ATTRIBUTE_QUESTIONS[(start_type, attr1)].format(subject=start.name)
            outer_template = ATTRIBUTE_QUESTIONS[(mid_type, attr2)]
            text = outer_template.format(
                subject=f"the {attr1.replace('_', ' ')} of {start.name}"
            )
            questions.append(
                Question(
                    text=text,
                    answer=answer,
                    hops=2,
                    subject=start.name,
                    attribute=attr2,
                    chain=((start.name, attr1), (mid_name, attr2)),
                )
            )
            del inner_q
        return questions


def dataclass_fields(obj) -> Dict[str, object]:
    """Utility: dataclass instance -> plain dict (used by JSON renderers)."""
    return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
