"""Synthetic multi-domain training corpus with labelled defects.

The Data4LLM experiments (dedup, filtering, selection, mixing) need a
corpus whose defects are *known*, so precision/recall of each cleaning
technique and the downstream effect on a trainable proxy are measurable.

:class:`CorpusBuilder` generates documents across six lexically distinct
domains, and injects, with ground-truth labels:

* **low-quality text** — gibberish (random character strings), boilerplate
  (navigation/footer spam), and degenerate repetition;
* **toxic text** — documents carrying terms from a marker lexicon;
* **duplicates** — exact copies and near-duplicates (token-level edits of a
  source doc), grouped by ``dup_group``.

Every document records its provenance in :class:`TrainingDocument`, which
downstream code must *not* peek at except to score itself.
"""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..utils import derive_rng

DOMAINS = ("news", "wiki", "code", "forum", "academic", "ads")

# Domain-specific vocabulary pools: shared grammar, disjoint-ish lexicons,
# so an n-gram model trained on one mixture measurably prefers it.
_DOMAIN_NOUNS: Dict[str, List[str]] = {
    "news": ["minister", "election", "economy", "parliament", "budget", "treaty",
             "summit", "inflation", "senate", "tariff", "coalition", "referendum"],
    "wiki": ["species", "river", "dynasty", "architecture", "philosopher", "theorem",
             "continent", "mineral", "constellation", "empire", "manuscript", "basilica"],
    "code": ["function", "variable", "compiler", "iterator", "pointer", "thread",
             "buffer", "closure", "recursion", "segfault", "mutex", "bytecode"],
    "forum": ["thread", "upvote", "moderator", "newbie", "flamewar", "lurker",
              "repost", "karma", "subforum", "troll", "sticky", "necropost"],
    "academic": ["hypothesis", "baseline", "ablation", "corpus", "gradient", "convergence",
                 "regularizer", "benchmark", "citation", "reviewer", "preprint", "appendix"],
    "ads": ["discount", "bundle", "shipping", "voucher", "clearance", "warranty",
            "checkout", "upsell", "loyalty", "coupon", "flashsale", "freebie"],
}
_DOMAIN_VERBS: Dict[str, List[str]] = {
    "news": ["announced", "debated", "approved", "vetoed", "negotiated", "condemned"],
    "wiki": ["originated", "flourished", "documented", "classified", "excavated", "restored"],
    "code": ["compiles", "allocates", "deadlocks", "refactors", "serializes", "benchmarks"],
    "forum": ["posted", "flagged", "bumped", "quoted", "derailed", "archived"],
    "academic": ["evaluated", "outperformed", "converged", "generalized", "reported", "replicated"],
    "ads": ["save", "order", "unlock", "redeem", "subscribe", "upgrade"],
}
_SHARED_FILL = ["the", "a", "this", "that", "every", "another"]
_CONNECTIVES = ["meanwhile", "however", "therefore", "notably", "in practice", "by contrast"]

TOXIC_MARKERS = ["blasterhate", "cursefield", "venomtalk", "slurstorm", "ragebile"]

_BOILERPLATE_LINES = [
    "click here to subscribe to our newsletter",
    "copyright all rights reserved terms of service privacy policy",
    "home about contact sitemap login register",
    "accept cookies to continue browsing this site",
]

QUALITY_CLEAN = "clean"
QUALITY_GIBBERISH = "gibberish"
QUALITY_BOILERPLATE = "boilerplate"
QUALITY_REPEATED = "repeated"


@dataclass
class TrainingDocument:
    """One corpus document with ground-truth provenance labels."""

    doc_id: str
    text: str
    domain: str
    quality: str = QUALITY_CLEAN
    is_toxic: bool = False
    dup_group: Optional[int] = None
    is_duplicate: bool = False  # True for copies; the source doc keeps False

    @property
    def is_clean(self) -> bool:
        return self.quality == QUALITY_CLEAN and not self.is_toxic


@dataclass
class CorpusConfig:
    """Sizing and defect-rate knobs."""

    docs_per_domain: int = 100
    sentences_per_doc: int = 8
    gibberish_fraction: float = 0.06
    boilerplate_fraction: float = 0.06
    repeated_fraction: float = 0.04
    toxic_fraction: float = 0.05
    exact_dup_fraction: float = 0.12
    near_dup_fraction: float = 0.08
    seed: int = 29

    def validate(self) -> None:
        total_defects = (
            self.gibberish_fraction
            + self.boilerplate_fraction
            + self.repeated_fraction
        )
        if total_defects >= 1.0:
            raise ConfigError("defect fractions must sum to < 1")
        for name in (
            "gibberish_fraction",
            "boilerplate_fraction",
            "repeated_fraction",
            "toxic_fraction",
            "exact_dup_fraction",
            "near_dup_fraction",
        ):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ConfigError(f"{name} out of [0, 1]")
        if self.docs_per_domain < 1 or self.sentences_per_doc < 1:
            raise ConfigError("corpus sizes must be positive")


class CorpusBuilder:
    """Seeded generator of labelled multi-domain corpora."""

    def __init__(self, config: Optional[CorpusConfig] = None) -> None:
        self.config = config or CorpusConfig()
        self.config.validate()

    # ------------------------------------------------------------ sentences
    def _clean_sentence(self, domain: str, rng) -> str:
        nouns = _DOMAIN_NOUNS[domain]
        verbs = _DOMAIN_VERBS[domain]
        pattern = int(rng.integers(0, 3))
        n1 = nouns[int(rng.integers(0, len(nouns)))]
        n2 = nouns[int(rng.integers(0, len(nouns)))]
        v = verbs[int(rng.integers(0, len(verbs)))]
        fill = _SHARED_FILL[int(rng.integers(0, len(_SHARED_FILL)))]
        conn = _CONNECTIVES[int(rng.integers(0, len(_CONNECTIVES)))]
        if pattern == 0:
            return f"{fill} {n1} {v} {fill} {n2}."
        if pattern == 1:
            return f"{conn}, {fill} {n1} {v}."
        return f"{fill} {n2} and {fill} {n1} {v}."

    def _gibberish_sentence(self, rng) -> str:
        letters = string.ascii_lowercase + "0123456789"
        words = []
        for _ in range(int(rng.integers(5, 12))):
            length = int(rng.integers(4, 14))
            words.append("".join(letters[int(rng.integers(0, len(letters)))] for _ in range(length)))
        return " ".join(words) + "."

    # ------------------------------------------------------------ documents
    def _clean_doc(self, domain: str, rng) -> str:
        return " ".join(
            self._clean_sentence(domain, rng) for _ in range(self.config.sentences_per_doc)
        )

    def _near_dup(self, text: str, rng) -> str:
        """Perturb ~10% of words (substitution) — a classic near-duplicate."""
        words = text.split()
        n_edits = max(1, len(words) // 10)
        for _ in range(n_edits):
            pos = int(rng.integers(0, len(words)))
            words[pos] = "edit" + str(int(rng.integers(0, 100)))
        return " ".join(words)

    def build(
        self, *, domain_weights: Optional[Dict[str, float]] = None
    ) -> List[TrainingDocument]:
        """Generate the labelled corpus.

        ``domain_weights`` scales per-domain document counts (default
        uniform). Defects and duplicates are injected per domain at the
        configured rates; duplicate groups always stay within one domain.
        """
        cfg = self.config
        rng = derive_rng(cfg.seed, "corpus")
        docs: List[TrainingDocument] = []
        dup_group_counter = 0
        weights = domain_weights or {d: 1.0 for d in DOMAINS}
        for domain in DOMAINS:
            weight = weights.get(domain, 0.0)
            count = int(round(cfg.docs_per_domain * weight))
            base_docs: List[TrainingDocument] = []
            for i in range(count):
                roll = rng.random()
                doc_id = f"{domain}-{i:04d}"
                if roll < cfg.gibberish_fraction:
                    text = " ".join(
                        self._gibberish_sentence(rng)
                        for _ in range(cfg.sentences_per_doc)
                    )
                    quality = QUALITY_GIBBERISH
                elif roll < cfg.gibberish_fraction + cfg.boilerplate_fraction:
                    line = _BOILERPLATE_LINES[int(rng.integers(0, len(_BOILERPLATE_LINES)))]
                    text = ". ".join([line] * cfg.sentences_per_doc) + "."
                    quality = QUALITY_BOILERPLATE
                elif roll < (
                    cfg.gibberish_fraction
                    + cfg.boilerplate_fraction
                    + cfg.repeated_fraction
                ):
                    sentence = self._clean_sentence(domain, rng)
                    text = " ".join([sentence] * cfg.sentences_per_doc)
                    quality = QUALITY_REPEATED
                else:
                    text = self._clean_doc(domain, rng)
                    quality = QUALITY_CLEAN
                is_toxic = rng.random() < cfg.toxic_fraction
                if is_toxic:
                    marker = TOXIC_MARKERS[int(rng.integers(0, len(TOXIC_MARKERS)))]
                    words = text.split()
                    pos = int(rng.integers(0, max(len(words), 1)))
                    words.insert(pos, marker)
                    text = " ".join(words)
                base_docs.append(
                    TrainingDocument(
                        doc_id=doc_id, text=text, domain=domain,
                        quality=quality, is_toxic=is_toxic,
                    )
                )
            # Duplicates of clean docs within the domain.
            clean_pool = [d for d in base_docs if d.quality == QUALITY_CLEAN]
            n_exact = int(round(len(base_docs) * cfg.exact_dup_fraction))
            n_near = int(round(len(base_docs) * cfg.near_dup_fraction))
            extras: List[TrainingDocument] = []
            for j in range(n_exact + n_near):
                if not clean_pool:
                    break
                source = clean_pool[int(rng.integers(0, len(clean_pool)))]
                if source.dup_group is None:
                    dup_group_counter += 1
                    source.dup_group = dup_group_counter
                near = j >= n_exact
                text = self._near_dup(source.text, rng) if near else source.text
                extras.append(
                    TrainingDocument(
                        doc_id=f"{domain}-dup-{j:04d}",
                        text=text,
                        domain=domain,
                        quality=source.quality,
                        is_toxic=source.is_toxic,
                        dup_group=source.dup_group,
                        is_duplicate=True,
                    )
                )
            docs.extend(base_docs)
            docs.extend(extras)
        return docs

    def eval_set(
        self, *, per_domain: int = 30, domain_weights: Optional[Dict[str, float]] = None
    ) -> List[TrainingDocument]:
        """Held-out clean documents (the proxy model's test distribution)."""
        rng = derive_rng(self.config.seed, "corpus-eval")
        weights = domain_weights or {d: 1.0 for d in DOMAINS}
        docs = []
        for domain in DOMAINS:
            count = int(round(per_domain * weights.get(domain, 0.0)))
            for i in range(count):
                docs.append(
                    TrainingDocument(
                        doc_id=f"eval-{domain}-{i:04d}",
                        text=self._clean_doc(domain, rng),
                        domain=domain,
                    )
                )
        return docs


def corpus_summary(docs: Sequence[TrainingDocument]) -> Dict[str, float]:
    """Defect-rate summary of a corpus (used by reports and tests)."""
    if not docs:
        return {"documents": 0}
    n = len(docs)
    return {
        "documents": n,
        "clean_fraction": sum(d.is_clean and not d.is_duplicate for d in docs) / n,
        "toxic_fraction": sum(d.is_toxic for d in docs) / n,
        "duplicate_fraction": sum(d.is_duplicate for d in docs) / n,
        "low_quality_fraction": sum(d.quality != QUALITY_CLEAN for d in docs) / n,
    }
