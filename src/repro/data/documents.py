"""Render a :class:`~repro.data.world.World` into unstructured documents.

Each entity becomes one article whose sentences state its attributes using
one of several phrasings, interleaved with filler prose. The phrasings are
shared with the simulated LLM's reading skill (``repro.llm.skills``): an LLM
that reads a passage can extract the facts it states, and our substrate
reproduces that by inverse-matching these templates — with a configurable
noise channel standing in for model reading errors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..utils import derive_rng
from .world import Entity, Fact, World

# Phrasing variants per attribute. "{s}" is the subject, "{v}" the value.
FACT_TEMPLATES: Dict[Tuple[str, str], List[str]] = {
    ("city", "country"): [
        "{s} is a city in {v}.",
        "{s} lies within the borders of {v}.",
        "Travellers reach {s} by crossing into {v}.",
    ],
    ("city", "population"): [
        "{s} has a population of {v}.",
        "Roughly {v} people call {s} home.",
        "The census puts {s} at {v} residents.",
    ],
    ("company", "headquarters"): [
        "{s} is headquartered in {v}.",
        "The head office of {s} sits in {v}.",
        "{s} runs its operations out of {v}.",
    ],
    ("company", "industry"): [
        "{s} operates in the {v} industry.",
        "{s} is best known as a {v} firm.",
        "Analysts classify {s} under {v}.",
    ],
    ("company", "founded"): [
        "{s} was founded in {v}.",
        "Since its founding in {v}, {s} has grown steadily.",
        "{s} dates back to {v}.",
    ],
    ("company", "revenue_musd"): [
        "{s} reported revenue of {v} million USD.",
        "Last year {s} booked {v} million USD in revenue.",
        "Revenue at {s} reached {v} million USD.",
    ],
    ("company", "ceo"): [
        "{s} is led by chief executive {v}.",
        "The CEO of {s} is {v}.",
        "{v} serves as CEO of {s}.",
    ],
    ("person", "employer"): [
        "{s} works for {v}.",
        "{s} is employed at {v}.",
        "{s} joined {v} several years ago.",
    ],
    ("person", "role"): [
        "{s} serves as {v}.",
        "{s} holds the position of {v}.",
        "At work, {s} is the {v}.",
    ],
    ("person", "age"): [
        "{s} is {v} years old.",
        "At {v}, {s} shows no sign of slowing down.",
    ],
    ("person", "residence"): [
        "{s} lives in {v}.",
        "{s} makes a home in {v}.",
        "{s} commutes from {v}.",
    ],
    ("product", "maker"): [
        "{s} is made by {v}.",
        "{v} manufactures the {s}.",
        "The {s} is a flagship offering from {v}.",
    ],
    ("product", "category"): [
        "{s} is a {v}.",
        "The {s} ships as a {v}.",
        "Reviewers describe the {s} as a {v}.",
    ],
    ("product", "price_usd"): [
        "{s} retails for {v} USD.",
        "The list price of {s} is {v} USD.",
        "Expect to pay {v} USD for the {s}.",
    ],
    ("product", "released"): [
        "{s} was released in {v}.",
        "The {s} first shipped in {v}.",
        "{s} hit the market in {v}.",
    ],
}

_FILLER_SENTENCES = [
    "Industry observers have followed the story closely.",
    "Local media covered the development at length.",
    "The announcement drew mixed reactions.",
    "Further details are expected later this year.",
    "Independent analysts remain cautiously optimistic.",
    "The long-term implications are still debated.",
    "Supply-chain conditions remain a wildcard.",
    "Quarterly reports will tell the rest of the story.",
]


@dataclass
class Document:
    """One unstructured document with provenance metadata."""

    doc_id: str
    title: str
    text: str
    meta: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.text)


def _template_to_regex(template: str) -> re.Pattern:
    """Compile a fact template into a regex extracting subject and value."""
    pattern = re.escape(template)
    pattern = pattern.replace(re.escape("{s}"), r"(?P<s>[A-Z][\w\- ]*?)")
    pattern = pattern.replace(re.escape("{v}"), r"(?P<v>[\w\- ]+?)")
    return re.compile(pattern + r"$")


# Pre-compiled inverse patterns, used by the simulated reading skill.
FACT_PATTERNS: List[Tuple[Tuple[str, str], re.Pattern]] = [
    (key, _template_to_regex(tmpl))
    for key, templates in FACT_TEMPLATES.items()
    for tmpl in templates
]


def extract_stated_facts(text: str) -> List[Fact]:
    """Perfect-reading extraction: every fact explicitly stated in ``text``.

    This is the *oracle* reading of a passage; the simulated LLM applies its
    noise channel on top of this to model imperfect comprehension.
    """
    facts: List[Fact] = []
    seen = set()
    for sentence in re.split(r"(?<=[.!?])\s+", text):
        sentence = sentence.strip()
        if not sentence:
            continue
        for (etype, attr), pattern in FACT_PATTERNS:
            match = pattern.match(sentence)
            if match:
                fact = Fact(
                    subject=match.group("s").strip(),
                    subject_type=etype,
                    attribute=attr,
                    value=match.group("v").strip(),
                )
                if fact.key() + (fact.value,) not in seen:
                    seen.add(fact.key() + (fact.value,))
                    facts.append(fact)
                break
    return facts


class DocumentRenderer:
    """Renders world entities into article-style documents."""

    def __init__(self, world: World, seed: int = 13, filler_ratio: float = 0.5) -> None:
        self.world = world
        self.seed = seed
        self.filler_ratio = filler_ratio

    def render_entity(self, entity: Entity) -> Document:
        """One document stating all attributes of ``entity``."""
        rng = derive_rng(self.seed, "doc", entity.uid)
        sentences: List[str] = []
        for fact in entity.facts():
            templates = FACT_TEMPLATES.get((fact.subject_type, fact.attribute))
            if not templates:
                continue
            template = templates[int(rng.integers(0, len(templates)))]
            sentences.append(template.format(s=fact.subject, v=fact.value))
            if rng.random() < self.filler_ratio:
                sentences.append(
                    _FILLER_SENTENCES[int(rng.integers(0, len(_FILLER_SENTENCES)))]
                )
        return Document(
            doc_id=f"doc-{entity.uid}",
            title=f"Profile: {entity.name}",
            text=" ".join(sentences),
            meta={"entity": entity.name, "etype": entity.etype},
        )

    def render_corpus(self, *, entity_types: Optional[Sequence[str]] = None) -> List[Document]:
        """One document per entity (optionally filtered by type)."""
        docs = []
        for entity in self.world.iter_entities():
            if entity_types and entity.etype not in entity_types:
                continue
            docs.append(self.render_entity(entity))
        return docs

    def render_distractors(self, count: int) -> List[Document]:
        """Fact-free filler documents that retrieval must learn to skip."""
        rng = derive_rng(self.seed, "distractor")
        docs = []
        for i in range(count):
            n = int(rng.integers(4, 9))
            body = " ".join(
                _FILLER_SENTENCES[int(rng.integers(0, len(_FILLER_SENTENCES)))]
                for _ in range(n)
            )
            docs.append(
                Document(
                    doc_id=f"doc-distractor-{i:03d}",
                    title=f"Market notes #{i}",
                    text=body,
                    meta={"etype": "distractor"},
                )
            )
        return docs


def corpus_stats(docs: Iterable[Document]) -> Dict[str, float]:
    """Simple corpus descriptive statistics used in reports."""
    docs = list(docs)
    if not docs:
        return {"documents": 0, "total_chars": 0, "mean_chars": 0.0}
    total = sum(len(d) for d in docs)
    return {
        "documents": len(docs),
        "total_chars": total,
        "mean_chars": total / len(docs),
    }
