"""Interpolated word n-gram language model with add-k smoothing.

Used in two places:

* as the *scoring head* of the simulated LLM (``SimLLM.score`` /
  ``perplexity``), so perplexity-based data selection (paper §2.3.2, [14])
  behaves like it does with a real model — fluent in-domain text scores low,
  garbage and out-of-domain text scores high; and
* as the *downstream quality proxy* for the Data4LLM experiments: we train
  it on a candidate corpus and evaluate held-out perplexity, so the effects
  of dedup, filtering, selection and domain mixing are actually measurable
  instead of asserted.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import ConfigError
from ..llm.tokenizer import Tokenizer, default_tokenizer

_BOS = "<s>"
_UNK = "<unk>"


@dataclass
class NGramLM:
    """Interpolated unigram/bigram/trigram model.

    Parameters
    ----------
    order:
        Highest n-gram order (1-3).
    add_k:
        Additive smoothing constant.
    interpolation:
        Weights for orders 1..order; normalized internally.
    """

    order: int = 2
    add_k: float = 0.1
    interpolation: Sequence[float] = (0.3, 0.7)
    tokenizer: Tokenizer = field(default_factory=default_tokenizer)
    _counts: List[Counter] = field(default_factory=list, repr=False)
    _context_counts: List[Counter] = field(default_factory=list, repr=False)
    _vocab: set = field(default_factory=set, repr=False)
    _total_tokens: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 1 <= self.order <= 3:
            raise ConfigError(f"order must be 1..3, got {self.order}")
        if len(self.interpolation) != self.order:
            raise ConfigError("interpolation weights must match order")
        total = sum(self.interpolation)
        if total <= 0:
            raise ConfigError("interpolation weights must sum to > 0")
        self.interpolation = [w / total for w in self.interpolation]
        self._counts = [Counter() for _ in range(self.order)]
        self._context_counts = [Counter() for _ in range(self.order)]

    # ------------------------------------------------------------- training
    def _tokens(self, text: str) -> List[str]:
        return [_BOS] * (self.order - 1) + self.tokenizer.content_tokens(text)

    def fit(self, corpus: Iterable[str]) -> "NGramLM":
        """Accumulate counts from ``corpus`` (may be called repeatedly)."""
        for text in corpus:
            tokens = self._tokens(text)
            self._vocab.update(t for t in tokens if t != _BOS)
            self._total_tokens += len(tokens) - (self.order - 1)
            for n in range(1, self.order + 1):
                for i in range(self.order - 1, len(tokens)):
                    if i - n + 1 < 0:
                        continue
                    gram = tuple(tokens[i - n + 1 : i + 1])
                    self._counts[n - 1][gram] += 1
                    self._context_counts[n - 1][gram[:-1]] += 1
        return self

    @property
    def vocab_size(self) -> int:
        return max(len(self._vocab), 1)

    @property
    def total_tokens(self) -> int:
        return self._total_tokens

    # -------------------------------------------------------------- scoring
    def _order_prob(self, n: int, gram: Tuple[str, ...]) -> float:
        count = self._counts[n - 1][gram]
        context = self._context_counts[n - 1][gram[:-1]]
        v = self.vocab_size + 1  # +1 for <unk>
        return (count + self.add_k) / (context + self.add_k * v)

    def token_logprob(self, context: Sequence[str], token: str) -> float:
        """Interpolated log2 probability of ``token`` given ``context``."""
        prob = 0.0
        for n in range(1, self.order + 1):
            ctx = tuple(context[-(n - 1) :]) if n > 1 else ()
            prob += self.interpolation[n - 1] * self._order_prob(n, ctx + (token,))
        return math.log2(max(prob, 1e-12))

    def logprob(self, text: str) -> float:
        """Total log2 probability of ``text``."""
        tokens = self._tokens(text)
        total = 0.0
        for i in range(self.order - 1, len(tokens)):
            total += self.token_logprob(tokens[max(0, i - self.order + 1) : i], tokens[i])
        return total

    def perplexity(self, text: str) -> float:
        """Per-token perplexity of ``text`` (lower = more fluent/in-domain)."""
        tokens = self._tokens(text)
        count = len(tokens) - (self.order - 1)
        if count <= 0:
            return float("inf")
        return 2.0 ** (-self.logprob(text) / count)

    def corpus_perplexity(self, corpus: Sequence[str]) -> float:
        """Token-weighted perplexity over a corpus (the proxy metric)."""
        total_lp = 0.0
        total_tokens = 0
        for text in corpus:
            tokens = self._tokens(text)
            count = len(tokens) - (self.order - 1)
            if count <= 0:
                continue
            total_lp += self.logprob(text)
            total_tokens += count
        if total_tokens == 0:
            return float("inf")
        return 2.0 ** (-total_lp / total_tokens)
