"""Synthetic data substrates: the entity world, documents, corpora, tables."""

from .documents import Document, DocumentRenderer, corpus_stats, extract_stated_facts
from .multimodal import ImageRenderer, SimImage, VisualQAModel, classification_accuracy
from .ngram import NGramLM
from .world import Entity, Fact, QAGenerator, Question, World, WorldConfig

__all__ = [
    "Document",
    "DocumentRenderer",
    "corpus_stats",
    "extract_stated_facts",
    "ImageRenderer",
    "SimImage",
    "VisualQAModel",
    "classification_accuracy",
    "NGramLM",
    "Entity",
    "Fact",
    "QAGenerator",
    "Question",
    "World",
    "WorldConfig",
]
