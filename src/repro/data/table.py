"""Minimal typed relational engine.

The structured leg of the multi-modal data lake (Figure 1 "Structured
Tables") and the execution substrate for NL2SQL and lake plans. Supports
select / project / join / group-by aggregation / order / limit over typed
columns, with schema validation on construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError

Row = Dict[str, Any]
Predicate = Callable[[Row], bool]

_TYPES: Dict[str, type] = {"str": str, "int": int, "float": float, "bool": bool}


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: str = "str"

    def __post_init__(self) -> None:
        if self.dtype not in _TYPES:
            raise SchemaError(f"unknown dtype {self.dtype!r}; choose from {sorted(_TYPES)}")

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type (None passes through)."""
        if value is None:
            return None
        target = _TYPES[self.dtype]
        if isinstance(value, target) and not (target is int and isinstance(value, bool)):
            return value
        try:
            if target is bool:
                return str(value).strip().lower() in {"1", "true", "yes"}
            return target(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} to {self.dtype} for column {self.name!r}"
            ) from exc


@dataclass(frozen=True)
class Schema:
    """Ordered column list with name uniqueness."""

    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in {names}")

    @classmethod
    def of(cls, **dtypes: str) -> "Schema":
        return cls(tuple(Column(name, dtype) for name, dtype in dtypes.items()))

    def names(self) -> List[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r}; have {self.names()}")

    def __contains__(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": len,
    "sum": lambda vs: sum(vs) if vs else 0,
    "avg": lambda vs: (sum(vs) / len(vs)) if vs else None,
    "min": lambda vs: min(vs) if vs else None,
    "max": lambda vs: max(vs) if vs else None,
}


class Table:
    """An immutable-by-convention relation: every operator returns a new Table."""

    def __init__(self, name: str, schema: Schema, rows: Iterable[Row] = ()) -> None:
        self.name = name
        self.schema = schema
        self.rows: List[Row] = []
        for row in rows:
            self.rows.append(self._validate(row))

    def _validate(self, row: Row) -> Row:
        clean: Row = {}
        for col in self.schema.columns:
            clean[col.name] = col.coerce(row.get(col.name))
        return clean

    # ----------------------------------------------------------- mutation
    def insert(self, row: Row) -> None:
        self.rows.append(self._validate(row))

    def extend(self, rows: Iterable[Row]) -> None:
        for row in rows:
            self.insert(row)

    # ---------------------------------------------------------- operators
    def select(self, predicate: Predicate, *, name: Optional[str] = None) -> "Table":
        out = Table(name or f"{self.name}_sel", self.schema)
        out.rows = [dict(r) for r in self.rows if predicate(r)]
        return out

    def where(self, column: str, op: str, value: Any) -> "Table":
        """Convenience select on one column (ops: == != > < >= <= contains)."""
        col = self.schema.column(column)
        value = col.coerce(value) if op not in {"contains"} else value

        def predicate(row: Row) -> bool:
            actual = row.get(column)
            if actual is None:
                return False
            if op == "==":
                return actual == value
            if op == "!=":
                return actual != value
            if op == ">":
                return actual > value
            if op == "<":
                return actual < value
            if op == ">=":
                return actual >= value
            if op == "<=":
                return actual <= value
            if op == "contains":
                return str(value).lower() in str(actual).lower()
            raise SchemaError(f"unknown operator {op!r}")

        return self.select(predicate)

    def project(self, columns: Sequence[str], *, name: Optional[str] = None) -> "Table":
        cols = tuple(self.schema.column(c) for c in columns)
        out = Table(name or f"{self.name}_proj", Schema(cols))
        out.rows = [{c: row[c] for c in columns} for row in self.rows]
        return out

    def join(
        self,
        other: "Table",
        *,
        left_on: str,
        right_on: str,
        how: str = "inner",
        name: Optional[str] = None,
    ) -> "Table":
        """Hash join; right columns are prefixed on name collisions."""
        self.schema.column(left_on)
        other.schema.column(right_on)
        if how not in {"inner", "left"}:
            raise SchemaError(f"unsupported join type {how!r}")
        left_names = set(self.schema.names())
        renamed = {
            c.name: (f"{other.name}.{c.name}" if c.name in left_names else c.name)
            for c in other.schema.columns
        }
        out_cols = tuple(self.schema.columns) + tuple(
            Column(renamed[c.name], c.dtype) for c in other.schema.columns
        )
        out = Table(name or f"{self.name}_{other.name}", Schema(out_cols))
        build: Dict[Any, List[Row]] = {}
        for row in other.rows:
            build.setdefault(row.get(right_on), []).append(row)
        for row in self.rows:
            matches = build.get(row.get(left_on), [])
            if matches:
                for match in matches:
                    merged = dict(row)
                    for key, value in match.items():
                        merged[renamed[key]] = value
                    out.rows.append(merged)
            elif how == "left":
                merged = dict(row)
                for key in renamed.values():
                    merged[key] = None
                out.rows.append(merged)
        return out

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Dict[str, Tuple[str, str]],
        *,
        name: Optional[str] = None,
    ) -> "Table":
        """Group and aggregate.

        ``aggregates`` maps output column -> (function, input column); the
        input column is ignored for ``count``. Functions: count, sum, avg,
        min, max.
        """
        for key in keys:
            self.schema.column(key)
        for out_name, (fn, col) in aggregates.items():
            if fn not in _AGGREGATES:
                raise SchemaError(f"unknown aggregate {fn!r}")
            if fn != "count":
                self.schema.column(col)
        groups: Dict[Tuple, List[Row]] = {}
        for row in self.rows:
            groups.setdefault(tuple(row.get(k) for k in keys), []).append(row)
        out_cols = [self.schema.column(k) for k in keys]
        for out_name, (fn, _col) in aggregates.items():
            dtype = "int" if fn == "count" else "float"
            out_cols.append(Column(out_name, dtype))
        out = Table(name or f"{self.name}_agg", Schema(tuple(out_cols)))
        for key_values, rows in sorted(groups.items(), key=lambda kv: str(kv[0])):
            agg_row: Row = dict(zip(keys, key_values))
            for out_name, (fn, col) in aggregates.items():
                if fn == "count":
                    agg_row[out_name] = len(rows)
                else:
                    values = [r[col] for r in rows if r.get(col) is not None]
                    try:
                        result = _AGGREGATES[fn](values)
                        agg_row[out_name] = (
                            float(result) if result is not None else None
                        )
                    except (TypeError, ValueError) as exc:
                        raise SchemaError(
                            f"aggregate {fn!r} needs numeric column {col!r}"
                        ) from exc
            out.rows.append(out._validate(agg_row))
        return out

    def order_by(self, column: str, *, desc: bool = False) -> "Table":
        self.schema.column(column)
        out = Table(self.name, self.schema)
        out.rows = sorted(
            (dict(r) for r in self.rows),
            key=lambda r: (r.get(column) is None, r.get(column)),
            reverse=desc,
        )
        return out

    def limit(self, n: int) -> "Table":
        out = Table(self.name, self.schema)
        out.rows = [dict(r) for r in self.rows[: max(n, 0)]]
        return out

    def distinct(self) -> "Table":
        out = Table(self.name, self.schema)
        seen = set()
        for row in self.rows:
            key = tuple(sorted(row.items()))
            if key not in seen:
                seen.add(key)
                out.rows.append(dict(row))
        return out

    # -------------------------------------------------------------- access
    def column_values(self, column: str) -> List[Any]:
        self.schema.column(column)
        return [row.get(column) for row in self.rows]

    def to_dicts(self) -> List[Row]:
        return [dict(r) for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"Table({self.name!r}, cols={self.schema.names()}, rows={len(self)})"
