"""repro — a reference implementation of the Data+AI stack (LLM4Data and
Data4LLM) from the SIGMOD 2025 tutorial by Li, Wang, Zhang and Wang.

Quick start::

    from repro import DataAI

    engine = DataAI()
    print(engine.ask("Where is Acu Corp headquartered?").text)
    print(engine.analytics("count companies where industry == biotech"))

Subpackages
-----------
``repro.llm``          simulated-LLM substrate (tokenizer, embeddings, hub)
``repro.vector``       vector indexes + vector database
``repro.rag``          retrieval-augmented generation
``repro.prompting``    templates, few-shot selection, compression
``repro.agents``       tool-calling agents with self-reflection
``repro.unstructured`` semantic operators, schema extraction, analytics
``repro.datalake``     multi-modal lake: linking, planning, execution, NL2SQL
``repro.prep``         Data4LLM preparation: discovery/selection/cleaning/...
``repro.training``     distributed-training simulation + checkpointing
``repro.inference``    serving simulation: batching, paged KV, disaggregation
``repro.faults``       deterministic fault injection & recovery
``repro.flywheel``     the closed data flywheel loop
"""

from .core import DataAI, DataAIConfig
from .data import World, WorldConfig
from .llm import SimLLM, make_llm

__version__ = "1.0.0"

__all__ = ["DataAI", "DataAIConfig", "World", "WorldConfig", "SimLLM", "make_llm", "__version__"]
