"""Module-qualified call-graph construction for the interprocedural rules.

PR 2's repro-lint judged every module in isolation, which is exactly the
blind spot scale-out refactors exploit: an unseeded draw three calls below
``ServingEngine.step`` is invisible to a per-module walker.  This module
builds a repository-wide call graph from the already-parsed
:class:`~repro.analysis.driver.ModuleInfo` set:

* **functions** are addressed as ``<relpath>::<qualname>`` (methods include
  their class, nested functions their enclosing function), so two modules
  can define the same name without colliding;
* **imports** resolve through package ``__init__.py`` re-export chains
  (the same convention the PR 2 export index relies on), so
  ``from ..faults import FaultInjector`` lands on ``faults/plan.py``;
* **attribute calls** resolve through ``self``, through parameter / local
  annotations, through constructor assignments (``x = ClassName(...)``),
  and through ``self.attr`` types inferred from ``__init__`` bodies;
* **virtual dispatch** is over-approximated: a call to ``C.method`` also
  edges to every subclass override, so taint never escapes through a
  polymorphic scheduler policy.

Resolution is deliberately conservative-but-partial: a call we cannot
resolve produces *no* edge (precision over recall), which the rules accept
because every rule here reports real syntactic evidence at the callee site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .driver import ModuleInfo

#: Directories (relative to the repo root) that act as import roots.
SOURCE_ROOTS: Tuple[str, ...] = ("src", "")

_MAX_REEXPORT_DEPTH = 8


@dataclass(frozen=True)
class ImportedName:
    """Where a locally-bound name comes from.

    ``relpath`` is ``None`` for third-party imports; ``name`` is ``None``
    when the binding is a whole module (``import numpy as np``).
    """

    relpath: Optional[str]
    name: Optional[str]


@dataclass
class FunctionNode:
    """One function or method, addressed as ``relpath::qualname``."""

    fid: str
    relpath: str
    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    lineno: int
    class_id: Optional[str] = None  # owning ClassNode.cid for methods

    @property
    def label(self) -> str:
        return f"{self.relpath}::{self.qualname}"


@dataclass
class ClassNode:
    """One class definition with resolved bases and inferred attribute types."""

    cid: str
    relpath: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # resolved ClassNode.cid
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fid
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> cid


@dataclass(frozen=True)
class CallEdge:
    """A resolved call site: ``caller`` invokes ``callee`` at ``lineno``."""

    caller: str
    callee: str
    lineno: int


class CallGraph:
    """The resolved program: functions, classes, and call edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.classes: Dict[str, ClassNode] = {}
        self.edges: Dict[str, List[CallEdge]] = {}
        self.subclasses: Dict[str, List[str]] = {}

    def callees(self, fid: str) -> List[CallEdge]:
        return self.edges.get(fid, [])

    def functions_in(self, relpath: str) -> List[FunctionNode]:
        return [f for f in self.functions.values() if f.relpath == relpath]

    def mro(self, cid: str) -> List[str]:
        """Depth-first base-class chain (repo-defined classes only)."""
        seen: List[str] = []
        stack = [cid]
        while stack:
            current = stack.pop(0)
            if current in seen or current not in self.classes:
                continue
            seen.append(current)
            stack.extend(self.classes[current].bases)
        return seen

    def all_subclasses(self, cid: str) -> List[str]:
        """Every transitive subclass of ``cid`` defined in the repo."""
        out: List[str] = []
        stack = list(self.subclasses.get(cid, []))
        while stack:
            current = stack.pop()
            if current in out:
                continue
            out.append(current)
            stack.extend(self.subclasses.get(current, []))
        return out

    def resolve_method(self, cid: str, method: str) -> List[str]:
        """Possible targets of ``obj.method()`` where ``obj: cid``.

        The static target (first definition up the MRO) plus every subclass
        override — the virtual-dispatch over-approximation.
        """
        targets: List[str] = []
        for ancestor in self.mro(cid):
            fid = self.classes[ancestor].methods.get(method)
            if fid is not None:
                targets.append(fid)
                break
        for sub in self.all_subclasses(cid):
            fid = self.classes[sub].methods.get(method)
            if fid is not None and fid not in targets:
                targets.append(fid)
        return targets


# ------------------------------------------------------------ import binding


def _module_candidates(dotted: str) -> Iterator[str]:
    """Candidate relpaths for an absolute dotted module name."""
    tail = dotted.replace(".", "/")
    for root in SOURCE_ROOTS:
        prefix = f"{root}/" if root else ""
        yield f"{prefix}{tail}.py"
        yield f"{prefix}{tail}/__init__.py"


def _relative_candidates(relpath: str, level: int, module: Optional[str]) -> Iterator[str]:
    """Candidate relpaths for a ``from ...mod import name`` relative import."""
    parts = relpath.split("/")[:-1]  # directory of the importing file
    ascend = level - 1
    if ascend > len(parts):
        return
    base = parts[: len(parts) - ascend]
    tail = base + (module.split(".") if module else [])
    joined = "/".join(tail)
    if joined:
        yield f"{joined}.py"
        yield f"{joined}/__init__.py"
    elif base:
        yield "/".join(base) + "/__init__.py"


def _toplevel_defs(tree: ast.Module) -> Set[str]:
    return {
        node.name
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }


class _Binder:
    """Resolves every module's imported names to repo files, chasing re-exports."""

    def __init__(self, modules: Dict[str, "ModuleInfo"]) -> None:
        self.modules = modules
        self._defs: Dict[str, Set[str]] = {}

    def defs(self, relpath: str) -> Set[str]:
        if relpath not in self._defs:
            self._defs[relpath] = _toplevel_defs(self.modules[relpath].tree)
        return self._defs[relpath]

    def _find_module(self, candidates: Iterator[str]) -> Optional[str]:
        for candidate in candidates:
            if candidate in self.modules:
                return candidate
        return None

    def _chase(self, relpath: str, name: str, depth: int = 0) -> ImportedName:
        """Find the module whose top level defines ``name``; follow re-exports."""
        if depth > _MAX_REEXPORT_DEPTH:
            return ImportedName(None, name)
        if name in self.defs(relpath):
            return ImportedName(relpath, name)
        for node in self.modules[relpath].tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            for item in node.names:
                if (item.asname or item.name) != name:
                    continue
                target = self._resolve_from(relpath, node)
                if target is not None:
                    return self._chase(target, item.name, depth + 1)
        return ImportedName(relpath, name)  # defined dynamically or assigned

    def _resolve_from(self, relpath: str, node: ast.ImportFrom) -> Optional[str]:
        if node.level:
            return self._find_module(
                _relative_candidates(relpath, node.level, node.module)
            )
        if node.module:
            return self._find_module(_module_candidates(node.module))
        return None

    def bind(self, relpath: str) -> Dict[str, ImportedName]:
        """Map each locally-bound imported name to its defining repo module."""
        bindings: Dict[str, ImportedName] = {}
        for node in ast.walk(self.modules[relpath].tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    dotted = item.name if item.asname else item.name.split(".")[0]
                    target = self._find_module(_module_candidates(dotted))
                    bindings[local] = ImportedName(target, None)
            elif isinstance(node, ast.ImportFrom):
                target = self._resolve_from(relpath, node)
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    if target is None:
                        bindings[local] = ImportedName(None, item.name)
                    else:
                        resolved = self._chase(target, item.name)
                        # ``from . import mod`` binds a module, not a symbol.
                        if resolved.relpath is not None and resolved.name is not None:
                            submodule = self._find_module(
                                iter(
                                    [
                                        f"{resolved.relpath[: -len('/__init__.py')]}/{item.name}.py",
                                        f"{resolved.relpath[: -len('/__init__.py')]}/{item.name}/__init__.py",
                                    ]
                                )
                                if resolved.relpath.endswith("/__init__.py")
                                and resolved.name not in self.defs(resolved.relpath)
                                else iter(())
                            )
                            if submodule is not None:
                                bindings[local] = ImportedName(submodule, None)
                                continue
                        bindings[local] = resolved
        return bindings


# ----------------------------------------------------------------- collection


class _Collector(ast.NodeVisitor):
    """First pass: register every function and class in one module."""

    def __init__(self, graph: CallGraph, relpath: str) -> None:
        self.graph = graph
        self.relpath = relpath
        self.stack: List[str] = []  # qualname parts
        self.class_stack: List[str] = []  # cids

    def _qual(self, name: str) -> str:
        return ".".join(self.stack + [name])

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        cid = f"{self.relpath}::{qual}"
        self.graph.classes[cid] = ClassNode(
            cid=cid, relpath=self.relpath, name=node.name, node=node
        )
        self.stack.append(node.name)
        self.class_stack.append(cid)
        self.generic_visit(node)
        self.class_stack.pop()
        self.stack.pop()

    def _visit_function(self, node: ast.AST, name: str) -> None:
        qual = self._qual(name)
        fid = f"{self.relpath}::{qual}"
        owner = self.class_stack[-1] if self.class_stack else None
        self.graph.functions[fid] = FunctionNode(
            fid=fid,
            relpath=self.relpath,
            qualname=qual,
            name=name,
            node=node,
            lineno=getattr(node, "lineno", 1),
            class_id=owner,
        )
        # Only direct class-body functions register as methods (nested
        # closures inside a method are locals, not attributes).
        if owner is not None and len(self.stack) and self.stack[-1] == self.graph.classes[owner].name:
            self.graph.classes[owner].methods.setdefault(name, fid)
        self.stack.append(name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)


def _annotation_class(
    annotation: Optional[ast.expr],
    local_classes: Dict[str, str],
    imports: Dict[str, ImportedName],
    graph: CallGraph,
) -> Optional[str]:
    """Resolve a parameter/variable annotation to a repo ClassNode cid."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        name = annotation.value.strip().split("[")[0].split(".")[-1]
    elif isinstance(annotation, ast.Name):
        name = annotation.id
    elif isinstance(annotation, ast.Attribute):
        name = annotation.attr
    elif isinstance(annotation, ast.Subscript):
        # Optional[X] / "Optional[X]" — judge the first simple type argument.
        base = annotation.value
        base_name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else ""
        )
        if base_name == "Optional" and isinstance(annotation.slice, (ast.Name, ast.Constant)):
            return _annotation_class(annotation.slice, local_classes, imports, graph)
        return None
    else:
        return None
    if name in local_classes:
        return local_classes[name]
    imported = imports.get(name)
    if imported is not None and imported.relpath and imported.name:
        cid = f"{imported.relpath}::{imported.name}"
        if cid in graph.classes:
            return cid
    return None


class _Resolver:
    """Second pass: resolve call sites inside one function to edges."""

    def __init__(
        self,
        graph: CallGraph,
        relpath: str,
        imports: Dict[str, ImportedName],
        local_functions: Dict[str, str],
        local_classes: Dict[str, str],
    ) -> None:
        self.graph = graph
        self.relpath = relpath
        self.imports = imports
        self.local_functions = local_functions
        self.local_classes = local_classes

    # ------------------------------------------------------- type inference
    def _infer_locals(self, func: FunctionNode) -> Dict[str, str]:
        """Map local variable names to repo class cids (annotations + ctors)."""
        types: Dict[str, str] = {}
        args = func.node.args  # type: ignore[attr-defined]
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cid = _annotation_class(arg.annotation, self.local_classes, self.imports, self.graph)
            if cid is not None:
                types[arg.arg] = cid
        for node in ast.walk(func.node):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                cid = _annotation_class(
                    node.annotation, self.local_classes, self.imports, self.graph
                )
                if cid is not None:
                    types[node.target.id] = cid
                continue
            if target is None or value is None:
                continue
            if isinstance(value, ast.Call):
                ctor = self._class_of_callable(value.func)
                if ctor is not None:
                    types[target] = ctor
        return types

    def _class_of_callable(self, func: ast.expr) -> Optional[str]:
        """If ``func`` names a repo class, return its cid (a constructor call)."""
        if isinstance(func, ast.Name):
            if func.id in self.local_classes:
                return self.local_classes[func.id]
            imported = self.imports.get(func.id)
            if imported is not None and imported.relpath and imported.name:
                cid = f"{imported.relpath}::{imported.name}"
                if cid in self.graph.classes:
                    return cid
        elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            imported = self.imports.get(func.value.id)
            if imported is not None and imported.relpath and imported.name is None:
                cid = f"{imported.relpath}::{func.attr}"
                if cid in self.graph.classes:
                    return cid
        return None

    def _attr_types_of(self, cid: Optional[str]) -> Dict[str, str]:
        merged: Dict[str, str] = {}
        if cid is None:
            return merged
        for ancestor in reversed(self.graph.mro(cid)):
            merged.update(self.graph.classes[ancestor].attr_types)
        return merged

    # ----------------------------------------------------------- resolution
    def resolve_calls(
        self, func: FunctionNode, nested: Dict[str, str]
    ) -> List[CallEdge]:
        local_types = self._infer_locals(func)
        attr_types = self._attr_types_of(func.class_id)
        edges: List[CallEdge] = []

        def add(targets: List[str], lineno: int) -> None:
            for target in targets:
                if target in self.graph.functions:
                    edges.append(CallEdge(func.fid, target, lineno))

        stack: List[ast.AST] = [func.node]
        while stack:
            node = stack.pop()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                stack.append(child)
            if isinstance(node, ast.Call):
                add(
                    self._targets_of(node.func, func, local_types, attr_types, nested),
                    node.lineno,
                )
        return edges

    def _targets_of(
        self,
        callee: ast.expr,
        func: FunctionNode,
        local_types: Dict[str, str],
        attr_types: Dict[str, str],
        nested: Dict[str, str],
    ) -> List[str]:
        graph = self.graph
        if isinstance(callee, ast.Name):
            name = callee.id
            if name in nested:
                return [nested[name]]
            if name in self.local_functions:
                return [self.local_functions[name]]
            cid = self._class_of_callable(callee)
            if cid is not None:
                init = graph.classes[cid].methods.get("__init__")
                return [init] if init else []
            imported = self.imports.get(name)
            if imported is not None and imported.relpath and imported.name:
                fid = f"{imported.relpath}::{imported.name}"
                if fid in graph.functions:
                    return [fid]
            return []
        if isinstance(callee, ast.Attribute):
            method = callee.attr
            receiver = callee.value
            if isinstance(receiver, ast.Name):
                if receiver.id == "self" and func.class_id is not None:
                    sub_attr = attr_types.get(method)
                    _ = sub_attr  # self.method(): plain method dispatch below
                    return graph.resolve_method(func.class_id, method)
                if receiver.id in local_types:
                    return graph.resolve_method(local_types[receiver.id], method)
                imported = self.imports.get(receiver.id)
                if imported is not None and imported.relpath and imported.name is None:
                    fid = f"{imported.relpath}::{method}"
                    if fid in graph.functions:
                        return [fid]
                    return []
                cid = self._class_of_callable(receiver)
                if cid is not None:  # ClassName.method(obj) unbound style
                    return graph.resolve_method(cid, method)
                return []
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                owner_cid = attr_types.get(receiver.attr)
                if owner_cid is not None:
                    return graph.resolve_method(owner_cid, method)
                return []
            if isinstance(receiver, ast.Call):
                cid = self._class_of_callable(receiver.func)
                if cid is not None:  # ClassName(...).method(...)
                    return graph.resolve_method(cid, method)
        return []


def _collect_attr_types(
    graph: CallGraph,
    cls: ClassNode,
    imports: Dict[str, ImportedName],
    local_classes: Dict[str, str],
) -> None:
    """Infer ``self.x`` attribute classes from assignments in method bodies."""
    resolver = _Resolver(graph, cls.relpath, imports, {}, local_classes)
    for item in cls.node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = item.args
        param_types: Dict[str, str] = {}
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            cid = _annotation_class(arg.annotation, local_classes, imports, graph)
            if cid is not None:
                param_types[arg.arg] = cid
        for node in ast.walk(item):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            if isinstance(value, ast.Call):
                cid = resolver._class_of_callable(value.func)
                if cid is not None:
                    cls.attr_types.setdefault(target.attr, cid)
            elif isinstance(value, ast.Name) and value.id in param_types:
                cls.attr_types.setdefault(target.attr, param_types[value.id])


def build_callgraph(modules: Dict[str, "ModuleInfo"]) -> CallGraph:
    """Construct the repo-wide call graph from parsed modules."""
    graph = CallGraph()
    for relpath, module in modules.items():
        _Collector(graph, relpath).visit(module.tree)
    binder = _Binder(modules)
    bindings = {relpath: binder.bind(relpath) for relpath in modules}
    # Local class / function maps per module (top-level definitions).
    local_classes: Dict[str, Dict[str, str]] = {}
    local_functions: Dict[str, Dict[str, str]] = {}
    for relpath, module in modules.items():
        classes: Dict[str, str] = {}
        functions: Dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                classes[node.name] = f"{relpath}::{node.name}"
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = f"{relpath}::{node.name}"
        local_classes[relpath] = classes
        local_functions[relpath] = functions
    # Resolve class bases and subclass index.
    for cls in graph.classes.values():
        imports = bindings[cls.relpath]
        for base in cls.node.bases:
            cid: Optional[str] = None
            if isinstance(base, ast.Name):
                cid = local_classes[cls.relpath].get(base.id)
                if cid is None:
                    imported = imports.get(base.id)
                    if imported is not None and imported.relpath and imported.name:
                        candidate = f"{imported.relpath}::{imported.name}"
                        if candidate in graph.classes:
                            cid = candidate
            elif isinstance(base, ast.Attribute) and isinstance(base.value, ast.Name):
                imported = imports.get(base.value.id)
                if imported is not None and imported.relpath and imported.name is None:
                    candidate = f"{imported.relpath}::{base.attr}"
                    if candidate in graph.classes:
                        cid = candidate
            if cid is not None:
                cls.bases.append(cid)
                graph.subclasses.setdefault(cid, []).append(cls.cid)
    # Attribute types need bases resolved first (inherited attrs via mro()).
    for cls in graph.classes.values():
        _collect_attr_types(graph, cls, bindings[cls.relpath], local_classes[cls.relpath])
    # Direct-children index: enclosing function fid -> {name: nested fid},
    # so closures resolve without scanning the whole function table.
    nested_children: Dict[str, Dict[str, str]] = {}
    for child in graph.functions.values():
        if "." not in child.qualname:
            continue
        parent_fid = f"{child.relpath}::{child.qualname.rsplit('.', 1)[0]}"
        if parent_fid in graph.functions:
            nested_children.setdefault(parent_fid, {}).setdefault(child.name, child.fid)
    # Call edges.
    resolvers: Dict[str, _Resolver] = {}
    for func in list(graph.functions.values()):
        resolver = resolvers.get(func.relpath)
        if resolver is None:
            resolver = _Resolver(
                graph,
                func.relpath,
                bindings[func.relpath],
                local_functions[func.relpath],
                local_classes[func.relpath],
            )
            resolvers[func.relpath] = resolver
        edges = resolver.resolve_calls(func, nested_children.get(func.fid, {}))
        if edges:
            graph.edges[func.fid] = edges
    return graph
