"""Baseline files: burn legacy debt down incrementally instead of all at once.

A baseline is a checked-in JSON map of violation fingerprints (see
:attr:`repro.analysis.report.Violation.fingerprint`) to occurrence counts.
A lint run fails only on *new* violations — findings whose fingerprint count
exceeds the baseline's.  Fingerprints are line-number-free so unrelated
edits above a legacy finding do not un-baseline it; fixing a baselined
finding makes its entry *stale*, which ``scripts/lint.py`` reports so the
baseline keeps shrinking.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from .report import Violation

BASELINE_VERSION = 1


@dataclass
class BaselineDiff:
    """Outcome of comparing a lint run against a baseline."""

    new: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale: Dict[str, int] = field(default_factory=dict)  # fingerprint -> unused count

    @property
    def ok(self) -> bool:
        return not self.new


def load_baseline(path: Path) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.is_file():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    counts = data.get("counts", {})
    return {str(fingerprint): int(count) for fingerprint, count in counts.items()}


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Write the current findings as the new accepted-debt baseline."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.fingerprint] = counts.get(violation.fingerprint, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "note": "accepted legacy repro-lint debt; regenerate with scripts/lint.py --update-baseline",
        "counts": {key: counts[key] for key in sorted(counts)},
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _pathless(fingerprint: str) -> str:
    """Drop the leading path segment of a ``path::code::message`` fingerprint."""
    _, _, rest = fingerprint.partition("::")
    return rest


def diff_against_baseline(
    violations: Sequence[Violation], baseline: Dict[str, int]
) -> BaselineDiff:
    """Split findings into new vs baselined; report stale baseline entries.

    For a fingerprint with baseline count *n*, the first *n* occurrences
    (lowest line numbers first) are treated as the known legacy ones and any
    excess is new — so adding a second identical violation to a file still
    fails even though the first is accepted.

    A second, rename-tolerant pass then matches leftover new findings
    against leftover baseline entries by the path-free ``code::message``
    key: moving a file does not change what its accepted debt *is*, so a
    pure rename neither fails the run nor reports stale entries.  The match
    is count-limited per key, so a rename plus a genuinely new identical
    finding still fails.
    """
    diff = BaselineDiff()
    remaining = dict(baseline)
    unmatched: List[Violation] = []
    for violation in sorted(violations):
        if remaining.get(violation.fingerprint, 0) > 0:
            remaining[violation.fingerprint] -= 1
            diff.baselined.append(violation)
        else:
            unmatched.append(violation)
    # Rename-tolerant pass over whatever the exact pass could not pair up.
    stale_by_key: Dict[str, List[str]] = {}
    for fingerprint, count in remaining.items():
        if count > 0:
            stale_by_key.setdefault(_pathless(fingerprint), []).extend(
                [fingerprint] * count
            )
    for violation in unmatched:
        candidates = stale_by_key.get(_pathless(violation.fingerprint))
        if candidates:
            matched = candidates.pop(0)
            remaining[matched] -= 1
            diff.baselined.append(violation)
        else:
            diff.new.append(violation)
    diff.baselined.sort()
    diff.stale = {fingerprint: count for fingerprint, count in remaining.items() if count > 0}
    return diff
