"""repro.analysis — interprocedural invariant checker ("repro-lint").

The test suite can only spot-check the properties the reproduction's
credibility rests on: deterministic simulators (the golden-metric tests
assume bit-identical trajectories), a closed exception taxonomy rooted at
:class:`repro.errors.ReproError`, and the strict dtype discipline the
vectorized ANN kernels need for bitwise parity.  This package enforces those
invariants statically, at analysis time, so a refactor cannot silently break
a golden test three PRs later.

v2 grew the checker from a per-module AST walker into a repo-wide
interprocedural analyzer: :mod:`~repro.analysis.callgraph` builds a
module-qualified call graph (attribute/self-method resolution, ``__init__``
re-export chasing, subclass-override dispatch), and
:mod:`~repro.analysis.dataflow` extracts per-function summaries and closes
reachability / may-raise / may-release fixpoints over it — so an unseeded
draw three calls below ``ServingEngine.step`` is now a finding with a
witness call chain, not a blind spot.

Rules
-----
R001  determinism — no wall-clock or unseeded/global RNG in simulator hot paths
R002  exception taxonomy — only ``ReproError`` subclasses may be raised
R003  dtype discipline — numpy constructors in kernel code need explicit dtype
R004  no mutable default arguments
R005  public-API annotations — re-exported callables must be fully annotated
R006  perf-test hygiene — ``benchmarks/perf`` tests must carry the perf marker
R007  determinism taint — nothing reachable from a hot entry point may use
      unseeded RNG or leak set iteration order into results
R008  RNG-stream discipline — Generators come from ``derive_rng`` with
      distinct static tags; no module-level stream globals or cross-stream
      coupled loops
R009  ledger-tag conservation — dotted literal tags match ``<prefix>.sN.<kind>``
      and are read somewhere
R010  hot-loop allocation hygiene — no array/dict constructors in per-event
      while loops, one call level deep
R011  resource safety — locally-owned acquire/release pairs (KV blocks,
      prefix pins) release on every exit path, including may-raise paths

Usage::

    from repro.analysis import LintConfig, run_lint

    result = run_lint(["src", "benchmarks", "tests"], config=LintConfig())
    for violation in result.violations:
        print(violation.format())

The command-line entry point is ``scripts/lint.py`` (``--format
{text,json,github}``); see README "Static analysis" for the suppression
syntax and baseline workflow.
"""

from .baseline import BaselineDiff, diff_against_baseline, load_baseline, write_baseline
from .callgraph import CallEdge, CallGraph, ClassNode, FunctionNode, build_callgraph
from .config import LintConfig
from .dataflow import FunctionSummary, ModuleFacts, Program, build_program
from .driver import LintResult, ModuleInfo, collect_files, run_lint
from .report import Severity, Violation, format_github, format_json, format_report
from .rules import ALL_RULES, Rule
from .suppress import SuppressionIndex, scan_suppressions

__all__ = [
    "ALL_RULES",
    "BaselineDiff",
    "CallEdge",
    "CallGraph",
    "ClassNode",
    "FunctionNode",
    "FunctionSummary",
    "LintConfig",
    "LintResult",
    "ModuleFacts",
    "ModuleInfo",
    "Program",
    "Rule",
    "Severity",
    "SuppressionIndex",
    "Violation",
    "build_callgraph",
    "build_program",
    "collect_files",
    "diff_against_baseline",
    "format_github",
    "format_json",
    "format_report",
    "load_baseline",
    "run_lint",
    "scan_suppressions",
    "write_baseline",
]
