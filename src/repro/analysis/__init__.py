"""repro.analysis — AST-based invariant checker ("repro-lint") for the stack.

The test suite can only spot-check the properties the reproduction's
credibility rests on: deterministic simulators (the golden-metric tests
assume bit-identical trajectories), a closed exception taxonomy rooted at
:class:`repro.errors.ReproError`, and the strict dtype discipline the
vectorized ANN kernels need for bitwise parity.  This package enforces those
invariants statically, at analysis time, so a refactor cannot silently break
a golden test three PRs later.

Rules
-----
R001  determinism — no wall-clock or unseeded/global RNG in simulator hot paths
R002  exception taxonomy — only ``ReproError`` subclasses may be raised
R003  dtype discipline — numpy constructors in kernel code need explicit dtype
R004  no mutable default arguments
R005  public-API annotations — re-exported callables must be fully annotated
R006  perf-test hygiene — ``benchmarks/perf`` tests must carry the perf marker

Usage::

    from repro.analysis import LintConfig, run_lint

    result = run_lint(["src", "benchmarks", "tests"], config=LintConfig())
    for violation in result.violations:
        print(violation.format())

The command-line entry point is ``scripts/lint.py``; see README "Static
analysis" for the suppression syntax and baseline workflow.
"""

from .baseline import BaselineDiff, diff_against_baseline, load_baseline, write_baseline
from .config import LintConfig
from .driver import LintResult, ModuleInfo, collect_files, run_lint
from .report import Severity, Violation, format_report
from .rules import ALL_RULES, Rule
from .suppress import SuppressionIndex, scan_suppressions

__all__ = [
    "ALL_RULES",
    "BaselineDiff",
    "LintConfig",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "Severity",
    "SuppressionIndex",
    "Violation",
    "collect_files",
    "diff_against_baseline",
    "format_report",
    "load_baseline",
    "run_lint",
    "scan_suppressions",
    "write_baseline",
]
