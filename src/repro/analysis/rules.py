"""The six repro-lint rules, one checker class per invariant.

Each rule walks a parsed module (:class:`repro.analysis.driver.ModuleInfo`)
and yields :class:`~repro.analysis.report.Violation` records.  Rules are
pure: all repository context (exception taxonomy, public-API export index)
is computed once by the driver and passed in via :class:`RuleContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .config import LintConfig
from .report import Severity, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .driver import ModuleInfo


@dataclass(frozen=True)
class RuleContext:
    """Repository-wide facts shared by all rules for one lint run."""

    config: LintConfig
    # Class names transitively derived from ReproError (R002).
    taxonomy: FrozenSet[str] = field(default_factory=frozenset)
    # relpath -> names re-exported from that module via some __init__.py (R005).
    exports: Dict[str, FrozenSet[str]] = field(default_factory=dict)


class Rule:
    """Base checker: subclasses set ``code``/``name`` and implement check()."""

    code: str = "R999"
    name: str = "abstract"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: "ModuleInfo", node: ast.AST, message: str) -> Violation:
        return Violation(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            code=self.code,
            message=message,
            severity=self.severity,
        )


def resolve_call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a dotted module-level name, through imports.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``rng.choice`` on a local variable resolves
    to ``None`` (not a module-level name), which callers treat as "not ours
    to judge".
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import time`` -> {"time": "time"}; ``import numpy as np`` ->
    {"np": "numpy"}; ``from time import time as now`` -> {"now": "time.time"}.
    Relative imports keep their dots stripped (rule scopes never target them).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


# --------------------------------------------------------------------------- R001


class DeterminismRule(Rule):
    """R001: simulator hot paths must not read wall clocks or global RNG.

    The golden-metric tests (tests/test_scheduler_golden.py) assume
    bit-identical trajectories, which only hold when every stochastic choice
    flows through an injected seeded ``numpy.random.Generator`` (see
    ``repro.utils.derive_rng``) and no control flow depends on real time.
    """

    code = "R001"
    name = "determinism"
    description = "no wall-clock or unseeded/global RNG in simulator hot paths"

    _WALL_CLOCK: FrozenSet[str] = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )
    # numpy legacy API: all of these mutate/read the hidden global RandomState.
    _NUMPY_GLOBAL: FrozenSet[str] = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "choice", "shuffle", "permutation", "normal", "uniform", "standard_normal",
            "binomial", "poisson", "beta", "gamma", "exponential", "bytes",
        }
    )

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.is_hot_path(module.relpath):
            return
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in self._WALL_CLOCK:
                yield self.violation(
                    module, node,
                    f"wall-clock call {dotted}() in simulator hot path; "
                    "derive timestamps from simulated clocks",
                )
            elif dotted.startswith("random."):
                yield self.violation(
                    module, node,
                    f"stdlib global RNG {dotted}() in hot path; "
                    "inject a seeded numpy Generator (repro.utils.derive_rng)",
                )
            elif dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in self._NUMPY_GLOBAL:
                    yield self.violation(
                        module, node,
                        f"global-state RNG numpy.random.{tail}() in hot path; "
                        "use an injected seeded Generator",
                    )
                elif tail == "default_rng" and not node.args and not node.keywords:
                    yield self.violation(
                        module, node,
                        "numpy.random.default_rng() without a seed in hot path; "
                        "pass an explicit seed (repro.utils.derive_rng)",
                    )


# --------------------------------------------------------------------------- R002


def _exception_name(node: ast.expr) -> Optional[str]:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _looks_like_exception_class(name: str) -> bool:
    return name[:1].isupper() and (
        name.endswith("Error") or name.endswith("Exception") or name.endswith("Warning")
    )


class ExceptionTaxonomyRule(Rule):
    """R002: library raises stay inside the ReproError taxonomy.

    Callers are promised a single ``except ReproError`` catches every library
    failure (src/repro/errors.py docstring); a stray ValueError breaks that
    contract silently.  Bare ``except:`` and ``except Exception`` without a
    re-raise are flagged too — they swallow taxonomy violations.
    """

    code = "R002"
    name = "exception-taxonomy"
    description = "raise only ReproError subclasses; no swallowing broad excepts"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.in_taxonomy_scope(module.relpath):
            return
        if module.relpath.replace("\\", "/") == context.config.taxonomy_module:
            return  # the taxonomy itself defines, not raises
        allowed = context.taxonomy | context.config.allowed_raises
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    continue  # bare re-raise inside an except block
                name = _exception_name(node.exc)
                if name is None or name in allowed:
                    continue
                # `raise exc` re-raising a captured variable is fine; only
                # names that look like exception classes are judged.
                if isinstance(node.exc, ast.Call) or _looks_like_exception_class(name):
                    yield self.violation(
                        module, node,
                        f"raises {name}, which is outside the ReproError taxonomy "
                        "(src/repro/errors.py)",
                    )
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_handler(
        self, module: "ModuleInfo", handler: ast.ExceptHandler
    ) -> Iterator[Violation]:
        if handler.type is None:
            yield self.violation(
                module, handler, "bare 'except:' hides taxonomy violations; name the exception"
            )
            return
        names = [
            _exception_name(elt)
            for elt in (
                handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
            )
        ]
        if not any(name in {"Exception", "BaseException"} for name in names):
            return
        reraises = any(isinstance(inner, ast.Raise) for inner in ast.walk(handler))
        if not reraises:
            yield self.violation(
                module, handler,
                "'except Exception' without re-raise swallows non-taxonomy errors; "
                "narrow the type or re-raise as a ReproError",
            )


# --------------------------------------------------------------------------- R003


class DtypeDisciplineRule(Rule):
    """R003: kernel numpy constructors must pin an explicit dtype.

    The batched ANN kernels guarantee bitwise parity with their scalar
    counterparts (tests/test_vector_batch.py); an implicit platform-default
    dtype in an allocation is exactly the kind of drift that breaks parity
    only on some machines.
    """

    code = "R003"
    name = "dtype-discipline"
    description = "np.array/np.zeros/np.empty/... in kernel code need dtype="

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.in_dtype_scope(module.relpath):
            return
        constructors = context.config.dtype_constructors
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node.func, module.aliases)
            if dotted is None or not dotted.startswith("numpy."):
                continue
            tail = dotted[len("numpy."):]
            if tail not in constructors:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.array(x, float) — positional dtype is the 2nd arg for array/full's 3rd.
            positional_dtype = (tail == "array" and len(node.args) >= 2) or (
                tail == "full" and len(node.args) >= 3
            )
            if positional_dtype:
                continue
            yield self.violation(
                module, node,
                f"numpy.{tail}() without explicit dtype in kernel code; "
                "pin dtype to preserve bitwise parity",
            )


# --------------------------------------------------------------------------- R004


class MutableDefaultRule(Rule):
    """R004: no mutable default arguments (shared state across calls)."""

    code = "R004"
    name = "mutable-default"
    description = "default argument values must be immutable"

    _MUTABLE_CALLS: FrozenSet[str] = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        module, default,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in self._MUTABLE_CALLS
        return False


# --------------------------------------------------------------------------- R005


class PublicApiAnnotationRule(Rule):
    """R005: re-exported callables are the contract — annotate them fully.

    A name re-exported through a package ``__init__.py`` is public API; every
    parameter and the return type must carry annotations so the contract is
    checkable (and so mypy users downstream get real types, not Any).
    """

    code = "R005"
    name = "public-api-annotations"
    severity = Severity.WARNING
    description = "exported functions/methods must be fully type-annotated"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        exported = context.exports.get(module.relpath.replace("\\", "/"))
        if not exported:
            return
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in exported:
                yield from self._check_function(module, node, owner=None)
            elif isinstance(node, ast.ClassDef) and node.name in exported:
                for item in node.body:
                    if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    if item.name.startswith("_") and item.name != "__init__":
                        continue
                    yield from self._check_function(module, item, owner=node.name)

    def _check_function(
        self,
        module: "ModuleInfo",
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: Optional[str],
    ) -> Iterator[Violation]:
        label = f"{owner}.{node.name}" if owner else node.name
        args = node.args
        positional = args.posonlyargs + args.args
        if owner is not None and positional and positional[0].arg in {"self", "cls"}:
            positional = positional[1:]
        missing = [arg.arg for arg in positional + args.kwonlyargs if arg.annotation is None]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(f"*{vararg.arg}")
        if missing:
            yield self.violation(
                module, node,
                f"public {label}() missing parameter annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.violation(
                module, node, f"public {label}() missing return annotation"
            )


# --------------------------------------------------------------------------- R006


class PerfMarkerRule(Rule):
    """R006: every test under benchmarks/perf carries the ``perf`` marker.

    Tier-1 runs with ``-m "not perf"`` (pyproject addopts); an unmarked perf
    test would silently join tier-1 and make it timing-sensitive.
    """

    code = "R006"
    name = "perf-marker"
    description = "benchmarks/perf tests must be marked @pytest.mark.perf"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        relpath = module.relpath.replace("\\", "/")
        if not context.config.in_perf_scope(relpath):
            return
        filename = relpath.rsplit("/", 1)[-1]
        if not (filename.startswith("test_") and filename.endswith(".py")):
            return
        marker = context.config.perf_marker
        if self._module_marked(module.tree, marker):
            return
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("test_") and not self._decorated(node, marker):
                    yield self.violation(
                        module, node,
                        f"perf test {node.name}() lacks @pytest.mark.{marker}; "
                        "it would leak into tier-1",
                    )
            elif isinstance(node, ast.ClassDef) and node.name.startswith("Test"):
                if not self._decorated(node, marker):
                    yield self.violation(
                        module, node,
                        f"perf test class {node.name} lacks @pytest.mark.{marker}; "
                        "it would leak into tier-1",
                    )

    def _module_marked(self, tree: ast.Module, marker: str) -> bool:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "pytestmark" for t in node.targets
            ):
                continue
            values = node.value.elts if isinstance(node.value, (ast.List, ast.Tuple)) else [node.value]
            if any(self._is_marker(value, marker) for value in values):
                return True
        return False

    def _decorated(self, node: ast.AST, marker: str) -> bool:
        return any(
            self._is_marker(decorator, marker)
            for decorator in getattr(node, "decorator_list", [])
        )

    def _is_marker(self, node: ast.expr, marker: str) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        return isinstance(target, ast.Attribute) and target.attr == marker


ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    ExceptionTaxonomyRule(),
    DtypeDisciplineRule(),
    MutableDefaultRule(),
    PublicApiAnnotationRule(),
    PerfMarkerRule(),
)
