"""The repro-lint rules (R001–R011), one checker class per invariant.

Each rule walks a parsed module (:class:`repro.analysis.driver.ModuleInfo`)
and yields :class:`~repro.analysis.report.Violation` records.  Rules are
pure: all repository context (exception taxonomy, public-API export index,
and — for the interprocedural rules R007–R011 — the whole-repo
:class:`~repro.analysis.dataflow.Program`) is computed once by the driver
and passed in via :class:`RuleContext`.

R001–R006 are the original per-module invariants; R007–R011 judge facts
the :mod:`~repro.analysis.callgraph` / :mod:`~repro.analysis.dataflow`
layers propagate across module boundaries (reachability from hot entry
points, may-raise, may-release).  When ``context.program`` is ``None``
(a rules-only unit test), the interprocedural rules stay silent.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from .config import LintConfig
from .report import Severity, Violation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .dataflow import Program
    from .driver import ModuleInfo


@dataclass(frozen=True)
class RuleContext:
    """Repository-wide facts shared by all rules for one lint run."""

    config: LintConfig
    # Class names transitively derived from ReproError (R002).
    taxonomy: FrozenSet[str] = field(default_factory=frozenset)
    # relpath -> names re-exported from that module via some __init__.py (R005).
    exports: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    # Whole-repo call graph + summaries + fixpoints (R007–R011).
    program: Optional["Program"] = None


class Rule:
    """Base checker: subclasses set ``code``/``name`` and implement check()."""

    code: str = "R999"
    name: str = "abstract"
    severity: Severity = Severity.ERROR
    description: str = ""

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, module: "ModuleInfo", node: ast.AST, message: str) -> Violation:
        return self.violation_at(module, getattr(node, "lineno", 1), message)

    def violation_at(self, module: "ModuleInfo", lineno: int, message: str) -> Violation:
        return Violation(
            path=module.relpath,
            line=lineno,
            code=self.code,
            message=message,
            severity=self.severity,
        )


def resolve_call_name(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to a dotted module-level name, through imports.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``rng.choice`` on a local variable resolves
    to ``None`` (not a module-level name), which callers treat as "not ours
    to judge".
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def iter_own_nodes(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class scopes."""
    stack: List[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted names they import.

    ``import time`` -> {"time": "time"}; ``import numpy as np`` ->
    {"np": "numpy"}; ``from time import time as now`` -> {"now": "time.time"}.
    Relative imports keep their dots stripped (rule scopes never target them).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = (
                    item.name if item.asname else item.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for item in node.names:
                if item.name == "*":
                    continue
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


# --------------------------------------------------------------------------- R001


class DeterminismRule(Rule):
    """R001: simulator hot paths must not read wall clocks or global RNG.

    The golden-metric tests (tests/test_scheduler_golden.py) assume
    bit-identical trajectories, which only hold when every stochastic choice
    flows through an injected seeded ``numpy.random.Generator`` (see
    ``repro.utils.derive_rng``) and no control flow depends on real time.
    """

    code = "R001"
    name = "determinism"
    description = "no wall-clock or unseeded/global RNG in simulator hot paths"

    _WALL_CLOCK: FrozenSet[str] = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )
    # numpy legacy API: all of these mutate/read the hidden global RandomState.
    _NUMPY_GLOBAL: FrozenSet[str] = frozenset(
        {
            "seed", "rand", "randn", "randint", "random", "random_sample",
            "choice", "shuffle", "permutation", "normal", "uniform", "standard_normal",
            "binomial", "poisson", "beta", "gamma", "exponential", "bytes",
        }
    )

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.is_hot_path(module.relpath):
            return
        aliases = module.aliases
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in self._WALL_CLOCK:
                yield self.violation(
                    module, node,
                    f"wall-clock call {dotted}() in simulator hot path; "
                    "derive timestamps from simulated clocks",
                )
            elif dotted.startswith("random."):
                yield self.violation(
                    module, node,
                    f"stdlib global RNG {dotted}() in hot path; "
                    "inject a seeded numpy Generator (repro.utils.derive_rng)",
                )
            elif dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in self._NUMPY_GLOBAL:
                    yield self.violation(
                        module, node,
                        f"global-state RNG numpy.random.{tail}() in hot path; "
                        "use an injected seeded Generator",
                    )
                elif tail == "default_rng" and not node.args and not node.keywords:
                    yield self.violation(
                        module, node,
                        "numpy.random.default_rng() without a seed in hot path; "
                        "pass an explicit seed (repro.utils.derive_rng)",
                    )


# --------------------------------------------------------------------------- R002


def _exception_name(node: ast.expr) -> Optional[str]:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Attribute):
        return target.attr
    if isinstance(target, ast.Name):
        return target.id
    return None


def _looks_like_exception_class(name: str) -> bool:
    return name[:1].isupper() and (
        name.endswith("Error") or name.endswith("Exception") or name.endswith("Warning")
    )


class ExceptionTaxonomyRule(Rule):
    """R002: library raises stay inside the ReproError taxonomy.

    Callers are promised a single ``except ReproError`` catches every library
    failure (src/repro/errors.py docstring); a stray ValueError breaks that
    contract silently.  Bare ``except:`` and ``except Exception`` without a
    re-raise are flagged too — they swallow taxonomy violations.
    """

    code = "R002"
    name = "exception-taxonomy"
    description = "raise only ReproError subclasses; no swallowing broad excepts"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.in_taxonomy_scope(module.relpath):
            return
        if module.relpath.replace("\\", "/") == context.config.taxonomy_module:
            return  # the taxonomy itself defines, not raises
        allowed = context.taxonomy | context.config.allowed_raises
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Raise):
                if node.exc is None:
                    continue  # bare re-raise inside an except block
                name = _exception_name(node.exc)
                if name is None or name in allowed:
                    continue
                # `raise exc` re-raising a captured variable is fine; only
                # names that look like exception classes are judged.
                if isinstance(node.exc, ast.Call) or _looks_like_exception_class(name):
                    yield self.violation(
                        module, node,
                        f"raises {name}, which is outside the ReproError taxonomy "
                        "(src/repro/errors.py)",
                    )
            elif isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(module, node)

    def _check_handler(
        self, module: "ModuleInfo", handler: ast.ExceptHandler
    ) -> Iterator[Violation]:
        if handler.type is None:
            yield self.violation(
                module, handler, "bare 'except:' hides taxonomy violations; name the exception"
            )
            return
        names = [
            _exception_name(elt)
            for elt in (
                handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
            )
        ]
        if not any(name in {"Exception", "BaseException"} for name in names):
            return
        reraises = any(isinstance(inner, ast.Raise) for inner in ast.walk(handler))
        if not reraises:
            yield self.violation(
                module, handler,
                "'except Exception' without re-raise swallows non-taxonomy errors; "
                "narrow the type or re-raise as a ReproError",
            )


# --------------------------------------------------------------------------- R003


class DtypeDisciplineRule(Rule):
    """R003: kernel numpy constructors must pin an explicit dtype.

    The batched ANN kernels guarantee bitwise parity with their scalar
    counterparts (tests/test_vector_batch.py); an implicit platform-default
    dtype in an allocation is exactly the kind of drift that breaks parity
    only on some machines.
    """

    code = "R003"
    name = "dtype-discipline"
    description = "np.array/np.zeros/np.empty/... in kernel code need dtype="

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        if not context.config.in_dtype_scope(module.relpath):
            return
        constructors = context.config.dtype_constructors
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_call_name(node.func, module.aliases)
            if dotted is None or not dotted.startswith("numpy."):
                continue
            tail = dotted[len("numpy."):]
            if tail not in constructors:
                continue
            if any(kw.arg == "dtype" for kw in node.keywords):
                continue
            # np.array(x, float) — positional dtype is the 2nd arg for array/full's 3rd.
            positional_dtype = (tail == "array" and len(node.args) >= 2) or (
                tail == "full" and len(node.args) >= 3
            )
            if positional_dtype:
                continue
            yield self.violation(
                module, node,
                f"numpy.{tail}() without explicit dtype in kernel code; "
                "pin dtype to preserve bitwise parity",
            )


# --------------------------------------------------------------------------- R004


class MutableDefaultRule(Rule):
    """R004: no mutable default arguments (shared state across calls)."""

    code = "R004"
    name = "mutable-default"
    description = "default argument values must be immutable"

    _MUTABLE_CALLS: FrozenSet[str] = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        module, default,
                        f"mutable default argument in {node.name}(); "
                        "use None and construct inside the body",
                    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in self._MUTABLE_CALLS
        return False


# --------------------------------------------------------------------------- R005


class PublicApiAnnotationRule(Rule):
    """R005: re-exported callables are the contract — annotate them fully.

    A name re-exported through a package ``__init__.py`` is public API; every
    parameter and the return type must carry annotations so the contract is
    checkable (and so mypy users downstream get real types, not Any).
    """

    code = "R005"
    name = "public-api-annotations"
    severity = Severity.WARNING
    description = "exported functions/methods must be fully type-annotated"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        exported = context.exports.get(module.relpath.replace("\\", "/"))
        if not exported:
            return
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name in exported:
                yield from self._check_function(module, node, owner=None)
            elif isinstance(node, ast.ClassDef) and node.name in exported:
                for item in node.body:
                    if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    if item.name.startswith("_") and item.name != "__init__":
                        continue
                    yield from self._check_function(module, item, owner=node.name)

    def _check_function(
        self,
        module: "ModuleInfo",
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        owner: Optional[str],
    ) -> Iterator[Violation]:
        label = f"{owner}.{node.name}" if owner else node.name
        args = node.args
        positional = args.posonlyargs + args.args
        if owner is not None and positional and positional[0].arg in {"self", "cls"}:
            positional = positional[1:]
        missing = [arg.arg for arg in positional + args.kwonlyargs if arg.annotation is None]
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None and vararg.annotation is None:
                missing.append(f"*{vararg.arg}")
        if missing:
            yield self.violation(
                module, node,
                f"public {label}() missing parameter annotations: {', '.join(missing)}",
            )
        if node.returns is None:
            yield self.violation(
                module, node, f"public {label}() missing return annotation"
            )


# --------------------------------------------------------------------------- R006


class PerfMarkerRule(Rule):
    """R006: every test under benchmarks/perf carries the ``perf`` marker.

    Tier-1 runs with ``-m "not perf"`` (pyproject addopts); an unmarked perf
    test would silently join tier-1 and make it timing-sensitive.
    """

    code = "R006"
    name = "perf-marker"
    description = "benchmarks/perf tests must be marked @pytest.mark.perf"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        relpath = module.relpath.replace("\\", "/")
        if not context.config.in_perf_scope(relpath):
            return
        filename = relpath.rsplit("/", 1)[-1]
        if not (filename.startswith("test_") and filename.endswith(".py")):
            return
        marker = context.config.perf_marker
        if self._module_marked(module.tree, marker):
            return
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("test_") and not self._decorated(node, marker):
                    yield self.violation(
                        module, node,
                        f"perf test {node.name}() lacks @pytest.mark.{marker}; "
                        "it would leak into tier-1",
                    )
            elif isinstance(node, ast.ClassDef) and node.name.startswith("Test"):
                if not self._decorated(node, marker):
                    yield self.violation(
                        module, node,
                        f"perf test class {node.name} lacks @pytest.mark.{marker}; "
                        "it would leak into tier-1",
                    )

    def _module_marked(self, tree: ast.Module, marker: str) -> bool:
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "pytestmark" for t in node.targets
            ):
                continue
            values = node.value.elts if isinstance(node.value, (ast.List, ast.Tuple)) else [node.value]
            if any(self._is_marker(value, marker) for value in values):
                return True
        return False

    def _decorated(self, node: ast.AST, marker: str) -> bool:
        return any(
            self._is_marker(decorator, marker)
            for decorator in getattr(node, "decorator_list", [])
        )

    def _is_marker(self, node: ast.expr, marker: str) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        return isinstance(target, ast.Attribute) and target.attr == marker


# --------------------------------------------------------------------------- R007


class DeterminismTaintRule(Rule):
    """R007: nothing reachable from a hot entry point may be order-unstable.

    R001 checks hot-path *files*; this rule checks hot-path *executions*: a
    BFS over the call graph from the configured entry points
    (``ServingEngine.run/step``, ``ClusterFleet.run``, ``SemExecutor.run``,
    ``PrepPipeline.run``, ...) taints every transitively-called function.
    Inside the tainted set, two things break bit-determinism silently:

    * unseeded randomness (global ``numpy.random.*`` / stdlib ``random.*`` /
      ``default_rng()`` without a seed) — the golden-trajectory tests only
      hold when every draw comes from an injected seeded Generator;
    * iteration over a ``set`` whose order escapes into results — set order
      depends on ``PYTHONHASHSEED`` for str keys.  (``dict``/``dict.keys()``
      are insertion-ordered since 3.7 and are deliberately not flagged.)

    Every finding prints its witness call chain from the entry point.
    """

    code = "R007"
    name = "determinism-taint"
    description = "no unseeded RNG or set-order escapes reachable from hot entry points"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        program = context.program
        if program is None:
            return
        for func in program.graph.functions_in(module.relpath):
            if not program.is_entry_reachable(func.fid):
                continue
            summary = program.summary_of(func.fid)
            if summary is None:
                continue
            chain = " -> ".join(program.witness_chain(func.fid))
            for source in summary.unseeded:
                yield self.violation_at(
                    module, source.lineno,
                    f"unseeded randomness {source.api} on hot path {chain}; "
                    "inject a stream from repro.utils.derive_rng",
                )
            for escape in summary.set_escapes:
                yield self.violation_at(
                    module, escape.lineno,
                    f"set iteration order escapes on hot path {chain}: {escape.detail}",
                )


# --------------------------------------------------------------------------- R008


class RNGStreamRule(Rule):
    """R008: RNG streams are derived, tagged, and never shared across modules.

    ``repro.utils.derive_rng(seed, *names)`` is the only sanctioned stream
    factory: it hashes the name path into the seed so every stream is
    independent and reproducible from config alone.  This rule flags, inside
    ``rng_scope_prefixes`` (the factory module itself is exempt):

    * direct ``numpy.random.default_rng`` / ``Generator`` / ``RandomState``
      construction — a parallel seeding convention that silently diverges;
    * module-level stream globals (``RNG = derive_rng(...)`` at top level)
      — importable shared state, the cross-module-sharing hazard;
    * two ``derive_rng`` call sites in one module with the *same* static tag
      path — both streams replay identical draws (tags with dynamic
      components are exempt: distinctness is established at runtime);
    * loops whose trip count is drawn from one stream while the body draws
      from another — the draw count of stream B then depends on stream A's
      values, the seeded-parallelism equivalent of a data race.
    """

    code = "R008"
    name = "rng-stream-discipline"
    description = "Generators must come from derive_rng with distinct static tags"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        program = context.program
        if program is None or not context.config.in_rng_scope(module.relpath):
            return
        facts = program.module_facts.get(module.relpath)
        if facts is not None:
            for lineno, name in facts.rng_globals:
                yield self.violation_at(
                    module, lineno,
                    f"module-level RNG stream global '{name}' enables cross-module "
                    "stream sharing; derive streams where they are consumed",
                )
        tag_sites: Dict[Tuple[str, ...], List[Tuple[str, int]]] = {}
        for func in program.graph.functions_in(module.relpath):
            summary = program.summary_of(func.fid)
            if summary is None:
                continue
            for creation in summary.rng_creations:
                yield self.violation_at(
                    module, creation.lineno,
                    f"direct {creation.api} construction in {func.qualname}(); "
                    "derive streams via repro.utils.derive_rng",
                )
            for derive in summary.derive_calls:
                if derive.static_tags:
                    tag_sites.setdefault(derive.static_tags, []).append(
                        (func.qualname, derive.lineno)
                    )
            for hazard in summary.cross_streams:
                yield self.violation_at(
                    module, hazard.lineno,
                    f"loop trip count drawn from stream '{hazard.trip_rng}' while "
                    f"the body draws from '{hazard.body_rng}' in {func.qualname}(); "
                    "draw the count and the body from the same stream or "
                    "pre-materialize the draws",
                )
        for tags, sites in sorted(tag_sites.items()):
            if len(sites) < 2:
                continue
            joined = ".".join(tags)
            for qualname, lineno in sites[1:]:
                yield self.violation_at(
                    module, lineno,
                    f"derive_rng tag '{joined}' in {qualname}() duplicates an "
                    f"earlier stream in {sites[0][0]}(); identical tags replay "
                    "identical draws — give each stream a distinct name path",
                )


# --------------------------------------------------------------------------- R009


class LedgerTagRule(Rule):
    """R009: dotted ledger tags follow the stage grammar and are read back.

    ``semopt/executor.py`` established the structured tag namespace
    ``<prefix>.s<N>.<kind>`` whose per-stage deltas must sum to the run
    total (the conservation property tests pin down).  A literal dotted tag
    that doesn't parse under that grammar, or is charged but never read
    anywhere in the repo, is silent accounting drift: the charge lands in
    ``by_tag`` and no report ever surfaces it.  Flat (dot-free) tags are
    the legacy namespace (``"sft-gen"``, ``"rag"``, ...) and stay exempt;
    f-string tags are the sanctioned dynamic form and are checked at the
    grammar level by the executor itself.
    """

    code = "R009"
    name = "ledger-tag-conservation"
    description = "dotted literal ledger tags must match <prefix>.sN.<kind> and be read"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        program = context.program
        if program is None or not context.config.in_ledger_scope(module.relpath):
            return
        facts = program.module_facts.get(module.relpath)
        if facts is None or not facts.charge_tags:
            return
        kinds = "|".join(re.escape(kind) for kind in context.config.ledger_stage_kinds)
        grammar = re.compile(rf"^[a-z][a-z0-9_-]*(\.[a-z0-9_-]+)*\.s\d+\.({kinds})$")
        all_reads: Set[str] = set()
        for other in program.module_facts.values():
            all_reads |= other.read_literals
        for charge in facts.charge_tags:
            tag = charge.literal
            if tag is None or "." not in tag:
                continue
            if not grammar.match(tag):
                yield self.violation_at(
                    module, charge.lineno,
                    f"ledger tag '{tag}' does not match the registered "
                    "<prefix>.sN.<kind> grammar "
                    f"(kinds: {', '.join(context.config.ledger_stage_kinds)})",
                )
            elif tag not in all_reads:
                yield self.violation_at(
                    module, charge.lineno,
                    f"ledger tag '{tag}' is charged but never read anywhere; "
                    "unread charges are silent accounting drift",
                )


# --------------------------------------------------------------------------- R010


class HotLoopAllocRule(Rule):
    """R010: per-event while loops don't allocate, one call level deep.

    The serving DES processes millions of events through the while loops of
    ``ServingEngine.run/step`` and the fleet drivers; an array constructor
    or ``np.concatenate`` in that loop (or in a function it calls per
    event) turns O(1) event handling into O(n) — the regression class the
    PR 1/PR 5 perf work exists to prevent.  Direct loop bodies are checked
    for numpy constructors *and* ``list()/dict()/set()`` calls; direct
    callees (one level deep) are checked for numpy allocations only.
    """

    code = "R010"
    name = "hot-loop-allocation"
    description = "no array/dict constructors in per-event while loops (depth 1)"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        program = context.program
        if program is None:
            return
        hot = [
            fid
            for fid in context.config.hot_loop_functions
            if fid in program.graph.functions
        ]
        seen: Set[Tuple[int, str]] = set()
        for fid in hot:
            func = program.graph.functions[fid]
            summary = program.summary_of(fid)
            if summary is None:
                continue
            if func.relpath == module.relpath:
                for alloc in summary.allocs:
                    if not alloc.in_while:
                        continue
                    key = (alloc.lineno, alloc.label)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.violation_at(
                        module, alloc.lineno,
                        f"{alloc.label}() allocation inside the per-event while "
                        f"loop of {func.qualname}(); hoist it or reuse a buffer",
                    )
            for edge in program.graph.callees(fid):
                if edge.lineno not in summary.while_call_linenos:
                    continue
                callee = program.graph.functions[edge.callee]
                if callee.relpath != module.relpath or callee.fid in hot:
                    continue
                callee_summary = program.summary_of(callee.fid)
                if callee_summary is None:
                    continue
                for alloc in callee_summary.allocs:
                    if not alloc.label.startswith("numpy."):
                        continue
                    key = (alloc.lineno, alloc.label)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.violation_at(
                        module, alloc.lineno,
                        f"{alloc.label}() in {callee.qualname}(), called per event "
                        f"from the while loop of {func.qualname}(); hoist it out "
                        "of the event path",
                    )


# --------------------------------------------------------------------------- R011


def _contains_method_call(node: ast.AST, methods: FrozenSet[str]) -> bool:
    for inner in iter_own_nodes(node):
        if (
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr in methods
        ):
            return True
    return False


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The non-body expressions of a compound statement (test/iter/items)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    return []


class ResourceLeakRule(Rule):
    """R011: acquired resources are released on *every* exit path.

    KV blocks (``admit``/``release``) and prefix pins
    (``register_prefix``/``drop_prefix``) are refcounted by the paged
    allocators; a path that acquires and then returns, breaks, raises, or
    calls a may-raise function without a protecting ``try/finally`` leaks
    the refcount — exactly the bug class the fault-injection re-queue and
    retry paths of PR 3/PR 5 made easy to write.

    Functions that acquire but never release locally *transfer ownership*
    (the allocator or engine state tracks the handle) and are exempt; the
    path analysis runs only where acquire and release both appear locally,
    i.e. where this function's own control flow is the resource's owner.
    ``may_raise`` is the interprocedural fixpoint from the call graph, so
    an exception path three calls deep still counts.
    """

    code = "R011"
    name = "resource-leak"
    description = "locally-owned acquire/release pairs must release on all exits"

    def check(self, module: "ModuleInfo", context: RuleContext) -> Iterator[Violation]:
        program = context.program
        if program is None or not context.config.in_resource_scope(module.relpath):
            return
        for func in program.graph.functions_in(module.relpath):
            summary = program.summary_of(func.fid)
            if summary is None:
                continue
            for name, acquire_methods, release_methods in context.config.resource_protocols:
                acquires = [op for op in summary.acquires if op.protocol == name]
                releases = [op for op in summary.releases if op.protocol == name]
                if not acquires or not releases:
                    # Acquire-only transfers ownership; release-only is the
                    # owning side of someone else's transfer.
                    continue
                for lineno, reason in _find_leaks(
                    func.node,
                    func.fid,
                    frozenset(acquire_methods),
                    frozenset(release_methods),
                    program,
                ):
                    yield self.violation_at(
                        module, lineno,
                        f"{name} may leak in {func.qualname}(): {reason}",
                    )


def _find_leaks(
    func_node: ast.AST,
    fid: str,
    acquire_methods: FrozenSet[str],
    release_methods: FrozenSet[str],
    program: "Program",
) -> List[Tuple[int, str]]:
    """Structured may-leak walk over one function's statement tree.

    Tracks a single ``held`` bit through the statement sequence: set by any
    statement containing an acquire call, cleared by any containing a
    release.  While held, early exits (return/break/continue/raise) and
    calls into may-raise repo functions are leaks unless a ``finally`` (or
    a releasing except handler, for the raise case) protects them.
    """
    leaks: List[Tuple[int, str]] = []
    edges = program.graph.callees(fid)
    may_raise = program.may_raise

    def raising_callee(stmt: ast.stmt) -> Optional[str]:
        start = stmt.lineno
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for edge in edges:
            if start <= edge.lineno <= end and edge.callee in may_raise:
                target = program.graph.functions.get(edge.callee)
                return target.qualname if target else edge.callee
        return None

    def seq_releases(seq: List[ast.stmt]) -> bool:
        return any(_contains_method_call(stmt, release_methods) for stmt in seq)

    def process(seq: List[ast.stmt], held: bool, protected: bool) -> bool:
        for stmt in seq:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Try):
                finally_releases = seq_releases(stmt.finalbody)
                handler_releases = any(seq_releases(h.body) for h in stmt.handlers)
                if finally_releases:
                    # Every exit of the try (fall-through, return, raise)
                    # runs the finally; the resource cannot escape held.
                    held = False
                    continue
                held = process(stmt.body, held, protected or handler_releases)
                for handler in stmt.handlers:
                    process(handler.body, held, protected)
                held = process(stmt.orelse, held, protected)
                process(stmt.finalbody, held, protected)
                continue
            headers = _header_exprs(stmt)
            header_acquires = any(
                _contains_method_call(h, acquire_methods) for h in headers
            )
            header_releases = any(
                _contains_method_call(h, release_methods) for h in headers
            )
            if header_releases:
                held = False
            if not held:
                if isinstance(stmt, ast.If):
                    held = process(stmt.body, header_acquires, protected) or process(
                        stmt.orelse, header_acquires, protected
                    )
                elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                    held = process(stmt.body, header_acquires, protected)
                    held = process(stmt.orelse, held, protected)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    held = process(stmt.body, header_acquires, protected)
                elif _contains_method_call(stmt, acquire_methods) and not (
                    _contains_method_call(stmt, release_methods)
                ):
                    held = True
                continue
            # ---- held ----------------------------------------------------
            if not isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.With, ast.AsyncWith)) and _contains_method_call(stmt, release_methods):
                held = False
                continue
            if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                kind = type(stmt).__name__.lower()
                leaks.append(
                    (stmt.lineno, f"{kind} on a path still holding the resource")
                )
                continue
            if isinstance(stmt, ast.Raise):
                leaks.append(
                    (stmt.lineno, "raises on a path still holding the resource")
                )
                continue
            if isinstance(stmt, ast.If):
                held = process(stmt.body, True, protected) or process(
                    stmt.orelse, True, protected
                )
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                held = process(stmt.body, True, protected)
                held = process(stmt.orelse, held, protected)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                held = process(stmt.body, True, protected)
                continue
            if not protected:
                callee = raising_callee(stmt)
                if callee is not None:
                    leaks.append(
                        (
                            stmt.lineno,
                            f"calls {callee}() which may raise while holding the "
                            "resource; release in a try/finally",
                        )
                    )
        return held

    body = getattr(func_node, "body", [])
    if process(list(body), False, False):
        leaks.append(
            (
                getattr(func_node, "lineno", 1),
                "a path reaches function exit still holding the resource",
            )
        )
    return leaks


ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    ExceptionTaxonomyRule(),
    DtypeDisciplineRule(),
    MutableDefaultRule(),
    PublicApiAnnotationRule(),
    PerfMarkerRule(),
    DeterminismTaintRule(),
    RNGStreamRule(),
    LedgerTagRule(),
    HotLoopAllocRule(),
    ResourceLeakRule(),
)
