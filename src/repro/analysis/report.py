"""Violation records, severities, and ``file:line: CODE message`` rendering."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


class Severity(enum.Enum):
    """How strongly a finding gates the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Violation:
    """A single finding, addressable by file/line and stable fingerprint."""

    path: str  # repo-relative posix path
    line: int
    code: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching.

        Line numbers drift under unrelated edits, so the baseline keys on
        ``path::code::message`` (with a per-fingerprint count handling
        repeated identical findings in one file).
        """
        return f"{self.path}::{self.code}::{self.message}"

    def format(self) -> str:
        """Render as ``file:line: CODE [severity] message``."""
        return f"{self.path}:{self.line}: {self.code} [{self.severity}] {self.message}"


def count_fingerprints(violations: Sequence[Violation]) -> Dict[str, int]:
    """Map fingerprint -> number of occurrences across ``violations``."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.fingerprint] = counts.get(violation.fingerprint, 0) + 1
    return counts


def format_report(
    violations: Sequence[Violation],
    *,
    max_lines: int = 0,
) -> str:
    """Render violations sorted by location, one per line.

    ``max_lines`` > 0 truncates the listing with an elision note so CI logs
    stay readable when a rule first lands on a legacy codebase.
    """
    ordered = sorted(violations)
    lines: List[str] = [violation.format() for violation in ordered]
    if max_lines and len(lines) > max_lines:
        hidden = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... and {hidden} more"]
    return "\n".join(lines)


def summarize(violations: Sequence[Violation]) -> str:
    """One-line per-rule tally, e.g. ``R002=3 R005=12 (15 total)``."""
    per_code: Dict[str, int] = {}
    for violation in violations:
        per_code[violation.code] = per_code.get(violation.code, 0) + 1
    parts: Tuple[str, ...] = tuple(f"{code}={per_code[code]}" for code in sorted(per_code))
    return " ".join(parts) + f" ({len(violations)} total)" if parts else "(0 total)"
