"""Violation records, severities, and ``file:line: CODE message`` rendering.

Besides the human ``text`` format, two machine formats back
``scripts/lint.py --format``: stable sorted JSON (tooling) and GitHub
Actions workflow commands (inline PR annotations when ``CI=1``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple


class Severity(enum.Enum):
    """How strongly a finding gates the build."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Violation:
    """A single finding, addressable by file/line and stable fingerprint."""

    path: str  # repo-relative posix path
    line: int
    code: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used for baseline matching.

        Line numbers drift under unrelated edits, so the baseline keys on
        ``path::code::message`` (with a per-fingerprint count handling
        repeated identical findings in one file).
        """
        return f"{self.path}::{self.code}::{self.message}"

    def format(self) -> str:
        """Render as ``file:line: CODE [severity] message``."""
        return f"{self.path}:{self.line}: {self.code} [{self.severity}] {self.message}"


def count_fingerprints(violations: Sequence[Violation]) -> Dict[str, int]:
    """Map fingerprint -> number of occurrences across ``violations``."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.fingerprint] = counts.get(violation.fingerprint, 0) + 1
    return counts


def format_report(
    violations: Sequence[Violation],
    *,
    max_lines: int = 0,
) -> str:
    """Render violations sorted by location, one per line.

    ``max_lines`` > 0 truncates the listing with an elision note so CI logs
    stay readable when a rule first lands on a legacy codebase.
    """
    ordered = sorted(violations)
    lines: List[str] = [violation.format() for violation in ordered]
    if max_lines and len(lines) > max_lines:
        hidden = len(lines) - max_lines
        lines = lines[:max_lines] + [f"... and {hidden} more"]
    return "\n".join(lines)


def _violation_payload(violation: Violation) -> Dict[str, object]:
    return {
        "path": violation.path,
        "line": violation.line,
        "code": violation.code,
        "severity": str(violation.severity),
        "message": violation.message,
        "fingerprint": violation.fingerprint,
    }


def format_json(
    *,
    new: Sequence[Violation],
    baselined: Sequence[Violation],
    stale: Mapping[str, int],
    files_checked: int,
) -> str:
    """Stable machine-readable report: sorted keys, sorted violations."""
    payload = {
        "files_checked": files_checked,
        "ok": not new,
        "new": [_violation_payload(v) for v in sorted(new)],
        "baselined": [_violation_payload(v) for v in sorted(baselined)],
        "stale": {key: stale[key] for key in sorted(stale)},
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _github_escape(text: str) -> str:
    """Escape per GitHub's workflow-command rules (%, CR, LF in messages)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def format_github(violations: Sequence[Violation]) -> str:
    """Render findings as GitHub Actions annotations, one per line.

    ``::error file=src/x.py,line=3,title=R007::message`` renders inline on
    the PR diff; warnings map to ``::warning``.
    """
    lines: List[str] = []
    for violation in sorted(violations):
        level = "error" if violation.severity is Severity.ERROR else "warning"
        lines.append(
            f"::{level} file={_github_escape(violation.path)},"
            f"line={violation.line},title={violation.code}::"
            f"{_github_escape(violation.message)}"
        )
    return "\n".join(lines)


def summarize(violations: Sequence[Violation]) -> str:
    """One-line per-rule tally, e.g. ``R002=3 R005=12 (15 total)``."""
    per_code: Dict[str, int] = {}
    for violation in violations:
        per_code[violation.code] = per_code.get(violation.code, 0) + 1
    parts: Tuple[str, ...] = tuple(f"{code}={per_code[code]}" for code in sorted(per_code))
    return " ".join(parts) + f" ({len(violations)} total)" if parts else "(0 total)"
