"""Lint driver: file collection, parsing, repo context, and rule dispatch.

The driver owns everything that needs a repository view rather than a single
module: collecting files, parsing them once, extracting the exception
taxonomy from ``repro/errors.py``, resolving ``__init__.py`` re-export
chains for the public-API rule, and applying inline suppressions to the
raw findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .config import LintConfig
from .dataflow import build_program
from .report import Severity, Violation
from .rules import ALL_RULES, Rule, RuleContext, collect_import_aliases
from .suppress import scan_suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache", ".ruff_cache"}


@dataclass
class ModuleInfo:
    """One parsed source file, addressed by repo-relative posix path."""

    relpath: str
    source: str
    tree: ast.Module
    _aliases: Optional[Dict[str, str]] = field(default=None, repr=False)

    @property
    def aliases(self) -> Dict[str, str]:
        if self._aliases is None:
            self._aliases = collect_import_aliases(self.tree)
        return self._aliases


@dataclass
class LintResult:
    """Everything a lint run produced, pre-sorted for stable output."""

    violations: List[Violation]
    files_checked: int

    @property
    def errors(self) -> List[Violation]:
        return [v for v in self.violations if v.severity is Severity.ERROR]


def collect_files(paths: Sequence[str], repo_root: Path) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = repo_root / path
        if path.is_file() and path.suffix == ".py":
            seen.add(path.resolve())
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    seen.add(candidate.resolve())
    return sorted(seen)


def _relpath(path: Path, repo_root: Path) -> str:
    try:
        return path.resolve().relative_to(repo_root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def collect_taxonomy(repo_root: Path, config: LintConfig) -> FrozenSet[str]:
    """Names of every class transitively derived from the taxonomy root.

    Plain ``Alias = SomeTaxonomyClass`` assignments count too, so deprecated
    aliases of renamed exception classes stay accepted by R002.
    """
    module_path = repo_root / config.taxonomy_module
    if not module_path.is_file():
        return frozenset()
    tree = ast.parse(module_path.read_text(encoding="utf-8"))
    bases: Dict[str, List[str]] = {}
    aliases: Dict[str, str] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            bases[node.name] = [
                base.id for base in node.bases if isinstance(base, ast.Name)
            ]
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases[target.id] = node.value.id
    taxonomy: Set[str] = {config.taxonomy_root}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in taxonomy and any(parent in taxonomy for parent in parents):
                taxonomy.add(name)
                changed = True
        for alias, target in aliases.items():
            if alias not in taxonomy and target in taxonomy:
                taxonomy.add(alias)
                changed = True
    return frozenset(taxonomy)


def _import_target(
    init_path: Path, node: ast.ImportFrom, repo_root: Path
) -> Optional[Path]:
    """Resolve a relative ``from .mod import name`` to a source file path."""
    if node.level == 0:
        return None  # absolute imports are third-party or self-package noise
    base = init_path.parent
    for _ in range(node.level - 1):
        base = base.parent
    if node.module:
        base = base.joinpath(*node.module.split("."))
    as_module = base.with_suffix(".py")
    if as_module.is_file():
        return as_module
    as_package = base / "__init__.py"
    if as_package.is_file():
        return as_package
    return None


def collect_exports(repo_root: Path, config: LintConfig) -> Dict[str, FrozenSet[str]]:
    """Map module relpath -> names that some ``__init__.py`` re-exports from it.

    Chains through intermediate package ``__init__.py`` files (``repro``
    re-exporting from ``repro.data`` which re-exports from ``data.world``)
    until the defining module is found.
    """
    api_root = repo_root / config.public_api_root
    if not api_root.is_dir():
        return {}
    trees: Dict[Path, ast.Module] = {}

    def tree_of(path: Path) -> Optional[ast.Module]:
        resolved = path.resolve()
        if resolved not in trees:
            try:
                trees[resolved] = ast.parse(resolved.read_text(encoding="utf-8"))
            except (OSError, SyntaxError):
                return None
        return trees[resolved]

    def defines(path: Path, name: str) -> bool:
        tree = tree_of(path)
        if tree is None:
            return False
        return any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and node.name == name
            for node in tree.body
        )

    def resolve(path: Path, name: str, depth: int = 0) -> Optional[Path]:
        """Find the file whose top level defines ``name``, chasing re-exports."""
        if depth > 8:
            return None
        if defines(path, name):
            return path
        tree = tree_of(path)
        if tree is None:
            return None
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom):
                continue
            for item in node.names:
                if (item.asname or item.name) != name:
                    continue
                target = _import_target(path, node, repo_root)
                if target is not None:
                    return resolve(target, item.name, depth + 1)
        return None

    exports: Dict[str, Set[str]] = {}
    for init_path in sorted(api_root.rglob("__init__.py")):
        tree = tree_of(init_path)
        if tree is None:
            continue
        for node in tree.body:
            if not isinstance(node, ast.ImportFrom) or node.level == 0:
                continue
            for item in node.names:
                if item.name == "*":
                    continue
                target = _import_target(init_path, node, repo_root)
                if target is None:
                    continue
                defining = resolve(target, item.name)
                if defining is None:
                    continue
                exports.setdefault(_relpath(defining, repo_root), set()).add(item.name)
    return {relpath: frozenset(names) for relpath, names in exports.items()}


def build_context(
    repo_root: Path,
    config: LintConfig,
    modules: Optional[Dict[str, ModuleInfo]] = None,
) -> RuleContext:
    """Compute the repo-wide facts every rule shares for one run.

    When ``modules`` is provided (the parsed file set of this run), the
    interprocedural :class:`~repro.analysis.dataflow.Program` — call graph,
    per-function summaries, reachability/may-raise fixpoints — is built over
    exactly those modules; narrowed runs simply see a smaller program.
    """
    program = None
    if modules:
        program = build_program(
            modules,
            entry_specs=config.hot_entry_points,
            protocols=tuple(
                (name, frozenset(acquire), frozenset(release))
                for name, acquire, release in config.resource_protocols
            ),
        )
    return RuleContext(
        config=config,
        taxonomy=collect_taxonomy(repo_root, config),
        exports=collect_exports(repo_root, config),
        program=program,
    )


def run_lint(
    paths: Sequence[str],
    *,
    config: Optional[LintConfig] = None,
    repo_root: Optional[Path] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> LintResult:
    """Lint ``paths`` and return suppression-filtered, sorted violations.

    Two passes: parse every file first (so the call graph spans the whole
    run), then dispatch rules per module against the shared context.
    """
    config = config or LintConfig()
    repo_root = (repo_root or Path.cwd()).resolve()
    active: Tuple[Rule, ...] = tuple(
        rule for rule in (rules if rules is not None else ALL_RULES)
        if rule.code in config.enabled
    )
    violations: List[Violation] = []
    files = collect_files(paths, repo_root)
    modules: Dict[str, ModuleInfo] = {}
    suppressions_by_path = {}
    for path in files:
        relpath = _relpath(path, repo_root)
        source = path.read_text(encoding="utf-8")
        suppressions = scan_suppressions(relpath, source)
        suppressions_by_path[relpath] = suppressions
        violations.extend(suppressions.problems)
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=relpath,
                    line=exc.lineno or 1,
                    code="R999",
                    message=f"file does not parse: {exc.msg}",
                    severity=Severity.ERROR,
                )
            )
            continue
        modules[relpath] = ModuleInfo(relpath=relpath, source=source, tree=tree)
    context = build_context(repo_root, config, modules)
    for relpath in sorted(modules):
        module = modules[relpath]
        suppressions = suppressions_by_path[relpath]
        for rule in active:
            for violation in rule.check(module, context):
                if not suppressions.is_suppressed(violation.code, violation.line):
                    violations.append(violation)
    return LintResult(violations=sorted(violations), files_checked=len(files))
