"""Configuration for repro-lint: rule scopes, allowlists, and path anchors.

Everything is expressed as repo-relative posix path prefixes so the checker
is independent of the working directory it is invoked from.  The defaults
encode this repository's invariants; tests construct narrower configs over
fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

ALL_RULE_CODES: Tuple[str, ...] = (
    "R001", "R002", "R003", "R004", "R005", "R006",
    "R007", "R008", "R009", "R010", "R011",
)


def _norm(path: str) -> str:
    return path.replace("\\", "/").strip("/")


@dataclass(frozen=True)
class LintConfig:
    """Scoping and allowlists for the repro-lint rules (R001–R011)."""

    # Which rules run at all (R000, the suppression meta-rule, always runs).
    enabled: FrozenSet[str] = field(default_factory=lambda: frozenset(ALL_RULE_CODES))

    # R001: simulator hot paths that must stay deterministic.  RNG must be an
    # injected, seeded Generator (see repro.utils.derive_rng); wall-clock and
    # global/unseeded random sources are banned under these prefixes.
    hot_path_prefixes: Tuple[str, ...] = (
        "src/repro/faults",
        "src/repro/inference",
        "src/repro/llm/embedding.py",
        "src/repro/prep/dedup.py",
        "src/repro/semopt",
        "src/repro/stream",
        "src/repro/training",
        "src/repro/vector",
    )

    # R002: the closed exception taxonomy.  The driver parses this module and
    # collects every class transitively derived from ``taxonomy_root``.
    taxonomy_module: str = "src/repro/errors.py"
    taxonomy_root: str = "ReproError"
    # Raises scoped to library code only (src/repro covers every subpackage,
    # including the fault-injection framework in src/repro/faults).
    taxonomy_prefixes: Tuple[str, ...] = ("src/repro",)
    # Abstract interface methods conventionally raise NotImplementedError.
    allowed_raises: FrozenSet[str] = field(default_factory=lambda: frozenset({"NotImplementedError"}))

    # R003: kernel code whose bitwise-parity guarantees depend on explicit
    # dtypes (see tests/test_vector_batch.py).
    dtype_prefixes: Tuple[str, ...] = (
        "src/repro/semopt",
        "src/repro/stream",
        "src/repro/vector",
    )
    dtype_files: Tuple[str, ...] = (
        "src/repro/inference/fleet.py",
        "src/repro/inference/kvcache.py",
        "src/repro/inference/pools.py",
        "src/repro/inference/router.py",
        "src/repro/llm/embedding.py",
        "src/repro/prep/dedup.py",
    )
    dtype_constructors: FrozenSet[str] = field(
        default_factory=lambda: frozenset({"array", "zeros", "empty", "ones", "full"})
    )

    # R005: packages whose ``__init__.py`` re-exports define the public API.
    public_api_root: str = "src/repro"

    # R006: perf tests live here and must never leak into tier-1.
    perf_prefixes: Tuple[str, ...] = ("benchmarks/perf",)
    perf_marker: str = "perf"

    # R007: hot entry points (``relpath::qualname``) whose transitive callees
    # must be free of unseeded randomness and order-escaping set iteration.
    hot_entry_points: Tuple[str, ...] = (
        "src/repro/inference/scheduler.py::ServingEngine.run",
        "src/repro/inference/scheduler.py::ServingEngine.step",
        "src/repro/inference/fleet.py::ClusterFleet.run",
        "src/repro/inference/fleet.py::EngineFleet.run",
        "src/repro/inference/pools.py::run_pool_fleet",
        "src/repro/semopt/executor.py::SemExecutor.run",
        "src/repro/prep/pipeline.py::PrepPipeline.run",
    )

    # R008: the one module allowed to construct numpy Generators directly;
    # everything else under ``rng_scope_prefixes`` must go through derive_rng.
    rng_factory_module: str = "src/repro/utils.py"
    rng_scope_prefixes: Tuple[str, ...] = ("src/repro",)

    # R009: ledger-tag conservation.  Dotted string-literal tags charged via
    # ``.charge(..., tag=...)`` must match ``<prefix>.sN.<kind>`` with a
    # registered stage kind, and must be read somewhere in the repo.  Flat
    # (dot-free) tags are the legacy namespace and stay exempt.
    ledger_scope_prefixes: Tuple[str, ...] = ("src/repro",)
    ledger_stage_kinds: Tuple[str, ...] = (
        "filter", "map", "join", "topk", "group_count",
    )

    # R010: per-event driver functions whose while-loops must stay
    # allocation-free (checked one call level deep for numpy allocations).
    hot_loop_functions: Tuple[str, ...] = (
        "src/repro/inference/scheduler.py::ServingEngine.run",
        "src/repro/inference/scheduler.py::ServingEngine.step",
        "src/repro/inference/fleet.py::ClusterFleet.run",
        "src/repro/inference/fleet.py::EngineFleet.run",
        "src/repro/inference/pools.py::run_pool_fleet",
    )

    # R011: resource protocols as (name, acquire methods, release methods).
    # Matching is by method name on any receiver — the allocator handles in
    # scheduler/fleet are deliberately duck-typed, so nominal typing is not
    # available to the analyzer.
    resource_protocols: Tuple[Tuple[str, Tuple[str, ...], Tuple[str, ...]], ...] = (
        ("kv-block", ("admit",), ("release",)),
        ("prefix-pin", ("register_prefix",), ("drop_prefix",)),
    )
    resource_scope_prefixes: Tuple[str, ...] = (
        "src/repro/inference",
        "src/repro/faults",
    )

    def is_hot_path(self, relpath: str) -> bool:
        return _starts_with_any(relpath, self.hot_path_prefixes)

    def in_taxonomy_scope(self, relpath: str) -> bool:
        return _starts_with_any(relpath, self.taxonomy_prefixes)

    def in_dtype_scope(self, relpath: str) -> bool:
        rel = _norm(relpath)
        return _starts_with_any(rel, self.dtype_prefixes) or rel in {
            _norm(f) for f in self.dtype_files
        }

    def in_perf_scope(self, relpath: str) -> bool:
        return _starts_with_any(relpath, self.perf_prefixes)

    def in_public_api_scope(self, relpath: str) -> bool:
        return _starts_with_any(relpath, (self.public_api_root,))

    def in_rng_scope(self, relpath: str) -> bool:
        rel = _norm(relpath)
        if rel == _norm(self.rng_factory_module):
            return False
        return _starts_with_any(rel, self.rng_scope_prefixes)

    def in_ledger_scope(self, relpath: str) -> bool:
        return _starts_with_any(relpath, self.ledger_scope_prefixes)

    def in_resource_scope(self, relpath: str) -> bool:
        return _starts_with_any(relpath, self.resource_scope_prefixes)


def _starts_with_any(relpath: str, prefixes: Tuple[str, ...]) -> bool:
    rel = _norm(relpath)
    for prefix in prefixes:
        norm = _norm(prefix)
        if rel == norm or rel.startswith(norm + "/"):
            return True
    return False
