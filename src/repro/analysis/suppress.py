"""Inline suppression comments: ``# repro-lint: disable=RXXX — justification``.

A suppression silences the named rule(s) on its own line; a comment-only line
suppresses the next code line instead, so both styles work::

    x = risky_call()  # repro-lint: disable=R001 — wall clock feeds a log label

    # repro-lint: disable=R002,R005 — third-party callback signature is fixed
    def handler(*args): ...

The justification after the rule list is **required**: a suppression without
one is itself reported (code R000) so silenced debt always carries a reason.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from typing import Dict, FrozenSet, List, Set, Tuple

from .report import Severity, Violation

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
    r"(?P<rest>.*)$"
)
# Separators accepted between the rule list and the justification text.
_JUSTIFICATION = re.compile(r"^[\s:—–-]*(?P<text>.*\S)?\s*$")


@dataclass
class SuppressionIndex:
    """Per-file map of line -> suppressed rule codes, plus malformed directives."""

    path: str
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    problems: List[Violation] = field(default_factory=list)

    def is_suppressed(self, code: str, line: int) -> bool:
        return code in self.by_line.get(line, frozenset())


def _comment_tokens(source: str) -> List[Tuple[int, str, bool]]:
    """Yield ``(line, comment_text, line_is_comment_only)`` for each comment.

    Falls back to a regex scan when the file does not tokenize (the driver
    reports the syntax error separately; suppressions still best-effort work).
    """
    out: List[Tuple[int, str, bool]] = []
    lines = source.splitlines()
    try:
        for tok in tokenize.generate_tokens(StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                row = tok.start[0]
                text_before = lines[row - 1][: tok.start[1]]
                out.append((row, tok.string, not text_before.strip()))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for idx, raw in enumerate(lines, start=1):
            pos = raw.find("#")
            if pos >= 0:
                out.append((idx, raw[pos:], not raw[:pos].strip()))
    return out


def _next_code_line(lines: List[str], comment_line: int) -> int:
    """First line after ``comment_line`` that holds code (skip blanks/comments)."""
    for idx in range(comment_line, len(lines)):
        stripped = lines[idx].strip()
        if stripped and not stripped.startswith("#"):
            return idx + 1  # 1-based
    return comment_line


def scan_suppressions(path: str, source: str) -> SuppressionIndex:
    """Parse every ``repro-lint: disable=`` directive in ``source``."""
    index = SuppressionIndex(path=path)
    lines = source.splitlines()
    for row, comment, comment_only in _comment_tokens(source):
        match = _DIRECTIVE.search(comment)
        if match is None:
            if "repro-lint" in comment:
                index.problems.append(
                    Violation(
                        path=path,
                        line=row,
                        code="R000",
                        message="malformed repro-lint directive "
                        "(expected '# repro-lint: disable=RXXX — justification')",
                        severity=Severity.ERROR,
                    )
                )
            continue
        codes = frozenset(part.strip() for part in match.group("codes").split(","))
        justification_match = _JUSTIFICATION.match(match.group("rest"))
        justification = (justification_match.group("text") or "") if justification_match else ""
        if not justification:
            index.problems.append(
                Violation(
                    path=path,
                    line=row,
                    code="R000",
                    message=f"suppression of {','.join(sorted(codes))} lacks a "
                    "justification (add '— why' after the rule list)",
                    severity=Severity.ERROR,
                )
            )
            continue
        target = _next_code_line(lines, row) if comment_only else row
        merged: Set[str] = set(index.by_line.get(target, frozenset()))
        merged.update(codes)
        index.by_line[target] = frozenset(merged)
    return index
