"""Per-function summaries and fixpoint propagation over the call graph.

The interprocedural rules (R007–R011) never re-walk ASTs during judgment:
this module extracts one :class:`FunctionSummary` per function (unseeded
randomness sources, RNG stream creations, set-order escapes, allocation
sites with loop context, resource acquire/release sites, direct raises)
plus one :class:`ModuleFacts` per file (ledger charge tags, tag-read
literals, module-level RNG globals), then :class:`Program` closes the
interprocedural facts over the :class:`~repro.analysis.callgraph.CallGraph`:

* **reachability** from configured hot entry points, with parent edges so
  a finding can print its witness call chain;
* **may_raise** — a function raises directly or calls something that may;
* **may_release** — per resource protocol, a function releases directly
  or transitively (feeds R011's ownership-transfer exemption).

Unresolved calls (third-party, dynamic dispatch we can't type) contribute
nothing to any fixpoint — the analysis under-approximates edges, so every
reported path is a real syntactic path through repo code.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionNode, build_callgraph
from .rules import iter_own_nodes, resolve_call_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .driver import ModuleInfo

# numpy legacy API backed by the hidden global RandomState (mirrors R001).
_NUMPY_GLOBAL: FrozenSet[str] = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "choice", "shuffle", "permutation", "normal", "uniform", "standard_normal",
        "binomial", "poisson", "beta", "gamma", "exponential", "bytes",
    }
)

_ALLOC_NUMPY: FrozenSet[str] = frozenset(
    {
        "array", "zeros", "empty", "ones", "full", "arange", "linspace",
        "concatenate", "vstack", "hstack", "stack", "column_stack",
        "zeros_like", "empty_like", "ones_like", "full_like",
    }
)
_ALLOC_BUILTINS: FrozenSet[str] = frozenset({"list", "dict", "set"})

#: (protocol name, acquire method names, release method names)
Protocol = Tuple[str, FrozenSet[str], FrozenSet[str]]


# ------------------------------------------------------------------ records


@dataclass(frozen=True)
class UnseededSource:
    lineno: int
    api: str  # e.g. "numpy.random.choice", "random.random", "default_rng()"


@dataclass(frozen=True)
class SetEscape:
    lineno: int
    detail: str


@dataclass(frozen=True)
class RNGCreation:
    lineno: int
    api: str
    seeded: bool


@dataclass(frozen=True)
class DeriveCall:
    lineno: int
    #: Static string tags among derive_rng's name args; None when any name
    #: arg is dynamic (per-key streams are distinct by construction).
    static_tags: Optional[Tuple[str, ...]]


@dataclass(frozen=True)
class AllocSite:
    lineno: int
    label: str  # "numpy.concatenate", "list", ...
    in_while: bool
    in_for: bool


@dataclass(frozen=True)
class ResourceOp:
    lineno: int
    protocol: str
    method: str
    receiver: str


@dataclass(frozen=True)
class CrossStreamLoop:
    lineno: int
    trip_rng: str
    body_rng: str


@dataclass
class FunctionSummary:
    """Everything the rules need to know about one function's own body."""

    fid: str
    unseeded: List[UnseededSource] = field(default_factory=list)
    set_escapes: List[SetEscape] = field(default_factory=list)
    rng_creations: List[RNGCreation] = field(default_factory=list)
    derive_calls: List[DeriveCall] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)
    acquires: List[ResourceOp] = field(default_factory=list)
    releases: List[ResourceOp] = field(default_factory=list)
    cross_streams: List[CrossStreamLoop] = field(default_factory=list)
    raises_directly: bool = False
    #: Line numbers of call expressions inside while-loops of the own body
    #: (lets R010 tell which callees execute per event, one level deep).
    while_call_linenos: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class ChargeTag:
    lineno: int
    literal: Optional[str]  # None for f-strings / variables (dynamic tags)


@dataclass
class ModuleFacts:
    """Module-granularity facts that don't belong to any one function."""

    relpath: str
    charge_tags: List[ChargeTag] = field(default_factory=list)
    read_literals: Set[str] = field(default_factory=set)
    #: Module-level ``NAME = derive_rng(...)/default_rng(...)`` assignments.
    rng_globals: List[Tuple[int, str]] = field(default_factory=list)


# --------------------------------------------------------------- AST helpers


def _loop_context(func_node: ast.AST) -> Dict[int, Tuple[bool, bool]]:
    """Map id(node) -> (inside a while, inside a for) within the own body."""
    context: Dict[int, Tuple[bool, bool]] = {}

    def visit(node: ast.AST, in_while: bool, in_for: bool) -> None:
        context[id(node)] = (in_while, in_for)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            child_while = in_while or isinstance(node, ast.While)
            child_for = in_for or isinstance(node, (ast.For, ast.AsyncFor))
            visit(child, child_while, child_for)

    visit(func_node, False, False)
    return context


def is_derive_call(node: ast.Call, aliases: Dict[str, str]) -> bool:
    dotted = resolve_call_name(node.func, aliases)
    if dotted is not None and (dotted == "derive_rng" or dotted.endswith(".derive_rng")):
        return True
    # Local helper named derive_rng (the factory module itself, fixtures).
    return isinstance(node.func, ast.Name) and node.func.id == "derive_rng"


def _derive_static_tags(node: ast.Call) -> Optional[Tuple[str, ...]]:
    """Static name tags of a derive_rng(seed, *names) call; None if dynamic."""
    tags: List[str] = []
    for arg in node.args[1:]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            tags.append(arg.value)
        else:
            return None
    return tuple(tags)


def _is_set_expr(node: ast.expr, set_locals: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Attribute) and node.attr == "keys":
        return False  # dict views are insertion-ordered on py>=3.7
    return False


def _receiver_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - pathological ASTs
        return "<expr>"


# ------------------------------------------------------------- summarization


def summarize_function(
    func: FunctionNode,
    aliases: Dict[str, str],
    protocols: Tuple[Protocol, ...],
) -> FunctionSummary:
    """Extract the per-function facts the interprocedural rules consume."""
    summary = FunctionSummary(fid=func.fid)
    loops = _loop_context(func.node)

    # Pass 1: local classification — RNG-typed locals, set-typed locals,
    # and variables assigned from a draw on some RNG stream.
    rng_locals: Set[str] = set()
    set_locals: Set[str] = set()
    draw_assigns: Dict[str, str] = {}  # var -> rng name it was drawn from
    args = func.node.args  # type: ignore[attr-defined]
    for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
        ann = arg.annotation
        ann_text = _receiver_text(ann) if ann is not None else ""
        if "Generator" in ann_text or arg.arg == "rng" or arg.arg.endswith("_rng"):
            rng_locals.add(arg.arg)
    # iter_own_nodes yields in traversal (stack) order, not source order, so
    # classify locals in two sub-passes: stream/set names first, then the
    # draw-assignments that reference them.
    own_assigns: List[Tuple[ast.Name, ast.expr]] = []
    for node in iter_own_nodes(func.node):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        own_assigns.append((target, node.value))
        value = node.value
        if isinstance(value, ast.Call):
            dotted = resolve_call_name(value.func, aliases)
            if is_derive_call(value, aliases) or (
                dotted is not None and dotted.endswith("default_rng")
            ):
                rng_locals.add(target.id)
                continue
        if _is_set_expr(value, set_locals=set()):
            set_locals.add(target.id)
    for target, value in own_assigns:
        if target.id in rng_locals or target.id in set_locals:
            continue
        for inner in ast.walk(value):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and isinstance(inner.func.value, ast.Name)
                and inner.func.value.id in rng_locals
            ):
                draw_assigns[target.id] = inner.func.value.id
                break

    # Pass 2: site extraction.
    for node in iter_own_nodes(func.node):
        if isinstance(node, ast.Raise):
            summary.raises_directly = True
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self_escape = _set_iteration_escape(node, set_locals)
            if self_escape is not None:
                summary.set_escapes.append(self_escape)
            cross = _cross_stream_hazard(node, rng_locals, draw_assigns)
            if cross is not None:
                summary.cross_streams.append(cross)
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_locals):
                    summary.set_escapes.append(
                        SetEscape(
                            lineno=node.lineno,
                            detail="comprehension iterates a set; wrap in sorted()",
                        )
                    )
        if not isinstance(node, ast.Call):
            continue
        in_while, in_for = loops.get(id(node), (False, False))
        if in_while:
            summary.while_call_linenos.add(node.lineno)
        dotted = resolve_call_name(node.func, aliases)
        # ---- randomness sources -------------------------------------
        if is_derive_call(node, aliases):
            summary.derive_calls.append(
                DeriveCall(lineno=node.lineno, static_tags=_derive_static_tags(node))
            )
        elif dotted is not None:
            if dotted.startswith("random.") and dotted.count(".") == 1:
                summary.unseeded.append(UnseededSource(node.lineno, dotted))
            elif dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random."):]
                if tail in _NUMPY_GLOBAL:
                    summary.unseeded.append(
                        UnseededSource(node.lineno, f"numpy.random.{tail}")
                    )
                elif tail == "default_rng":
                    seeded = bool(node.args or node.keywords)
                    if not seeded:
                        summary.unseeded.append(
                            UnseededSource(node.lineno, "default_rng()")
                        )
                    summary.rng_creations.append(
                        RNGCreation(node.lineno, "numpy.random.default_rng", seeded)
                    )
                elif tail in {"Generator", "RandomState"}:
                    summary.rng_creations.append(
                        RNGCreation(node.lineno, f"numpy.random.{tail}", True)
                    )
        # ---- list(<set>) / tuple(<set>) ------------------------------
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in {"list", "tuple"}
            and len(node.args) == 1
            and _is_set_expr(node.args[0], set_locals)
        ):
            summary.set_escapes.append(
                SetEscape(
                    lineno=node.lineno,
                    detail=f"{node.func.id}() materializes a set in iteration "
                    "order; wrap in sorted()",
                )
            )
        # ---- allocations --------------------------------------------
        if dotted is not None and dotted.startswith("numpy."):
            tail = dotted[len("numpy."):]
            if tail in _ALLOC_NUMPY:
                summary.allocs.append(
                    AllocSite(node.lineno, f"numpy.{tail}", in_while, in_for)
                )
        elif isinstance(node.func, ast.Name) and node.func.id in _ALLOC_BUILTINS:
            summary.allocs.append(
                AllocSite(node.lineno, node.func.id, in_while, in_for)
            )
        # ---- resource protocol operations ---------------------------
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            receiver = _receiver_text(node.func.value)
            for name, acquire_methods, release_methods in protocols:
                if method in acquire_methods:
                    summary.acquires.append(
                        ResourceOp(node.lineno, name, method, receiver)
                    )
                if method in release_methods:
                    summary.releases.append(
                        ResourceOp(node.lineno, name, method, receiver)
                    )
    return summary


def _set_iteration_escape(
    loop: "ast.For | ast.AsyncFor", set_locals: Set[str]
) -> Optional[SetEscape]:
    if not _is_set_expr(loop.iter, set_locals):
        return None
    return SetEscape(
        lineno=loop.lineno,
        detail="for-loop iterates a set in hash order; wrap the iterable "
        "in sorted()",
    )


def _cross_stream_hazard(
    loop: "ast.For | ast.AsyncFor",
    rng_locals: Set[str],
    draw_assigns: Dict[str, str],
) -> Optional[CrossStreamLoop]:
    """``for _ in range(n)`` where n came from stream A and the body draws B.

    The draw *count* of stream B then depends on stream A's values — reseed
    one stream and the other silently shifts, the seeded-parallelism
    equivalent of a data race.
    """
    iter_expr = loop.iter
    if not (
        isinstance(iter_expr, ast.Call)
        and isinstance(iter_expr.func, ast.Name)
        and iter_expr.func.id == "range"
    ):
        return None
    trip_rng: Optional[str] = None
    for arg in iter_expr.args:
        for inner in ast.walk(arg):
            if isinstance(inner, ast.Name) and inner.id in draw_assigns:
                trip_rng = draw_assigns[inner.id]
                break
        if trip_rng is not None:
            break
    if trip_rng is None:
        return None
    for node in ast.walk(loop):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in rng_locals
            and node.func.value.id != trip_rng
        ):
            return CrossStreamLoop(
                lineno=loop.lineno, trip_rng=trip_rng, body_rng=node.func.value.id
            )
    return None


_READ_METHODS = frozenset({"get", "pop", "startswith"})


def collect_module_facts(module: "ModuleInfo") -> ModuleFacts:
    """Charge sites, tag-read literals, and module-level RNG globals."""
    facts = ModuleFacts(relpath=module.relpath)
    aliases = module.aliases
    charge_value_ids: Set[int] = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "charge"
        ):
            for kw in node.keywords:
                if kw.arg != "tag":
                    continue
                charge_value_ids.add(id(kw.value))
                literal: Optional[str] = None
                if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                    literal = kw.value.value
                facts.charge_tags.append(ChargeTag(node.lineno, literal))
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Subscript):
            s = node.slice
            if isinstance(s, ast.Constant) and isinstance(s.value, str):
                facts.read_literals.add(s.value)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _READ_METHODS:
                for arg in node.args:
                    if (
                        isinstance(arg, ast.Constant)
                        and isinstance(arg.value, str)
                        and id(arg) not in charge_value_ids
                    ):
                        facts.read_literals.add(arg.value)
        elif isinstance(node, ast.Compare):
            for operand in [node.left] + list(node.comparators):
                if isinstance(operand, ast.Constant) and isinstance(operand.value, str):
                    facts.read_literals.add(operand.value)
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if isinstance(value, ast.Call):
            dotted = resolve_call_name(value.func, aliases)
            if is_derive_call(value, aliases) or (
                dotted is not None and dotted.endswith("default_rng")
            ):
                facts.rng_globals.append((node.lineno, target.id))
    return facts


# ------------------------------------------------------------------- Program


class Program:
    """The whole-repo view: call graph + summaries + interprocedural facts."""

    def __init__(
        self,
        graph: CallGraph,
        summaries: Dict[str, FunctionSummary],
        module_facts: Dict[str, ModuleFacts],
        entry_fids: List[str],
    ) -> None:
        self.graph = graph
        self.summaries = summaries
        self.module_facts = module_facts
        self.entry_fids = entry_fids
        #: fid -> parent edge on the BFS tree from the entries (None = entry).
        self.reachable: Dict[str, Optional[object]] = {}
        self.may_raise: Set[str] = set()
        self.may_release: Dict[str, Set[str]] = {}
        self._compute_reachability()
        self._compute_may_raise()

    # --------------------------------------------------------------- builds
    def _compute_reachability(self) -> None:
        queue = deque()
        for fid in self.entry_fids:
            if fid in self.graph.functions and fid not in self.reachable:
                self.reachable[fid] = None
                queue.append(fid)
        while queue:
            current = queue.popleft()
            for edge in self.graph.callees(current):
                if edge.callee not in self.reachable:
                    self.reachable[edge.callee] = edge
                    queue.append(edge.callee)

    def _compute_may_raise(self) -> None:
        raising = {
            fid for fid, summary in self.summaries.items() if summary.raises_directly
        }
        changed = True
        while changed:
            changed = False
            for fid in self.graph.functions:
                if fid in raising:
                    continue
                if any(edge.callee in raising for edge in self.graph.callees(fid)):
                    raising.add(fid)
                    changed = True
        self.may_raise = raising

    def compute_may_release(self, protocol: str) -> Set[str]:
        """Functions that release ``protocol`` directly or transitively."""
        if protocol in self.may_release:
            return self.may_release[protocol]
        releasing = {
            fid
            for fid, summary in self.summaries.items()
            if any(op.protocol == protocol for op in summary.releases)
        }
        changed = True
        while changed:
            changed = False
            for fid in self.graph.functions:
                if fid in releasing:
                    continue
                if any(edge.callee in releasing for edge in self.graph.callees(fid)):
                    releasing.add(fid)
                    changed = True
        self.may_release[protocol] = releasing
        return releasing

    # ---------------------------------------------------------------- query
    def is_entry_reachable(self, fid: str) -> bool:
        return fid in self.reachable

    def witness_chain(self, fid: str) -> List[str]:
        """Human-readable call chain from an entry point down to ``fid``."""
        chain: List[str] = []
        current: Optional[str] = fid
        guard = 0
        while current is not None and guard < 64:
            guard += 1
            func = self.graph.functions.get(current)
            chain.append(func.qualname if func else current)
            edge = self.reachable.get(current)
            current = edge.caller if edge is not None else None  # type: ignore[attr-defined]
        return list(reversed(chain))

    def summary_of(self, fid: str) -> Optional[FunctionSummary]:
        return self.summaries.get(fid)


def resolve_entry_fids(
    graph: CallGraph, entry_specs: Tuple[str, ...]
) -> List[str]:
    """Resolve ``relpath::qualname`` entry specs against the call graph.

    Missing entries are skipped silently: a narrowed lint run (or a fixture
    repo) simply has fewer hot roots.
    """
    return [spec for spec in entry_specs if spec in graph.functions]


def build_program(
    modules: Dict[str, "ModuleInfo"],
    *,
    entry_specs: Tuple[str, ...] = (),
    protocols: Tuple[Protocol, ...] = (),
) -> Program:
    """Parse-free program construction from already-parsed modules."""
    graph = build_callgraph(modules)
    summaries: Dict[str, FunctionSummary] = {}
    for fid, func in graph.functions.items():
        module = modules[func.relpath]
        summaries[fid] = summarize_function(func, module.aliases, protocols)
    module_facts = {
        relpath: collect_module_facts(module) for relpath, module in modules.items()
    }
    entry_fids = resolve_entry_fids(graph, entry_specs)
    return Program(graph, summaries, module_facts, entry_fids)
