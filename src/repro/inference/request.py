"""Request model and SLOs for the serving simulator (§2.3.2 LLM Inference).

A request arrives with a prompt length and a target output length; the
simulator fills in its timeline (admission, first token, per-token times).
The paper's two SLO metrics are first-class: **TTFT** (time to first
token, the prefill-side SLO) and **TBT** (time between tokens, the
decode-side SLO).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import WorkloadError


@dataclass
class Request:
    """One inference request and its measured timeline."""

    request_id: str
    arrival_s: float
    prompt_tokens: int
    output_tokens: int
    conversation_id: Optional[str] = None
    turn_index: int = 0
    prefix_id: Optional[str] = None
    prefix_tokens: int = 0

    # Filled by the simulator:
    admitted_s: Optional[float] = None
    first_token_s: Optional[float] = None
    finished_s: Optional[float] = None
    token_times: List[float] = field(default_factory=list)
    preemptions: int = 0
    prefix_hit: bool = False
    # Fault-recovery accounting: ``retries`` counts full restarts forced by
    # injected faults (lane crash, failed KV ship); ``rejected`` marks a
    # request shed by SLO-aware admission control instead of served.
    retries: int = 0
    rejected: bool = False
    # Disaggregated-serving timeline (filled by DisaggEngineFleet):
    # ``handoff_s`` is when the prompt KV landed on the decode side (it
    # doubles as the request's effective arrival time at the decode
    # engine), ``kv_shipped`` whether the ship succeeded (False = the
    # decode engine re-prefills from scratch), and ``decode_admitted_s``
    # when the decode engine actually admitted the request.
    handoff_s: Optional[float] = None
    kv_shipped: bool = False
    decode_admitted_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise WorkloadError("prompt and output token counts must be positive")
        if self.prefix_tokens > self.prompt_tokens:
            raise WorkloadError("prefix_tokens cannot exceed prompt_tokens")

    # ------------------------------------------------------------ metrics
    @property
    def done(self) -> bool:
        return self.finished_s is not None

    @property
    def ttft(self) -> Optional[float]:
        if self.first_token_s is None:
            return None
        return self.first_token_s - self.arrival_s

    @property
    def tbt_values(self) -> List[float]:
        """Gaps between consecutive output tokens."""
        times = self.token_times
        return [times[i] - times[i - 1] for i in range(1, len(times))]

    @property
    def mean_tbt(self) -> Optional[float]:
        gaps = self.tbt_values
        return sum(gaps) / len(gaps) if gaps else None

    @property
    def max_tbt(self) -> Optional[float]:
        gaps = self.tbt_values
        return max(gaps) if gaps else None

    @property
    def latency(self) -> Optional[float]:
        if self.finished_s is None:
            return None
        return self.finished_s - self.arrival_s

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class SLO:
    """Service-level objectives on the two phase metrics."""

    ttft_s: float = 1.0
    tbt_s: float = 0.1

    def attained(self, request: Request) -> bool:
        """Did the request meet both its TTFT and worst-case TBT targets?"""
        if not request.done or request.ttft is None:
            return False
        if request.ttft > self.ttft_s:
            return False
        worst = request.max_tbt
        return worst is None or worst <= self.tbt_s
