"""KV-cache memory management: reservation baseline vs paged blocks (vLLM).

Two allocators with one interface (``can_admit`` / ``admit`` / ``append`` /
``release``):

* :class:`ReservedAllocator` — the pre-vLLM baseline the paper describes:
  every request reserves ``max_seq_len`` worth of KV up front, wasting the
  unused tail (internal fragmentation) and capping batch size;
* :class:`PagedAllocator` — vLLM's PagedAttention: fixed-size blocks
  allocated on demand, with **reference-counted sharing** so a common
  prefix's blocks are stored once across requests (the shared-prefix
  optimization).

Both report utilization and waste so E2 can chart the memory story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CacheError


@dataclass
class KVStats:
    """Allocator accounting (token-slot granularity)."""

    capacity_tokens: int
    reserved_tokens: int = 0  # slots claimed
    used_tokens: int = 0  # slots actually holding KV entries
    peak_reserved: int = 0
    shared_saved_tokens: int = 0  # slots avoided via prefix sharing

    sum_reserved: float = 0.0
    sum_used: float = 0.0
    samples: int = 0

    @property
    def waste_fraction(self) -> float:
        """Claimed-but-unused fraction of claimed slots (current instant)."""
        if self.reserved_tokens == 0:
            return 0.0
        return 1.0 - self.used_tokens / self.reserved_tokens

    def observe(self) -> None:
        """Record one time sample for mean-occupancy accounting."""
        self.sum_reserved += self.reserved_tokens
        self.sum_used += self.used_tokens
        self.samples += 1

    @property
    def mean_waste_fraction(self) -> float:
        """Time-averaged claimed-but-unused fraction."""
        if self.sum_reserved == 0:
            return 0.0
        return 1.0 - self.sum_used / self.sum_reserved

    @property
    def mean_utilization(self) -> float:
        """Time-averaged used fraction of total capacity."""
        if not self.samples or not self.capacity_tokens:
            return 0.0
        return self.sum_used / (self.samples * self.capacity_tokens)

    @property
    def utilization(self) -> float:
        return self.used_tokens / self.capacity_tokens if self.capacity_tokens else 0.0


class ReservedAllocator:
    """Reserve ``max_seq_len`` token slots per request up front."""

    def __init__(self, capacity_tokens: int, *, max_seq_len: int = 4096) -> None:
        if capacity_tokens <= 0 or max_seq_len <= 0:
            raise CacheError("capacity and max_seq_len must be positive")
        self.capacity_tokens = capacity_tokens
        self.max_seq_len = max_seq_len
        self._used: Dict[str, int] = {}  # request -> tokens actually written
        self.stats = KVStats(capacity_tokens=capacity_tokens)

    def can_admit(
        self,
        request_id: str,
        prompt_tokens: int,
        prefix_id: Optional[str] = None,
        prefix_tokens: int = 0,
    ) -> bool:
        return self.stats.reserved_tokens + self.max_seq_len <= self.capacity_tokens

    def admit(
        self,
        request_id: str,
        prompt_tokens: int,
        prefix_id: Optional[str] = None,
        prefix_tokens: int = 0,
    ) -> int:
        """Returns the number of prompt tokens already cached (always 0 here)."""
        if not self.can_admit(request_id, prompt_tokens):
            raise CacheError("out of KV memory (reservation)")
        if prompt_tokens > self.max_seq_len:
            raise CacheError(
                f"prompt of {prompt_tokens} exceeds max_seq_len {self.max_seq_len}"
            )
        self._used[request_id] = prompt_tokens
        self.stats.reserved_tokens += self.max_seq_len
        self.stats.used_tokens += prompt_tokens
        self.stats.peak_reserved = max(self.stats.peak_reserved, self.stats.reserved_tokens)
        return 0

    def append(self, request_id: str, n_tokens: int = 1) -> None:
        if request_id not in self._used:
            raise CacheError(f"unknown request {request_id!r}")
        if self._used[request_id] + n_tokens > self.max_seq_len:
            raise CacheError("sequence exceeded its reservation")
        self._used[request_id] += n_tokens
        self.stats.used_tokens += n_tokens

    def can_append_all(self, pairs: Sequence[Tuple[str, int]]) -> bool:
        """Would every ``(request_id, n_tokens)`` append succeed right now?"""
        for request_id, n_tokens in pairs:
            used = self._used.get(request_id)
            if used is None or used + n_tokens > self.max_seq_len:
                return False
        return True

    def append_many(self, pairs: Sequence[Tuple[str, int]]) -> None:
        """Apply one iteration's appends in a single call."""
        for request_id, n_tokens in pairs:
            self.append(request_id, n_tokens)

    def release(self, request_id: str, *, keep_for_prefix: bool = False) -> None:
        used = self._used.pop(request_id, None)
        if used is None:
            return
        self.stats.reserved_tokens -= self.max_seq_len
        self.stats.used_tokens -= used

    @property
    def active_requests(self) -> int:
        return len(self._used)


@dataclass
class _Sequence:
    request_id: str
    blocks: List[int] = field(default_factory=list)
    tokens: int = 0
    tokens_in_last_block: int = 0


class PagedAllocator:
    """vLLM-style block allocator with ref-counted prefix sharing."""

    def __init__(
        self,
        capacity_tokens: int,
        *,
        block_size: int = 16,
    ) -> None:
        if capacity_tokens <= 0 or block_size <= 0:
            raise CacheError("capacity and block_size must be positive")
        self.block_size = block_size
        self.num_blocks = capacity_tokens // block_size
        self.capacity_tokens = self.num_blocks * block_size
        self._free: List[int] = list(range(self.num_blocks))
        self._refcount: Dict[int, int] = {}
        self._sequences: Dict[str, _Sequence] = {}
        # prefix_id -> (block list, cached token count)
        self._prefix_blocks: Dict[str, List[int]] = {}
        self._prefix_tokens: Dict[str, int] = {}
        self.stats = KVStats(capacity_tokens=self.capacity_tokens)

    # ------------------------------------------------------------ internals
    def _blocks_needed(self, tokens: int) -> int:
        return math.ceil(tokens / self.block_size)

    def _alloc_blocks(self, count: int) -> List[int]:
        if count > len(self._free):
            raise CacheError("out of KV blocks")
        blocks = [self._free.pop() for _ in range(count)]
        for b in blocks:
            self._refcount[b] = 1
        return blocks

    def _drop_ref(self, block: int) -> None:
        self._refcount[block] -= 1
        if self._refcount[block] == 0:
            del self._refcount[block]
            self._free.append(block)

    def free_blocks(self) -> int:
        return len(self._free)

    # ------------------------------------------------------------ interface
    def can_admit(
        self,
        request_id: str,
        prompt_tokens: int,
        prefix_id: Optional[str] = None,
        prefix_tokens: int = 0,
    ) -> bool:
        cached = self.cached_prefix_tokens(prefix_id, prefix_tokens)
        needed = self._blocks_needed(max(prompt_tokens - cached, 0) + 1)
        return needed <= len(self._free)

    def cached_prefix_tokens(self, prefix_id: Optional[str], prefix_tokens: int) -> int:
        """How many of this request's prefix tokens are already resident."""
        if prefix_id is None or prefix_id not in self._prefix_blocks:
            return 0
        return min(self._prefix_tokens[prefix_id], prefix_tokens)

    def admit(
        self,
        request_id: str,
        prompt_tokens: int,
        prefix_id: Optional[str] = None,
        prefix_tokens: int = 0,
    ) -> int:
        """Allocate for a prompt; returns prompt tokens served from shared cache."""
        if request_id in self._sequences:
            raise CacheError(f"request {request_id!r} already admitted")
        cached = self.cached_prefix_tokens(prefix_id, prefix_tokens)
        seq = _Sequence(request_id=request_id)
        if cached:
            shared = self._prefix_blocks[prefix_id][: self._blocks_needed(cached)]
            for b in shared:
                self._refcount[b] += 1
            seq.blocks.extend(shared)
            seq.tokens = cached
            seq.tokens_in_last_block = cached - (len(shared) - 1) * self.block_size
            self.stats.shared_saved_tokens += cached
        remaining = prompt_tokens - cached
        if remaining > 0:
            # Never append into a shared block: open fresh blocks.
            new_blocks = self._alloc_blocks(self._blocks_needed(remaining))
            seq.blocks.extend(new_blocks)
            seq.tokens += remaining
            seq.tokens_in_last_block = remaining - (len(new_blocks) - 1) * self.block_size
        self._sequences[request_id] = seq
        if cached:
            # Shared blocks shift which occurrence _recount attributes them
            # to; only a full recount is exact here.
            self._recount()
        else:
            # All blocks are fresh (nowhere else in the pool), so the new
            # sequence contributes exactly its prompt tokens.
            stats = self.stats
            stats.reserved_tokens = (self.num_blocks - len(self._free)) * self.block_size
            stats.used_tokens += prompt_tokens
            if stats.reserved_tokens > stats.peak_reserved:
                stats.peak_reserved = stats.reserved_tokens
        return cached

    def append(self, request_id: str, n_tokens: int = 1) -> None:
        seq = self._sequences.get(request_id)
        if seq is None:
            raise CacheError(f"unknown request {request_id!r}")
        self._append_to_seq(seq, n_tokens)

    def _append_to_seq(self, seq: _Sequence, n_tokens: int) -> None:
        """Append with O(1) stats accounting.

        Appends only ever grow an unshared last block or open fresh blocks,
        so ``used_tokens`` advances by exactly ``n_tokens`` and
        ``reserved_tokens`` follows the free list — no full recount needed.
        The one exception is writing past a *shared* last block (a fully
        cached prompt), where the old block's contribution to ``used``
        depends on sharing structure; that rare case recounts exactly.
        """
        shared_transition = False
        for _ in range(n_tokens):
            last = seq.blocks[-1] if seq.blocks else None
            last_shared = last is not None and self._refcount.get(last, 1) > 1
            if (
                last is None
                or last_shared
                or seq.tokens_in_last_block >= self.block_size
            ):
                seq.blocks.extend(self._alloc_blocks(1))
                seq.tokens_in_last_block = 0
                if last_shared:
                    shared_transition = True
            seq.tokens += 1
            seq.tokens_in_last_block += 1
        if shared_transition:
            self._recount()
        else:
            stats = self.stats
            stats.reserved_tokens = (self.num_blocks - len(self._free)) * self.block_size
            stats.used_tokens += n_tokens
            if stats.reserved_tokens > stats.peak_reserved:
                stats.peak_reserved = stats.reserved_tokens

    def can_append_all(self, pairs: Sequence[Tuple[str, int]]) -> bool:
        """Would every ``(request_id, n_tokens)`` append succeed right now?

        Exact: frees never happen mid-batch, so the batch fits iff the total
        count of fresh blocks it would open fits in the free list.
        """
        needed = 0
        for request_id, n_tokens in pairs:
            seq = self._sequences.get(request_id)
            if seq is None:
                return False
            last = seq.blocks[-1] if seq.blocks else None
            if last is None or self._refcount.get(last, 1) > 1:
                room = 0
            else:
                room = self.block_size - seq.tokens_in_last_block
            overflow = n_tokens - room
            if overflow > 0:
                needed += -(-overflow // self.block_size)
        return needed <= len(self._free)

    def append_many(self, pairs: Sequence[Tuple[str, int]]) -> None:
        """Apply one iteration's appends in a single call, in pair order."""
        for request_id, n_tokens in pairs:
            seq = self._sequences.get(request_id)
            if seq is None:
                raise CacheError(f"unknown request {request_id!r}")
            self._append_to_seq(seq, n_tokens)

    def release(self, request_id: str, *, keep_for_prefix: bool = False) -> None:
        """Free a sequence; optionally register its blocks as a reusable prefix."""
        seq = self._sequences.pop(request_id, None)
        if seq is None:
            return
        if keep_for_prefix:
            prefix_id = request_id if isinstance(request_id, str) else str(request_id)
            self.register_prefix(prefix_id, seq.blocks, seq.tokens)
        refcount = self._refcount
        exclusive = not keep_for_prefix and all(
            refcount.get(b, 0) == 1 for b in seq.blocks
        )
        for b in seq.blocks:
            self._drop_ref(b)
        if exclusive:
            # Sole holder of every block: _recount attributed exactly
            # (full blocks + last partial) to this sequence, so subtract it.
            stats = self.stats
            if seq.blocks:
                stats.used_tokens -= (
                    len(seq.blocks) - 1
                ) * self.block_size + seq.tokens_in_last_block
            stats.reserved_tokens = (self.num_blocks - len(self._free)) * self.block_size
        else:
            self._recount()

    def register_prefix(self, prefix_id: str, blocks: List[int], tokens: int) -> None:
        """Pin blocks as a named shared prefix (takes a reference)."""
        self.drop_prefix(prefix_id)
        for b in blocks:
            self._refcount[b] += 1
        self._prefix_blocks[prefix_id] = list(blocks)
        self._prefix_tokens[prefix_id] = tokens
        self._recount()

    def drop_prefix(self, prefix_id: str) -> None:
        blocks = self._prefix_blocks.pop(prefix_id, None)
        self._prefix_tokens.pop(prefix_id, None)
        if blocks:
            for b in blocks:
                self._drop_ref(b)
        self._recount()

    def prefix_ids(self) -> List[str]:
        return sorted(self._prefix_blocks)

    def _recount(self) -> None:
        allocated_blocks = self.num_blocks - len(self._free)
        self.stats.reserved_tokens = allocated_blocks * self.block_size
        used = 0
        counted: Set[int] = set()
        for seq in self._sequences.values():
            for i, b in enumerate(seq.blocks):
                if b in counted:
                    continue
                counted.add(b)
                if i == len(seq.blocks) - 1:
                    used += seq.tokens_in_last_block
                else:
                    used += self.block_size
        for prefix_id, blocks in self._prefix_blocks.items():
            tokens = self._prefix_tokens[prefix_id]
            for i, b in enumerate(blocks):
                if b in counted:
                    continue
                counted.add(b)
                remaining = tokens - i * self.block_size
                used += min(max(remaining, 0), self.block_size)
        self.stats.used_tokens = used
        self.stats.peak_reserved = max(self.stats.peak_reserved, self.stats.reserved_tokens)

    @property
    def active_requests(self) -> int:
        return len(self._sequences)
