"""Shared KV-transfer cost model for disaggregated serving.

Prefill/decode disaggregation (DistServe [69], Splitwise [44], Mooncake
[45]) ships each request's KV cache from the prefill pool to the decode
pool.  :class:`TransferModel` prices that ship: ``raw_delay`` is the wire
time of the full payload and ``visible_delay`` the fraction not hidden
behind decode compute (both Mooncake and AttentionStore overlap
transmission with computation).

The model started life inside :mod:`repro.inference.disaggregation` (the
two-lane E4 toy); it now also prices the fleet-scale pool DES in
:mod:`repro.inference.pools` — handoffs between role-typed replica pools,
re-pricing after a destination death, and the KV-aware migration
break-even rule :meth:`TransferModel.ship_wins`: move a request's KV only
when shipping it beats rebuilding it with a local re-prefill.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class TransferModel:
    """KV shipping cost between prefill and decode pools.

    ``overlap`` is the fraction hidden behind decode compute (both
    Mooncake and AttentionStore overlap transmission with computation).
    ``overlap=1.0`` makes the visible delay exactly ``0.0`` — the
    degenerate "free transfer" configuration the metamorphic anchors use.
    """

    bytes_per_token: float = 160_000.0  # 2 * layers * hidden * 2B for a 7B-class model
    bandwidth: float = 50e9  # NVLink/IB bytes/s
    overlap: float = 0.8

    def __post_init__(self) -> None:
        # overlap > 1 yields *negative* visible delay and non-positive
        # bandwidth/bytes_per_token yields infinite or negative wire time —
        # all of which silently corrupt goodput numbers downstream.
        if not 0.0 <= self.overlap <= 1.0:
            raise ConfigError("overlap must be in [0, 1]")
        if self.bandwidth <= 0.0:
            raise ConfigError("bandwidth must be positive")
        if self.bytes_per_token <= 0.0:
            raise ConfigError("bytes_per_token must be positive")

    def raw_delay(self, prompt_tokens: int) -> float:
        """Wire time of the full KV payload, before any compute overlap."""
        return prompt_tokens * self.bytes_per_token / self.bandwidth

    def visible_delay(self, prompt_tokens: int) -> float:
        return self.raw_delay(prompt_tokens) * (1.0 - self.overlap)

    def ship_wins(
        self, ship_tokens: int, recompute_s: float, extra_ship_s: float = 0.0
    ) -> bool:
        """The migration break-even rule: ship the KV iff it beats recompute.

        ``ship_tokens`` is the KV payload to move, ``recompute_s`` the cost
        of rebuilding the same state on the destination (a re-prefill, plus
        any lost decode progress), and ``extra_ship_s`` additional time the
        ship path pays beyond the wire (e.g. resuming the remaining decode).
        Ties go to shipping, so a zero-cost transfer always migrates KV.
        """
        return self.visible_delay(ship_tokens) + extra_ship_s <= recompute_s
