"""Prefill/decode disaggregation (DistServe [69], Splitwise [44], Mooncake [45]).

Colocated serving runs both phases on every GPU, so long prefills inflate
running decodes' TBT and decodes steal compute from prefills' TTFT.
Disaggregation dedicates ``prefill_gpus`` to prompt processing and
``decode_gpus`` to token generation, shipping each request's KV cache
across (a per-token transfer cost, overlappable with decode compute).

:func:`simulate_colocated` and :func:`simulate_disaggregated` share the
iteration-cost model so the comparison isolates the architecture change;
E4 sweeps GPU splits and reports per-GPU goodput under joint SLOs.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..faults import KV_DEGRADED, KV_TRANSFER_FAIL, FaultPlan, RetryPolicy
from .metrics import ServingReport, summarize
from .request import SLO, Request
from .scheduler import ContinuousBatchScheduler, IterationCost, ServingEngine

# TransferModel grew up and moved out: the fleet-scale pool DES
# (repro.inference.pools) prices its handoffs and migrations with the same
# model, so it now lives in repro.inference.transfer.  Re-exported here for
# backward compatibility with the original two-lane E4 API.
from .transfer import TransferModel

__all__ = [
    "TransferModel",
    "simulate_colocated",
    "simulate_disaggregated",
    "sweep_splits",
]


def _split_round_robin(requests: Sequence[Request], n: int) -> List[List[Request]]:
    lanes: List[List[Request]] = [[] for _ in range(n)]
    for i, request in enumerate(sorted(requests, key=lambda r: r.arrival_s)):
        lanes[i % n].append(request)
    return lanes


def simulate_colocated(
    requests: Sequence[Request],
    *,
    num_gpus: int,
    cost: Optional[IterationCost] = None,
    slo: Optional[SLO] = None,
    max_batch: int = 64,
) -> ServingReport:
    """Each GPU independently serves a round-robin share, both phases."""
    if num_gpus <= 0:
        raise ConfigError("num_gpus must be positive")
    work = copy.deepcopy(list(requests))
    lanes = _split_round_robin(work, num_gpus)
    for lane in lanes:
        engine = ServingEngine(
            ContinuousBatchScheduler(max_batch=max_batch), cost=cost
        )
        engine.run(lane)
    return summarize(work, slo=slo)


def simulate_disaggregated(
    requests: Sequence[Request],
    *,
    prefill_gpus: int,
    decode_gpus: int,
    cost: Optional[IterationCost] = None,
    transfer: Optional[TransferModel] = None,
    slo: Optional[SLO] = None,
    max_batch: int = 64,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
) -> ServingReport:
    """Two-stage pipeline: prefill pool -> KV transfer -> decode pool.

    Stage one runs prompt-only "requests" (one output token = the first
    token, produced by prefill). Stage two replays each request arriving at
    its first-token time plus transfer delay, decoding the remaining
    tokens with no prefill work (prompt re-entered as already-cached).

    ``faults`` injects interconnect trouble: a KV ship that starts inside a
    :data:`~repro.faults.KV_TRANSFER_FAIL` window pays the full wire time
    before the failure is detected, backs off per ``retry``, and then falls
    back to **re-prefilling the prompt on the decode pool** (the KV is
    gone) instead of silently completing; a ship inside a
    :data:`~repro.faults.KV_DEGRADED` window sees its wire time stretched
    by ``1 / severity``.  An empty plan reproduces the fault-free
    trajectory bit-exactly.
    """
    if prefill_gpus <= 0 or decode_gpus <= 0:
        raise ConfigError("gpu counts must be positive")
    transfer = transfer or TransferModel()
    retry = retry or RetryPolicy()
    originals = sorted(copy.deepcopy(list(requests)), key=lambda r: r.arrival_s)

    # ---- stage 1: prefill pool
    prefill_stubs = [
        Request(
            request_id=r.request_id,
            arrival_s=r.arrival_s,
            prompt_tokens=r.prompt_tokens,
            output_tokens=1,
        )
        for r in originals
    ]
    for lane in _split_round_robin(prefill_stubs, prefill_gpus):
        ServingEngine(ContinuousBatchScheduler(max_batch=max_batch), cost=cost).run(lane)
    first_token_at = {r.request_id: r.finished_s for r in prefill_stubs}

    # ---- stage 2: decode pool
    decode_stubs = []
    for r in originals:
        ready = first_token_at[r.request_id]
        if ready is None:
            continue
        ship_s = ready
        failed = faults.covering(KV_TRANSFER_FAIL, ship_s) if faults is not None else None
        if failed is not None and (failed.target in (None, r.request_id)):
            # The ship was attempted (full wire time burned before the
            # failure surfaces), then backed off; the decode pool rebuilds
            # the KV by re-running the whole prefill locally.
            r.retries += 1
            ready = ship_s + transfer.raw_delay(r.prompt_tokens) + retry.delay_s(r.retries)
            prompt_for_decode = r.prompt_tokens
        else:
            delay = transfer.visible_delay(r.prompt_tokens)
            degraded = (
                faults.covering(KV_DEGRADED, ship_s) if faults is not None else None
            )
            if degraded is not None:
                delay /= degraded.severity
            ready = ship_s + delay
            prompt_for_decode = 1  # KV arrived; no prefill work on this pool
        decode_stubs.append(
            Request(
                request_id=r.request_id,
                arrival_s=ready,
                prompt_tokens=prompt_for_decode,
                output_tokens=max(r.output_tokens - 1, 1),
            )
        )
    for lane in _split_round_robin(decode_stubs, decode_gpus):
        engine = ServingEngine(ContinuousBatchScheduler(max_batch=max_batch), cost=cost)
        # Prompt "prefill" of one token models the KV-attach bookkeeping.
        engine.run(lane)
    decode_by_id = {r.request_id: r for r in decode_stubs}

    # ---- merge timelines back onto the original requests
    for r in originals:
        stub = decode_by_id.get(r.request_id)
        first = first_token_at.get(r.request_id)
        if stub is None or first is None or not stub.done:
            continue
        r.admitted_s = r.arrival_s
        r.first_token_s = first
        # Stub token times: first entry is the attach step; keep the rest.
        r.token_times = [first] + stub.token_times[1:]
        r.finished_s = stub.finished_s
    return summarize(originals, slo=slo)


def sweep_splits(
    requests: Sequence[Request],
    total_gpus: int,
    *,
    cost: Optional[IterationCost] = None,
    slo: Optional[SLO] = None,
) -> List[Tuple[str, ServingReport]]:
    """Colocated vs every prefill/decode split of ``total_gpus``."""
    if total_gpus < 2:
        raise ConfigError("need at least 2 GPUs to disaggregate")
    results: List[Tuple[str, ServingReport]] = [
        ("colocated", simulate_colocated(requests, num_gpus=total_gpus, cost=cost, slo=slo))
    ]
    for prefill in range(1, total_gpus):
        decode = total_gpus - prefill
        report = simulate_disaggregated(
            requests,
            prefill_gpus=prefill,
            decode_gpus=decode,
            cost=cost,
            slo=slo,
        )
        results.append((f"disagg-{prefill}p{decode}d", report))
    return results
