"""Hierarchical KV-cache storage for multi-turn serving (AttentionStore [19],
Mooncake [45]).

Between conversation turns the session's KV cache is either discarded
(recompute next turn), or demoted through a memory hierarchy —
HBM -> DRAM -> SSD — and fetched back when the next turn arrives. The two
AttentionStore optimizations are modeled explicitly:

* **scheduler-aware prefetch** — when the next turn's arrival is known a
  little in advance (the request sits in the queue), fetching starts
  early, hiding transfer behind the wait;
* **transfer/compute overlap** — fetch of later layers overlaps prefill
  of earlier ones, hiding a configurable fraction of transfer time.

:func:`simulate_multiturn` replays a conversation workload under a chosen
strategy and reports per-turn TTFT and recompute volumes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .request import Request
from .scheduler import IterationCost


@dataclass(frozen=True)
class Tier:
    """One level of the KV storage hierarchy."""

    name: str
    capacity_tokens: int
    read_bw_tokens_s: float  # tokens/s when loading back to HBM
    write_bw_tokens_s: float


@dataclass
class StoredSession:
    """A conversation's saved KV with its current tier."""

    conversation_id: str
    tokens: int
    tier_index: int
    saved_at: float


DEFAULT_TIERS = (
    Tier("hbm", capacity_tokens=60_000, read_bw_tokens_s=2_000_000, write_bw_tokens_s=2_000_000),
    Tier("dram", capacity_tokens=400_000, read_bw_tokens_s=300_000, write_bw_tokens_s=300_000),
    Tier("ssd", capacity_tokens=4_000_000, read_bw_tokens_s=40_000, write_bw_tokens_s=60_000),
)


@dataclass
class MultiTurnReport:
    """Aggregate outcome of a multi-turn replay."""

    turns: int
    first_turns: int
    mean_ttft_s: float
    followup_mean_ttft_s: float
    tokens_recomputed: int
    tokens_fetched: int
    fetch_hidden_s: float
    hit_rate: float


class AttentionStore:
    """Hierarchical session-KV store with LRU demotion."""

    def __init__(self, tiers: Sequence[Tier] = DEFAULT_TIERS) -> None:
        if not tiers:
            raise ConfigError("need at least one tier")
        self.tiers = list(tiers)
        self._sessions: Dict[str, StoredSession] = {}
        self._tier_used = [0 for _ in self.tiers]

    # ------------------------------------------------------------- storage
    def save(self, conversation_id: str, tokens: int, now: float) -> None:
        """Store a session's KV in the highest tier with room (demoting LRU)."""
        self.drop(conversation_id)
        tier_index = 0
        while tier_index < len(self.tiers):
            if self._tier_used[tier_index] + tokens <= self.tiers[tier_index].capacity_tokens:
                break
            self._demote_lru(tier_index, now)
            if self._tier_used[tier_index] + tokens <= self.tiers[tier_index].capacity_tokens:
                break
            tier_index += 1
        if tier_index >= len(self.tiers):
            return  # does not fit anywhere: drop (recompute later)
        self._sessions[conversation_id] = StoredSession(
            conversation_id=conversation_id,
            tokens=tokens,
            tier_index=tier_index,
            saved_at=now,
        )
        self._tier_used[tier_index] += tokens

    def _demote_lru(self, tier_index: int, now: float) -> None:
        """Move the least-recently-saved session of a tier one level down."""
        candidates = [
            s for s in self._sessions.values() if s.tier_index == tier_index
        ]
        if not candidates:
            return
        victim = min(candidates, key=lambda s: (s.saved_at, s.conversation_id))
        self._tier_used[tier_index] -= victim.tokens
        next_tier = tier_index + 1
        while next_tier < len(self.tiers):
            if self._tier_used[next_tier] + victim.tokens <= self.tiers[next_tier].capacity_tokens:
                victim.tier_index = next_tier
                self._tier_used[next_tier] += victim.tokens
                return
            next_tier += 1
        del self._sessions[victim.conversation_id]  # fell off the hierarchy

    def drop(self, conversation_id: str) -> None:
        session = self._sessions.pop(conversation_id, None)
        if session is not None:
            self._tier_used[session.tier_index] -= session.tokens

    def fetch(self, conversation_id: str) -> Optional[Tuple[int, float]]:
        """(tokens, transfer_seconds) to bring a session back to HBM."""
        session = self._sessions.get(conversation_id)
        if session is None:
            return None
        tier = self.tiers[session.tier_index]
        transfer_s = session.tokens / tier.read_bw_tokens_s
        return session.tokens, transfer_s

    def tier_occupancy(self) -> Dict[str, int]:
        return {t.name: used for t, used in zip(self.tiers, self._tier_used)}


def simulate_multiturn(
    requests: Sequence[Request],
    *,
    strategy: str = "store",
    tiers: Sequence[Tier] = DEFAULT_TIERS,
    cost: Optional[IterationCost] = None,
    prefetch_lead_s: float = 0.0,
    overlap: float = 0.0,
) -> MultiTurnReport:
    """Replay a multi-turn workload under one KV-reuse strategy.

    Strategies: ``"recompute"`` (no store — every turn re-prefills its full
    history), ``"store"`` (hierarchical store), with ``prefetch_lead_s``
    and ``overlap`` enabling the two AttentionStore optimizations.
    """
    if strategy not in {"recompute", "store"}:
        raise ConfigError("strategy must be 'recompute' or 'store'")
    if not 0.0 <= overlap <= 1.0:
        raise ConfigError("overlap must be in [0, 1]")
    cost = cost or IterationCost()
    store = AttentionStore(tiers)
    work = sorted(copy.deepcopy(list(requests)), key=lambda r: r.arrival_s)
    ttfts: List[float] = []
    followup_ttfts: List[float] = []
    recomputed = 0
    fetched = 0
    hidden = 0.0
    hits = 0
    followups = 0
    for request in work:
        conv = request.conversation_id or request.request_id
        cached_tokens = 0
        transfer_visible = 0.0
        if request.turn_index > 0:
            followups += 1
        if strategy == "store" and request.turn_index > 0:
            result = store.fetch(conv)
            if result is not None:
                cached_tokens, transfer_s = result
                cached_tokens = min(cached_tokens, request.prefix_tokens)
                hits += 1
                fetched += cached_tokens
                # Overlap with compute, then hide behind prefetch lead.
                transfer_visible = transfer_s * (1.0 - overlap)
                hidden_here = min(transfer_visible, prefetch_lead_s)
                hidden += transfer_s - transfer_visible + hidden_here
                transfer_visible -= hidden_here
        new_tokens = request.prompt_tokens - cached_tokens
        recomputed += max(new_tokens, 0)
        ttft = cost.time(max(new_tokens, 1), 0) + transfer_visible
        ttfts.append(ttft)
        if request.turn_index > 0:
            followup_ttfts.append(ttft)
        if strategy == "store":
            store.drop(conv)
            store.save(conv, request.prompt_tokens + request.output_tokens, request.arrival_s)
    return MultiTurnReport(
        turns=len(work),
        first_turns=len(work) - followups,
        mean_ttft_s=sum(ttfts) / len(ttfts) if ttfts else 0.0,
        followup_mean_ttft_s=(
            sum(followup_ttfts) / len(followup_ttfts) if followup_ttfts else 0.0
        ),
        tokens_recomputed=recomputed,
        tokens_fetched=fetched,
        fetch_hidden_s=hidden,
        hit_rate=hits / followups if followups else 0.0,
    )
