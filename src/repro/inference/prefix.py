"""Prefix / prompt caching (vLLM shared prefix, Prompt Cache, TensorRT-LLM).

:class:`PrefixCacheSimulator` replays a workload against a
:class:`~repro.inference.eviction.KVEntryCache` of precomputed prompt
prefixes and reports, per request, how many prompt tokens were served from
cache vs recomputed — then converts the saving into TTFT using the shared
iteration-cost model. Block-granular reuse (TensorRT's configurable block
size) rounds hits *down* to block boundaries, so smaller blocks reuse more
of a partially-matching prefix.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .eviction import EvictionPolicy, KVEntryCache, LRUPolicy
from .request import Request
from .scheduler import IterationCost


@dataclass
class PrefixReport:
    """Aggregate outcome of a prefix-cache replay."""

    requests: int
    hit_rate: float
    tokens_from_cache: int
    tokens_recomputed: int
    mean_ttft_s: float
    mean_ttft_no_cache_s: float
    evictions: int

    @property
    def ttft_speedup(self) -> float:
        if self.mean_ttft_s <= 0:
            return 1.0
        return self.mean_ttft_no_cache_s / self.mean_ttft_s

    @property
    def cached_token_fraction(self) -> float:
        total = self.tokens_from_cache + self.tokens_recomputed
        return self.tokens_from_cache / total if total else 0.0


class PrefixCacheSimulator:
    """Replay requests against a prefix cache; measure TTFT deltas."""

    def __init__(
        self,
        *,
        capacity_tokens: int = 65_536,
        policy: Optional[EvictionPolicy] = None,
        block_tokens: int = 64,
        cost: Optional[IterationCost] = None,
    ) -> None:
        if block_tokens <= 0:
            raise ConfigError("block_tokens must be positive")
        self.cache = KVEntryCache(capacity_tokens, policy or LRUPolicy())
        self.block_tokens = block_tokens
        self.cost = cost or IterationCost()

    def _prefill_time(self, tokens: int) -> float:
        if tokens <= 0:
            return self.cost.base_s
        return self.cost.time(tokens, 0)

    def replay(self, requests: Sequence[Request]) -> PrefixReport:
        """Process requests in arrival order; populate caches as we go."""
        # Shallow per-request clones (only the mutable timeline list needs
        # copying) keep the caller's requests untouched without paying for a
        # deepcopy of the whole workload.
        work = sorted(
            (
                dataclasses.replace(r, token_times=list(r.token_times))
                for r in requests
            ),
            key=lambda r: r.arrival_s,
        )
        ttfts: List[float] = []
        ttfts_baseline: List[float] = []
        for request in work:
            baseline = self._prefill_time(request.prompt_tokens)
            ttfts_baseline.append(baseline)
            cached_tokens = 0
            if request.prefix_id is not None and request.prefix_tokens > 0:
                entry = self.cache.lookup(request.prefix_id, now=request.arrival_s)
                if entry is not None:
                    usable = min(entry.size_tokens, request.prefix_tokens)
                    # Reuse only whole blocks (TensorRT-LLM block granularity).
                    cached_tokens = (usable // self.block_tokens) * self.block_tokens
            remaining = request.prompt_tokens - cached_tokens
            self.cache.record_recompute(remaining)
            ttfts.append(self._prefill_time(remaining))
            request.prefix_hit = cached_tokens > 0
            # The request's own prefix becomes (re)cacheable at full length.
            if request.prefix_id is not None and request.prefix_tokens > 0:
                self.cache.insert(
                    request.prefix_id,
                    request.prefix_tokens,
                    now=request.arrival_s,
                )
        return PrefixReport(
            requests=len(work),
            hit_rate=self.cache.metrics.hit_rate,
            tokens_from_cache=self.cache.metrics.tokens_served_from_cache,
            tokens_recomputed=self.cache.metrics.tokens_recomputed,
            mean_ttft_s=sum(ttfts) / len(ttfts) if ttfts else 0.0,
            mean_ttft_no_cache_s=(
                sum(ttfts_baseline) / len(ttfts_baseline) if ttfts_baseline else 0.0
            ),
            evictions=self.cache.metrics.evictions,
        )


def compare_policies(
    requests: Sequence[Request],
    policies: Dict[str, EvictionPolicy],
    *,
    capacity_tokens: int,
    block_tokens: int = 64,
) -> Dict[str, PrefixReport]:
    """Replay the same workload under each eviction policy."""
    return {
        name: PrefixCacheSimulator(
            capacity_tokens=capacity_tokens,
            policy=policy,
            block_tokens=block_tokens,
        ).replay(requests)
        for name, policy in policies.items()
    }
