"""Fleet request routers: random, least-loaded, and prefix-cache-aware.

Cluster-level serving (paper §2.3; Mooncake [55] / DistServe [69] style)
hinges on *where* a request lands: a replica that already holds the
request's prompt prefix in its KV cache serves it with a fraction of the
prefill work, while an overloaded replica queues it behind a deep backlog.
This module provides the placement policies the fleet simulators
(:mod:`repro.inference.fleet`) drive:

* :class:`RandomRouter` — seeded uniform choice over routable replicas
  (the baseline every serious policy must beat);
* :class:`LeastLoadedRouter` — lexicographic ``(queued + running,
  KV pressure)`` argmin, ties to the lowest replica index;
* :class:`PrefixAwareRouter` — route to the replica whose prefix cache
  holds the longest block-rounded hit for the request's prefix (the same
  block-granular reuse rule as :class:`~repro.inference.prefix.
  PrefixCacheSimulator`), falling back to least-loaded when no replica
  has seen the prefix.

Routers read a :class:`RouterState`: cross-replica bookkeeping kept as
NumPy *columns* (one slot per replica) owned and updated by the fleet.
Decisions are batched at the C level — uniform draws come from a buffered
seeded stream and the load/hit reductions are single vectorized argmins —
so a routing decision costs O(1) Python operations regardless of fleet
size.  Everything is deterministic: the only randomness is
:class:`RandomRouter`'s :func:`~repro.utils.derive_rng` stream, and its
buffered draws consume the stream exactly as one-at-a-time draws would,
which the naive-baseline parity suite relies on.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigError, SchedulerError
from ..utils import derive_rng

_INT64_MAX = np.iinfo(np.int64).max

#: Policy names accepted by :func:`make_router`.
ROUTER_NAMES: Tuple[str, ...] = ("random", "least-loaded", "prefix-aware")


class RouterState:
    """Live cross-replica columns a router reads (owned by the fleet).

    One slot per *potential* replica (autoscaling may populate slots over
    time); ``routable`` masks the slots a router may currently pick.  The
    fleet mutates these arrays in place as requests queue, start, finish,
    and as replicas die, drain, or spawn — routers never copy them.
    """

    def __init__(self, max_replicas: int, kv_capacity_tokens: int) -> None:
        if max_replicas <= 0:
            raise ConfigError("max_replicas must be positive")
        if kv_capacity_tokens <= 0:
            raise ConfigError("kv_capacity_tokens must be positive")
        self.max_replicas = max_replicas
        self.kv_capacity_tokens = kv_capacity_tokens
        self.routable = np.zeros(max_replicas, dtype=np.bool_)
        self.queue_depth = np.zeros(max_replicas, dtype=np.int64)
        self.running = np.zeros(max_replicas, dtype=np.int64)
        self.kv_used = np.zeros(max_replicas, dtype=np.int64)
        self.routable_indices = np.zeros(0, dtype=np.int64)
        # Per-prefix cached-token columns: code -> int64[max_replicas].
        self._prefix: Dict[int, np.ndarray] = {}

    def rebuild_routable(self) -> None:
        """Refresh the routable index list after a membership change."""
        self.routable_indices = np.flatnonzero(self.routable)

    # ------------------------------------------------------- prefix cache
    def prefix_hit_column(self, code: int) -> Optional[np.ndarray]:
        """Cached prefix tokens per replica for ``code`` (``None`` = unseen)."""
        return self._prefix.get(code)

    def record_prefix(self, code: int, replica: int, tokens: int) -> None:
        """Replica ``replica`` now caches ``tokens`` tokens of ``code``."""
        col = self._prefix.get(code)
        if col is None:
            col = np.zeros(self.max_replicas, dtype=np.int64)
            self._prefix[code] = col
        if tokens > col[replica]:
            col[replica] = tokens

    def clear_replica(self, replica: int) -> None:
        """Drop every cached prefix on ``replica`` (death / retirement)."""
        for col in self._prefix.values():
            col[replica] = 0

    def reset_counters(self, replica: int) -> None:
        """Zero the load columns for a fresh (or torn-down) replica slot."""
        self.queue_depth[replica] = 0
        self.running[replica] = 0
        self.kv_used[replica] = 0


class Router:
    """Interface: pick a replica slot for one request."""

    name = "base"

    def bind(self, state: RouterState) -> None:
        """Attach to a fleet's live state columns before a run."""
        self._state = state
        self._setup()

    def _setup(self) -> None:
        """Hook: allocate per-run scratch after :meth:`bind`."""

    def route(self, prefix_code: int, prefix_tokens: int) -> int:
        """Return the routable replica index for a request.

        ``prefix_code`` is the request's integer prefix id (``-1`` = no
        shared prefix) and ``prefix_tokens`` its shared-prefix length.
        """
        raise NotImplementedError

    def on_membership_change(self) -> None:
        """Hook: the routable set changed (death, drain, spawn)."""


class RandomRouter(Router):
    """Seeded uniform routing over the routable replicas.

    Draws are buffered (one vectorized ``rng.random`` call refills many
    decisions) but consume the :func:`~repro.utils.derive_rng` stream
    exactly as sequential scalar draws would, so batched and naive
    implementations stay bit-identical.
    """

    name = "random"
    _BUFFER = 8192

    def __init__(self, seed: int = 0, stream: str = "router") -> None:
        # ``stream`` names the derive_rng sub-stream, so two RandomRouters
        # in one fleet (e.g. prefill + decode pools) can draw from
        # independent sequences off the same seed: pass "router-decode"
        # for the decode-side router (rule R008 naming).
        self.seed = seed
        self.stream = stream

    def _setup(self) -> None:
        self._rng = derive_rng(self.seed, "fleet", self.stream)
        self._buf = np.zeros(0, dtype=np.float64)
        self._ptr = 0

    def _next_uniform(self) -> float:
        if self._ptr >= self._buf.shape[0]:
            self._buf = self._rng.random(self._BUFFER)
            self._ptr = 0
        u = self._buf[self._ptr]
        self._ptr += 1
        return float(u)

    def route(self, prefix_code: int, prefix_tokens: int) -> int:
        idx = self._state.routable_indices
        k = idx.shape[0]
        if k == 0:
            raise SchedulerError("no routable replicas")
        j = int(self._next_uniform() * k)
        if j >= k:  # guard the (measure-zero) top-of-range rounding
            j = k - 1
        return int(idx[j])


class LeastLoadedRouter(Router):
    """Lexicographic ``(queued + running, KV pressure)`` argmin placement.

    Both components are integers, so the key packs exactly into one int64
    column — ``(queue_depth + running) * (kv_capacity + 1) + kv_used`` —
    and the decision is a single C-level argmin with ties resolved to the
    lowest replica index.
    """

    name = "least-loaded"

    def _setup(self) -> None:
        n = self._state.max_replicas
        self._span = np.int64(self._state.kv_capacity_tokens + 1)
        self._key = np.zeros(n, dtype=np.int64)
        self._masked = np.zeros(n, dtype=np.int64)

    def load_key(self) -> np.ndarray:
        """The packed load column, ``int64`` max on unroutable slots."""
        s = self._state
        np.add(s.queue_depth, s.running, out=self._key)
        np.multiply(self._key, self._span, out=self._key)
        np.add(self._key, s.kv_used, out=self._key)
        self._masked.fill(_INT64_MAX)
        np.copyto(self._masked, self._key, where=s.routable)
        return self._masked

    def route(self, prefix_code: int, prefix_tokens: int) -> int:
        if self._state.routable_indices.shape[0] == 0:
            raise SchedulerError("no routable replicas")
        return int(np.argmin(self.load_key()))


class PrefixAwareRouter(Router):
    """Longest block-rounded prefix hit, then least-loaded, then index.

    The hit length mirrors :class:`~repro.inference.prefix.
    PrefixCacheSimulator`: only whole ``block_tokens`` blocks of the
    cached prefix count (TensorRT-LLM block granularity), so a replica
    must hold at least one full block of the request's prefix to attract
    it.  Requests with no prefix — or a prefix no live replica caches —
    fall back to :class:`LeastLoadedRouter` placement.
    """

    name = "prefix-aware"

    def __init__(self, block_tokens: int = 64) -> None:
        if block_tokens <= 0:
            raise ConfigError("block_tokens must be positive")
        self.block_tokens = block_tokens
        self._fallback = LeastLoadedRouter()

    def _setup(self) -> None:
        self._fallback.bind(self._state)
        n = self._state.max_replicas
        self._block = np.int64(self.block_tokens)
        self._hits = np.zeros(n, dtype=np.int64)
        self._hits_masked = np.zeros(n, dtype=np.int64)
        self._selected = np.zeros(n, dtype=np.int64)

    def route(self, prefix_code: int, prefix_tokens: int) -> int:
        state = self._state
        if prefix_code >= 0 and prefix_tokens > 0:
            col = state.prefix_hit_column(prefix_code)
            if col is not None:
                np.minimum(col, np.int64(prefix_tokens), out=self._hits)
                np.floor_divide(self._hits, self._block, out=self._hits)
                np.multiply(self._hits, self._block, out=self._hits)
                self._hits_masked.fill(-1)
                np.copyto(self._hits_masked, self._hits, where=state.routable)
                best = int(self._hits_masked.max())
                if best > 0:
                    self._selected.fill(_INT64_MAX)
                    np.copyto(
                        self._selected,
                        self._fallback.load_key(),
                        where=self._hits_masked == best,
                    )
                    return int(np.argmin(self._selected))
        return self._fallback.route(prefix_code, prefix_tokens)


def make_router(name: str, *, seed: int = 0, block_tokens: int = 64) -> Router:
    """Build a router by policy name (:data:`ROUTER_NAMES`)."""
    if name == "random":
        return RandomRouter(seed=seed)
    if name == "least-loaded":
        return LeastLoadedRouter()
    if name == "prefix-aware":
        return PrefixAwareRouter(block_tokens=block_tokens)
    raise ConfigError(f"unknown router {name!r}; have {ROUTER_NAMES}")
