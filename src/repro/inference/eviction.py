"""KV-cache eviction policies (vLLM, TensorRT-LLM, AttentionStore).

A capacity-bounded cache of KV *entries* (prefixes / past conversations)
with pluggable eviction:

* :class:`LRUPolicy` / :class:`LFUPolicy` — the classic baselines the
  paper names;
* :class:`AllOrNothingPolicy` — vLLM's sequence-granular rule: all blocks
  of a victim sequence leave together (never partial), implemented by
  evicting whole entries by LRU order — contrasted with a (hypothetical)
  partial policy that leaves unusable half-sequences;
* :class:`DependencyTreePolicy` — TensorRT-LLM's tree eviction: entries
  form a prefix tree; leaves are evicted before their parents even when
  the leaf was referenced more recently, because an interior node serves
  every descendant.

:class:`KVEntryCache` exposes hit/miss accounting for benchmark E6.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import CacheError


@dataclass
class CacheEntry:
    """One cached KV object (a prefix or a finished conversation's cache)."""

    key: str
    size_tokens: int
    parent: Optional[str] = None  # prefix-tree structure
    last_used: float = 0.0
    uses: int = 0


class EvictionPolicy(abc.ABC):
    """Chooses the next victim among entries."""

    name = "base"

    @abc.abstractmethod
    def choose_victim(
        self, entries: Dict[str, CacheEntry], children: Dict[str, Set[str]]
    ) -> str:
        """Return the key to evict (entries is non-empty)."""


class LRUPolicy(EvictionPolicy):
    name = "lru"

    def choose_victim(
        self, entries: Dict[str, CacheEntry], children: Dict[str, Set[str]]
    ) -> str:
        return min(entries.values(), key=lambda e: (e.last_used, e.key)).key


class LFUPolicy(EvictionPolicy):
    name = "lfu"

    def choose_victim(
        self, entries: Dict[str, CacheEntry], children: Dict[str, Set[str]]
    ) -> str:
        return min(entries.values(), key=lambda e: (e.uses, e.last_used, e.key)).key


class AllOrNothingPolicy(EvictionPolicy):
    """LRU over whole sequences (vLLM): identical victim choice to LRU here
    because :class:`KVEntryCache` already evicts whole entries — the policy
    exists to contrast with partial eviction in the benchmark's analytic
    model (partial eviction strands unusable blocks)."""

    name = "all-or-nothing"

    def choose_victim(
        self, entries: Dict[str, CacheEntry], children: Dict[str, Set[str]]
    ) -> str:
        return min(entries.values(), key=lambda e: (e.last_used, e.key)).key


class DependencyTreePolicy(EvictionPolicy):
    """Evict leaves before interior nodes (TensorRT-LLM's tree eviction)."""

    name = "dependency-tree"

    def choose_victim(
        self, entries: Dict[str, CacheEntry], children: Dict[str, Set[str]]
    ) -> str:
        leaves = [
            e for e in entries.values() if not children.get(e.key)
        ]
        pool = leaves if leaves else list(entries.values())
        return min(pool, key=lambda e: (e.last_used, e.key)).key


POLICIES = {
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "all-or-nothing": AllOrNothingPolicy,
    "dependency-tree": DependencyTreePolicy,
}


@dataclass
class CacheMetrics:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    tokens_served_from_cache: int = 0
    tokens_recomputed: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KVEntryCache:
    """Capacity-bounded KV entry cache with pluggable eviction."""

    def __init__(self, capacity_tokens: int, policy: EvictionPolicy) -> None:
        if capacity_tokens <= 0:
            raise CacheError("capacity must be positive")
        self.capacity_tokens = capacity_tokens
        self.policy = policy
        self._entries: Dict[str, CacheEntry] = {}
        self._children: Dict[str, Set[str]] = {}
        self._used = 0
        self._clock = 0.0
        self.metrics = CacheMetrics()

    # -------------------------------------------------------------- access
    def _touch(self, entry: CacheEntry, now: Optional[float]) -> None:
        self._clock = max(self._clock + 1e-6, now if now is not None else self._clock)
        entry.last_used = self._clock
        entry.uses += 1
        # Interior nodes serve descendants: touching a child touches ancestors.
        parent = entry.parent
        while parent is not None and parent in self._entries:
            ancestor = self._entries[parent]
            ancestor.uses += 1
            parent = ancestor.parent

    def lookup(self, key: str, *, now: Optional[float] = None) -> Optional[CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.misses += 1
            return None
        self.metrics.hits += 1
        self.metrics.tokens_served_from_cache += entry.size_tokens
        self._touch(entry, now)
        return entry

    def record_recompute(self, tokens: int) -> None:
        self.metrics.tokens_recomputed += tokens

    # -------------------------------------------------------------- insert
    def insert(
        self,
        key: str,
        size_tokens: int,
        *,
        parent: Optional[str] = None,
        now: Optional[float] = None,
    ) -> None:
        if size_tokens > self.capacity_tokens:
            raise CacheError(f"entry of {size_tokens} tokens exceeds capacity")
        if key in self._entries:
            self._touch(self._entries[key], now)
            return
        while self._used + size_tokens > self.capacity_tokens:
            self._evict_one()
        entry = CacheEntry(key=key, size_tokens=size_tokens, parent=parent)
        self._entries[key] = entry
        self._used += size_tokens
        if parent is not None:
            self._children.setdefault(parent, set()).add(key)
        self._touch(entry, now)

    def _evict_one(self) -> None:
        if not self._entries:
            raise CacheError("cannot evict from an empty cache")
        victim_key = self.policy.choose_victim(self._entries, self._children)
        victim = self._entries.pop(victim_key)
        self._used -= victim.size_tokens
        self.metrics.evictions += 1
        if victim.parent is not None and victim.parent in self._children:
            self._children[victim.parent].discard(victim_key)
        # Orphan any children (they can no longer chain to the parent).
        for child_key in self._children.pop(victim_key, ()):
            child = self._entries.get(child_key)
            if child is not None:
                child.parent = None

    # ------------------------------------------------------------ inspect
    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_tokens(self) -> int:
        return self._used

    def keys(self) -> List[str]:
        return sorted(self._entries)
