"""Aggregate serving metrics: throughput, latency percentiles, goodput."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..utils import percentile
from .request import SLO, Request


@dataclass
class ServingReport:
    """Fleet-level summary of one simulated serving run."""

    requests: int
    completed: int
    makespan_s: float
    throughput_rps: float
    output_tokens_per_s: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tbt_p50: float
    tbt_p95: float
    tbt_p99: float
    max_tbt_p99: float
    slo_attainment: float
    goodput_rps: float
    mean_preemptions: float = 0.0
    prefix_hit_rate: float = 0.0
    rejected: int = 0
    mean_retries: float = 0.0

    def row(self) -> Dict[str, float]:
        """Flat dict for table rendering in benchmarks."""
        return {
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 3),
            "out_tok_per_s": round(self.output_tokens_per_s, 1),
            "ttft_p50_s": round(self.ttft_p50, 4),
            "ttft_p95_s": round(self.ttft_p95, 4),
            "ttft_p99_s": round(self.ttft_p99, 4),
            "tbt_p95_s": round(self.tbt_p95, 4),
            "tbt_p99_s": round(self.tbt_p99, 4),
            "slo_attainment": round(self.slo_attainment, 3),
            "goodput_rps": round(self.goodput_rps, 3),
        }


def summarize(
    requests: Sequence[Request], *, slo: Optional[SLO] = None
) -> ServingReport:
    """Build a :class:`ServingReport` from finished request timelines."""
    completed = [r for r in requests if r.done]
    rejected = sum(1 for r in requests if r.rejected)
    if not completed:
        return ServingReport(
            requests=len(requests), completed=0, makespan_s=0.0,
            throughput_rps=0.0, output_tokens_per_s=0.0,
            ttft_p50=float("inf"), ttft_p95=float("inf"), ttft_p99=float("inf"),
            tbt_p50=float("inf"), tbt_p95=float("inf"), tbt_p99=float("inf"),
            max_tbt_p99=float("inf"), slo_attainment=0.0, goodput_rps=0.0,
            rejected=rejected,
        )
    slo = slo or SLO()
    start = min(r.arrival_s for r in completed)
    end = max(r.finished_s for r in completed if r.finished_s is not None)
    makespan = max(end - start, 1e-9)
    ttfts = [r.ttft for r in completed if r.ttft is not None]
    tbts = [gap for r in completed for gap in r.tbt_values]
    max_tbts = [r.max_tbt for r in completed if r.max_tbt is not None]
    out_tokens = sum(len(r.token_times) for r in completed)
    attained = sum(1 for r in completed if slo.attained(r))
    return ServingReport(
        requests=len(requests),
        completed=len(completed),
        makespan_s=makespan,
        throughput_rps=len(completed) / makespan,
        output_tokens_per_s=out_tokens / makespan,
        ttft_p50=percentile(ttfts, 50) if ttfts else float("inf"),
        ttft_p95=percentile(ttfts, 95) if ttfts else float("inf"),
        ttft_p99=percentile(ttfts, 99) if ttfts else float("inf"),
        tbt_p50=percentile(tbts, 50) if tbts else 0.0,
        tbt_p95=percentile(tbts, 95) if tbts else 0.0,
        tbt_p99=percentile(tbts, 99) if tbts else 0.0,
        max_tbt_p99=percentile(max_tbts, 99) if max_tbts else 0.0,
        slo_attainment=attained / len(completed),
        goodput_rps=attained / makespan,
        mean_preemptions=sum(r.preemptions for r in completed) / len(completed),
        prefix_hit_rate=sum(1 for r in completed if r.prefix_hit) / len(completed),
        rejected=rejected,
        mean_retries=sum(r.retries for r in completed) / len(completed),
    )
