"""Aggregate serving metrics: throughput, latency percentiles, goodput.

Besides the flat :class:`ServingReport`, this module decomposes a
disaggregated run's latency into its four phases — prefill queueing,
prefill execution, KV transfer (plus decode queueing), and decode — at
p50/p95/p99 each.  The breakdown is what makes pool sizing actionable:
a fat ``queue_wait`` means the prefill pool is short, a fat ``transfer``
means the wire (or the decode queue behind it) is the bottleneck.  Two
entry points cover both simulators: :func:`fleet_phase_breakdown` reads
the columnar :class:`~repro.inference.fleet.FleetResult` of the pool
DES, :func:`phase_breakdown` reads token-level :class:`Request`
timelines from :class:`~repro.inference.pools.DisaggEngineFleet`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..utils import percentile
from .request import SLO, Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (fleet imports nothing here)
    from .fleet import FleetResult, FleetWorkload


@dataclass
class ServingReport:
    """Fleet-level summary of one simulated serving run."""

    requests: int
    completed: int
    makespan_s: float
    throughput_rps: float
    output_tokens_per_s: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    tbt_p50: float
    tbt_p95: float
    tbt_p99: float
    max_tbt_p99: float
    slo_attainment: float
    goodput_rps: float
    mean_preemptions: float = 0.0
    prefix_hit_rate: float = 0.0
    rejected: int = 0
    mean_retries: float = 0.0

    def row(self) -> Dict[str, float]:
        """Flat dict for table rendering in benchmarks."""
        return {
            "completed": self.completed,
            "throughput_rps": round(self.throughput_rps, 3),
            "out_tok_per_s": round(self.output_tokens_per_s, 1),
            "ttft_p50_s": round(self.ttft_p50, 4),
            "ttft_p95_s": round(self.ttft_p95, 4),
            "ttft_p99_s": round(self.ttft_p99, 4),
            "tbt_p95_s": round(self.tbt_p95, 4),
            "tbt_p99_s": round(self.tbt_p99, 4),
            "slo_attainment": round(self.slo_attainment, 3),
            "goodput_rps": round(self.goodput_rps, 3),
        }


@dataclass(frozen=True)
class PhaseStats:
    """Percentile summary of one latency phase across a run."""

    phase: str
    count: int
    mean_s: float
    p50_s: float
    p95_s: float
    p99_s: float

    def row(self) -> Dict[str, float]:
        return {
            "phase": self.phase,  # type: ignore[dict-item]
            "count": self.count,
            "mean_s": round(self.mean_s, 5),
            "p50_s": round(self.p50_s, 5),
            "p95_s": round(self.p95_s, 5),
            "p99_s": round(self.p99_s, 5),
        }


@dataclass(frozen=True)
class PoolBreakdown:
    """Per-phase latency decomposition of a disaggregated serving run.

    ``queue_wait`` is time from arrival to prefill admission, ``prefill``
    from admission to first token, ``transfer`` from first token to
    decode-side admission (wire delay plus any decode queueing), and
    ``decode`` from decode admission to completion.  Colocated requests
    contribute a zero-width transfer phase.
    """

    queue_wait: PhaseStats
    prefill: PhaseStats
    transfer: PhaseStats
    decode: PhaseStats

    @property
    def phases(self) -> List[PhaseStats]:
        return [self.queue_wait, self.prefill, self.transfer, self.decode]

    def rows(self) -> List[Dict[str, float]]:
        """One flat dict per phase, for table rendering."""
        return [p.row() for p in self.phases]


def _phase_stats(name: str, values: Sequence[float]) -> PhaseStats:
    vals = [v for v in values if not math.isnan(v)]
    if not vals:
        return PhaseStats(name, 0, 0.0, 0.0, 0.0, 0.0)
    return PhaseStats(
        phase=name,
        count=len(vals),
        mean_s=sum(vals) / len(vals),
        p50_s=percentile(vals, 50),
        p95_s=percentile(vals, 95),
        p99_s=percentile(vals, 99),
    )


def fleet_phase_breakdown(
    workload: "FleetWorkload", result: "FleetResult"
) -> PoolBreakdown:
    """Decompose a pool-DES :class:`FleetResult` into latency phases.

    Only requests that finished are counted; the transfer and decode
    phases additionally need the decode columns a disaggregated run
    fills (a plain colocated run yields empty phases there).
    """
    finish = result.finish_s
    done = ~np.isnan(finish)
    arrival = workload.arrival_s[done]
    start = result.start_s[done]
    first = result.first_token_s[done]
    queue_wait = (start - arrival).tolist()
    prefill = (first - start).tolist()
    transfer: List[float] = []
    decode: List[float] = []
    if result.decode_start_s is not None:
        dstart = result.decode_start_s[done]
        transfer = (dstart - first).tolist()
        decode = (finish[done] - dstart).tolist()
    return PoolBreakdown(
        queue_wait=_phase_stats("queue_wait", queue_wait),
        prefill=_phase_stats("prefill", prefill),
        transfer=_phase_stats("transfer", transfer),
        decode=_phase_stats("decode", decode),
    )


def phase_breakdown(requests: Sequence[Request]) -> PoolBreakdown:
    """Decompose token-level :class:`Request` timelines into phases.

    Works on :class:`~repro.inference.pools.DisaggEngineFleet` output
    (and degenerates gracefully on single-engine runs: transfer is empty
    and decode spans first token to finish).  Requests whose KV ship
    failed re-prefilled on the decode side, so they have no transfer
    phase — their prefill phase is the decode-side one.
    """
    queue_wait: List[float] = []
    prefill: List[float] = []
    transfer: List[float] = []
    decode: List[float] = []
    for r in requests:
        if not r.done or r.finished_s is None:
            continue
        if r.admitted_s is not None:
            queue_wait.append(r.admitted_s - r.arrival_s)
            if r.first_token_s is not None:
                prefill.append(r.first_token_s - r.admitted_s)
        if r.first_token_s is None:
            continue
        if r.kv_shipped and r.decode_admitted_s is not None:
            transfer.append(r.decode_admitted_s - r.first_token_s)
            decode.append(r.finished_s - r.decode_admitted_s)
        else:
            decode.append(r.finished_s - r.first_token_s)
    return PoolBreakdown(
        queue_wait=_phase_stats("queue_wait", queue_wait),
        prefill=_phase_stats("prefill", prefill),
        transfer=_phase_stats("transfer", transfer),
        decode=_phase_stats("decode", decode),
    )


def summarize(
    requests: Sequence[Request], *, slo: Optional[SLO] = None
) -> ServingReport:
    """Build a :class:`ServingReport` from finished request timelines."""
    completed = [r for r in requests if r.done]
    rejected = sum(1 for r in requests if r.rejected)
    if not completed:
        return ServingReport(
            requests=len(requests), completed=0, makespan_s=0.0,
            throughput_rps=0.0, output_tokens_per_s=0.0,
            ttft_p50=float("inf"), ttft_p95=float("inf"), ttft_p99=float("inf"),
            tbt_p50=float("inf"), tbt_p95=float("inf"), tbt_p99=float("inf"),
            max_tbt_p99=float("inf"), slo_attainment=0.0, goodput_rps=0.0,
            rejected=rejected,
        )
    slo = slo or SLO()
    start = min(r.arrival_s for r in completed)
    end = max(r.finished_s for r in completed if r.finished_s is not None)
    makespan = max(end - start, 1e-9)
    ttfts = [r.ttft for r in completed if r.ttft is not None]
    tbts = [gap for r in completed for gap in r.tbt_values]
    max_tbts = [r.max_tbt for r in completed if r.max_tbt is not None]
    out_tokens = sum(len(r.token_times) for r in completed)
    attained = sum(1 for r in completed if slo.attained(r))
    return ServingReport(
        requests=len(requests),
        completed=len(completed),
        makespan_s=makespan,
        throughput_rps=len(completed) / makespan,
        output_tokens_per_s=out_tokens / makespan,
        ttft_p50=percentile(ttfts, 50) if ttfts else float("inf"),
        ttft_p95=percentile(ttfts, 95) if ttfts else float("inf"),
        ttft_p99=percentile(ttfts, 99) if ttfts else float("inf"),
        tbt_p50=percentile(tbts, 50) if tbts else 0.0,
        tbt_p95=percentile(tbts, 95) if tbts else 0.0,
        tbt_p99=percentile(tbts, 99) if tbts else 0.0,
        max_tbt_p99=percentile(max_tbts, 99) if max_tbts else 0.0,
        slo_attainment=attained / len(completed),
        goodput_rps=attained / makespan,
        mean_preemptions=sum(r.preemptions for r in completed) / len(completed),
        prefix_hit_rate=sum(1 for r in completed if r.prefix_hit) / len(completed),
        rejected=rejected,
        mean_retries=sum(r.retries for r in completed) / len(completed),
    )
