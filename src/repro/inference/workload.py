"""Serving workload generators: Poisson arrivals, shared prefixes, multi-turn.

Substitutes for production request traces (DESIGN.md §1): arrival rate,
length distributions, prefix sharing, and conversation structure are
explicit parameters, matching the workload archetypes the cited systems
evaluate on (vLLM/Orca: Poisson single-turn; PromptCache/TensorRT: shared
system prompts; AttentionStore/Mooncake: multi-turn chats).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import WorkloadError
from ..utils import derive_rng
from .request import Request


@dataclass
class LengthDistribution:
    """Log-normal-ish token-length distribution clipped to [lo, hi]."""

    mean: int = 512
    sigma: float = 0.6
    lo: int = 16
    hi: int = 8192

    def sample(self, rng: np.random.Generator) -> int:
        import math

        mu = math.log(max(self.mean, 1))
        value = int(round(math.exp(rng.normal(mu, self.sigma))))
        return int(min(max(value, self.lo), self.hi))


def poisson_workload(
    *,
    rate_rps: float,
    duration_s: float,
    prompt_dist: Optional[LengthDistribution] = None,
    output_dist: Optional[LengthDistribution] = None,
    seed: int = 0,
) -> List[Request]:
    """Single-turn requests with exponential inter-arrivals."""
    if rate_rps <= 0 or duration_s <= 0:
        raise WorkloadError("rate and duration must be positive")
    prompt_dist = prompt_dist or LengthDistribution(mean=512)
    output_dist = output_dist or LengthDistribution(mean=128, lo=8, hi=1024)
    rng = derive_rng(seed, "poisson")
    requests: List[Request] = []
    t = 0.0
    i = 0
    while True:
        t += float(rng.exponential(1.0 / rate_rps))
        if t >= duration_s:
            break
        requests.append(
            Request(
                request_id=f"req-{i:05d}",
                arrival_s=t,
                prompt_tokens=prompt_dist.sample(rng),
                output_tokens=output_dist.sample(rng),
            )
        )
        i += 1
    return requests


def shared_prefix_workload(
    *,
    rate_rps: float,
    duration_s: float,
    num_prefixes: int = 4,
    prefix_tokens: int = 512,
    unique_prompt_dist: Optional[LengthDistribution] = None,
    output_dist: Optional[LengthDistribution] = None,
    seed: int = 0,
) -> List[Request]:
    """Requests sharing one of ``num_prefixes`` long system prompts.

    The prefix-cache experiments (E5) hinge on this shape: every request's
    first ``prefix_tokens`` tokens repeat across its group.
    """
    if num_prefixes <= 0 or prefix_tokens <= 0:
        raise WorkloadError("num_prefixes and prefix_tokens must be positive")
    unique_prompt_dist = unique_prompt_dist or LengthDistribution(mean=96, lo=8, hi=1024)
    output_dist = output_dist or LengthDistribution(mean=128, lo=8, hi=1024)
    rng = derive_rng(seed, "prefix")
    requests: List[Request] = []
    t = 0.0
    i = 0
    while True:
        t += float(rng.exponential(1.0 / rate_rps))
        if t >= duration_s:
            break
        prefix = int(rng.integers(0, num_prefixes))
        unique = unique_prompt_dist.sample(rng)
        requests.append(
            Request(
                request_id=f"req-{i:05d}",
                arrival_s=t,
                prompt_tokens=prefix_tokens + unique,
                output_tokens=output_dist.sample(rng),
                prefix_id=f"prefix-{prefix}",
                prefix_tokens=prefix_tokens,
            )
        )
        i += 1
    return requests


def multi_turn_workload(
    *,
    num_conversations: int,
    turns_per_conversation: int = 4,
    think_time_s: float = 20.0,
    first_prompt: Optional[LengthDistribution] = None,
    followup_prompt: Optional[LengthDistribution] = None,
    output_dist: Optional[LengthDistribution] = None,
    arrival_window_s: float = 60.0,
    seed: int = 0,
) -> List[Request]:
    """Multi-turn conversations (AttentionStore/Mooncake's workload).

    Each turn's prompt contains the *entire* conversation history plus a
    new user message — which is exactly why cross-turn KV reuse matters:
    without it every turn re-prefills the whole history.
    """
    if num_conversations <= 0 or turns_per_conversation <= 0:
        raise WorkloadError("conversation counts must be positive")
    first_prompt = first_prompt or LengthDistribution(mean=256, lo=32, hi=2048)
    followup_prompt = followup_prompt or LengthDistribution(mean=64, lo=8, hi=512)
    output_dist = output_dist or LengthDistribution(mean=160, lo=16, hi=1024)
    rng = derive_rng(seed, "multiturn")
    requests: List[Request] = []
    for c in range(num_conversations):
        start = float(rng.random() * arrival_window_s)
        history = 0
        t = start
        for turn in range(turns_per_conversation):
            new_tokens = (
                first_prompt.sample(rng) if turn == 0 else followup_prompt.sample(rng)
            )
            output = output_dist.sample(rng)
            prompt = history + new_tokens
            requests.append(
                Request(
                    request_id=f"conv{c:03d}-t{turn}",
                    arrival_s=t,
                    prompt_tokens=prompt,
                    output_tokens=output,
                    conversation_id=f"conv{c:03d}",
                    turn_index=turn,
                    prefix_id=f"conv{c:03d}",
                    prefix_tokens=history,
                )
            )
            history = prompt + output
            t += float(rng.exponential(think_time_s))
    requests.sort(key=lambda r: r.arrival_s)
    return requests
