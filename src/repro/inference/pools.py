"""Disaggregated prefill/decode replica pools at fleet scale.

The two-lane toy in :mod:`repro.inference.disaggregation` proves the E4
architecture point; this module makes it a *fleet* property (DistServe
[69], Splitwise [44], Mooncake [45]): :class:`ClusterFleet` replicas carry
a **role** — prefill, decode, or colocated — requests route prefix-aware
over the prefill pool, finished prefills ship their KV to a decode replica
chosen least-loaded, and the ship is priced by the shared
:class:`~repro.inference.transfer.TransferModel` (degraded windows and
transfer failures included).  On top of the handoff sit the ROADMAP
item-1 follow-ons: KV-aware **migration** of queued and running decode
work off hot or draining replicas (ship vs re-prefill decided by
:meth:`TransferModel.ship_wins`), pool-aware :data:`REPLICA_DEATH`
(``"pool-prefill"`` targets), and a **warm-up** delay on autoscale spawn.

Request life cycle (the "pull" KV protocol)::

    arrival --route--> prefill pool: queue, admit (KV = prompt), serve
      |  prefill finish: slot freed, KV stays *pinned* on the source
      +--ship--> decode pool: arrival event after the priced wire delay
            queue at dst, admit (KV = prompt+output); the source pin is
            released only now -- unshipped KV backpressures the prefill
            pool, exactly the failure mode disaggregation papers fight.
      |  decode finish: KV freed, request complete.

Colocated replicas serve end-to-end with the exact closed-form of the
plain fleet, which gives the metamorphic anchor: an all-colocated
:class:`PoolSpec` reproduces ``ClusterFleet.run`` **bitwise**.

perf_opt contract: ``benchmarks/perf/_legacy_disagg.py`` freezes the
naive pool DES — one global event heap over every arrival, finish,
handoff, retry and tick (stale entries lazily invalidated by generation
tags), per-decision full rescans of replica load, and per-handoff linear
scans of the fault windows.  The loop below shards all of that: one
finish heap per replica merged through a ``(top, replica)`` tournament,
one *incoming-handoff* heap per decode replica merged the same way,
packed integer load keys per role maintained incrementally, and
advancing cursors over the time-sorted fault windows.  Both realize the
identical total event order

    death < spawn < finish < handoff-arrival < retry < arrival < tick

(ties at equal time; finishes tie-break on ``(replica, request)``,
handoffs on ``(destination, ship sequence)``), so parity is bitwise
(``FleetResult.equals``) in every timed benchmark case.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..errors import ConfigError, SchedulerError
from ..faults import KV_DEGRADED, KV_TRANSFER_FAIL, FaultEvent, FaultPlan, RetryPolicy, pool_target
from ..utils import derive_rng
from .fleet import ClusterFleet, FleetResult, FleetWorkload
from .request import Request
from .router import LeastLoadedRouter, PrefixAwareRouter, RandomRouter, Router, RouterState
from .scheduler import STEP_HANDOFF, STEP_IDLE, ServingEngine
from .transfer import TransferModel

_INF = float("inf")

#: Replica roles, by slot position in a :class:`PoolSpec`.
ROLE_PREFILL = 0
ROLE_DECODE = 1
ROLE_COLOCATED = 2

ROLE_NAMES: Tuple[str, ...] = ("prefill", "decode", "colocated")


@dataclass(frozen=True)
class MigrationPolicy:
    """When and how queued/running decode work moves between replicas.

    A decode replica is *hot* when its queue exceeds ``hot_queue_ratio``
    times the pool mean (and at least ``min_queue``); each autoscale tick
    migrates its excess tail to the least-loaded other replica.  On a
    drain, ``drain_queued`` relocates the backlog immediately and
    ``drain_running`` also moves in-flight decodes — each request ships
    its KV only when :meth:`TransferModel.ship_wins` says the wire beats
    a from-scratch re-prefill (the explicit break-even rule).
    """

    hot_queue_ratio: float = 3.0
    min_queue: int = 4
    drain_queued: bool = True
    drain_running: bool = True

    def __post_init__(self) -> None:
        if self.hot_queue_ratio <= 1.0:
            raise ConfigError("hot_queue_ratio must exceed 1")
        if self.min_queue < 1:
            raise ConfigError("min_queue must be >= 1")


@dataclass(frozen=True)
class PoolSpec:
    """Role layout of a disaggregated fleet.

    Slot indices are assigned in order: ``[0, prefill)`` prefill,
    ``[prefill, prefill+decode)`` decode, then colocated.  Autoscale
    spawns join the pressured pool and pay ``warmup_s`` (model load +
    cache transfer) on top of the autoscale spawn delay.
    """

    prefill: int = 0
    decode: int = 0
    colocated: int = 0
    transfer: TransferModel = field(default_factory=TransferModel)
    warmup_s: float = 0.0
    migration: Optional[MigrationPolicy] = None

    def __post_init__(self) -> None:
        for name in ("prefill", "decode", "colocated"):
            if getattr(self, name) < 0:
                raise ConfigError(f"pool size {name!r} must be non-negative")
        if self.total < 1:
            raise ConfigError("a pool spec needs at least one replica")
        if (self.prefill > 0) != (self.decode > 0):
            raise ConfigError(
                "prefill and decode pools come in pairs: a prefill-only or "
                "decode-only fleet cannot serve a request end to end"
            )
        if self.warmup_s < 0.0:
            raise ConfigError("warmup_s must be non-negative")

    @property
    def total(self) -> int:
        """Total replica slots across all roles."""
        return self.prefill + self.decode + self.colocated

    @property
    def split(self) -> bool:
        """Does the spec actually disaggregate (vs all-colocated)?"""
        return self.prefill > 0

    def role_of(self, slot: int) -> int:
        """The role of an *initial* slot (spawned slots are dynamic)."""
        if slot < self.prefill:
            return ROLE_PREFILL
        if slot < self.prefill + self.decode:
            return ROLE_DECODE
        return ROLE_COLOCATED


def make_pool_routers(*, block_tokens: int = 64) -> Tuple[Router, Router]:
    """The recommended pair: prefix-aware prefill, least-loaded decode.

    Prefix caches only pay on the pool that runs prefills; decode
    placement is pure load balancing (the KV arrives by wire either way).
    """
    return (PrefixAwareRouter(block_tokens=block_tokens), LeastLoadedRouter())


# The loop below is the optimized counterpart of
# benchmarks/perf/_legacy_disagg.py:LegacyPoolFleet.run — any change here
# must preserve bitwise FleetResult parity with that frozen code.
def run_pool_fleet(fleet: "ClusterFleet", workload: FleetWorkload) -> FleetResult:
    """Simulate a disaggregated trace to completion (sharded pool DES)."""
    pools = fleet.pools
    assert pools is not None
    model = fleet.model
    n = workload.n
    need_l: List[int] = (workload.prompt_tokens + workload.output_tokens).tolist()
    need_max = max(need_l)
    if need_max > model.kv_capacity_tokens:
        raise ConfigError(
            "a request needs more KV than one replica holds "
            f"({need_max} > {model.kv_capacity_tokens})"
        )
    arr_l: List[float] = workload.arrival_s.tolist()
    prompt_l: List[int] = workload.prompt_tokens.tolist()
    out_l: List[int] = workload.output_tokens.tolist()
    code_l: List[int] = workload.prefix_code.tolist()
    ptok_l: List[int] = workload.prefix_tokens.tolist()

    max_replicas = fleet.max_replicas
    transfer = pools.transfer
    mig = pools.migration
    split = pools.split

    router = fleet.router
    decode_router = fleet.decode_router or LeastLoadedRouter()
    state_p = RouterState(max_replicas, model.kv_capacity_tokens)
    state_d = RouterState(max_replicas, model.kv_capacity_tokens)
    role_l = [pools.role_of(r) for r in range(pools.total)] + [-1] * (
        max_replicas - pools.total
    )
    for r in range(pools.total):
        if role_l[r] == ROLE_DECODE:
            state_d.routable[r] = True
        else:
            state_p.routable[r] = True
    state_p.rebuild_routable()
    state_d.rebuild_routable()
    router.bind(state_p)
    decode_router.bind(state_d)

    if type(router) is RandomRouter:
        mode = 0
        route_rng = derive_rng(router.seed, "fleet", router.stream)
    elif type(router) is LeastLoadedRouter:
        mode = 1
    elif type(router) is PrefixAwareRouter:
        mode = 2
    else:
        mode = 3
    if type(decode_router) is RandomRouter:
        mode_d = 0
        droute_rng = derive_rng(decode_router.seed, "fleet", decode_router.stream)
    elif type(decode_router) is LeastLoadedRouter:
        mode_d = 1
    else:
        mode_d = 3
    generic = mode == 3
    generic_d = mode_d == 3
    block_route = (
        router.block_tokens if isinstance(router, PrefixAwareRouter) else model.block_tokens
    )

    huge = 1 << 62
    span = model.kv_capacity_tokens + 1
    alive = [True] * pools.total + [False] * (max_replicas - pools.total)
    draining = [False] * max_replicas
    routable_f = list(alive)
    alive_count = pools.total
    depth_l = [0] * max_replicas
    running_l = [0] * max_replicas
    kv_l = [0] * max_replicas
    # One packed load key per replica, in its pool's array; the other
    # array keeps `huge` so an argmin can never cross pools.
    pkey_l = [
        0 if routable_f[r] and role_l[r] != ROLE_DECODE else huge
        for r in range(max_replicas)
    ]
    dkey_l = [
        0 if routable_f[r] and role_l[r] == ROLE_DECODE else huge
        for r in range(max_replicas)
    ]
    routable_p = [r for r in range(max_replicas) if routable_f[r] and role_l[r] != ROLE_DECODE]
    routable_d = [r for r in range(max_replicas) if routable_f[r] and role_l[r] == ROLE_DECODE]
    prefix_tab: Dict[int, List[int]] = {}
    holders: Dict[int, List[int]] = {}

    queues: List[Deque[int]] = [deque() for _ in range(max_replicas)]
    heaps: List[List[Tuple[float, int]]] = [[] for _ in range(max_replicas)]
    tops: List[float] = [_INF] * max_replicas
    fheap: List[Tuple[float, int]] = []
    fin_min = _INF
    # Incoming-handoff heaps: per decode replica, (arrival time, ship seq),
    # merged through the same lazy tournament pattern as the finish heaps.
    inc: List[List[Tuple[float, int]]] = [[] for _ in range(max_replicas)]
    itops: List[float] = [_INF] * max_replicas
    iheap: List[Tuple[float, int]] = []
    inc_min = _INF
    tq_i: List[int] = []  # ship seq -> request index

    # Per-request disaggregation state.  st_src pins the prefill replica
    # still holding the prompt KV (-1 = none); st_flag is the decode-entry
    # kind: 0 = KV ships/shipped (pin live), 1 = re-prefill on the decode
    # replica (KV lost), 2 = migrated mid-decode (st_rem seconds left).
    st_src = [-1] * n
    st_flag = [0] * n
    st_seq = [-1] * n
    st_rem = [0.0] * n
    res_gen = [0] * n  # bumped on retry/migration; tags naive heap entries
    pins: List[Set[int]] = [set() for _ in range(max_replicas)]

    res_rep = [-1] * n
    res_start = [float("nan")] * n
    res_first = [float("nan")] * n
    res_drep = [-1] * n
    res_dstart = [float("nan")] * n
    res_fin = [float("nan")] * n
    res_retry = [0] * n
    res_rej = [False] * n
    res_hit = [0] * n
    served = [0] * max_replicas
    completed = 0
    rejected = 0
    deaths = spawns = drains = reroutes = 0
    handoffs = migrations = shipped_migrations = reprefills = 0

    retry_heap: List[Tuple[float, int, int]] = []
    retry_seq = 0
    spawn_heap: List[Tuple[float, int, int]] = []
    spawn_seq = 0
    death_list = fleet._deaths
    di = 0
    fail_windows: List[FaultEvent] = []
    deg_windows: List[FaultEvent] = []
    if fleet._faults is not None:
        fail_windows = fleet._faults.of_kind(KV_TRANSFER_FAIL)
        deg_windows = fleet._faults.of_kind(KV_DEGRADED)
    fail_lo = 0
    deg_lo = 0
    scale = fleet.autoscale
    tick = scale.interval_s if scale is not None else _INF
    shed = fleet.shed_slo
    shed_ttft = shed.ttft_s if shed is not None else _INF
    retry_policy = fleet.retry
    slots = model.slots
    kv_cap = model.kv_capacity_tokens
    base = model.base_s
    per_pf = model.per_prefill_token_s
    per_out = model.per_output_token_s
    block = model.block_tokens
    clock = 0.0
    ptr = 0
    rng_buf: List[float] = []
    rng_ptr = 0
    drng_buf: List[float] = []
    drng_ptr = 0
    heappush = heapq.heappush
    heappop = heapq.heappop

    # ----------------------------------------------------- fault windows
    # Ships happen at event times, which never decrease, so both cursors
    # only ever advance (the frozen baseline rescans the full lists).
    def fail_covers(t: float, i: int) -> bool:
        nonlocal fail_lo
        while fail_lo < len(fail_windows) and fail_windows[fail_lo].end_s < t:
            fail_lo += 1
        j = fail_lo
        while j < len(fail_windows) and fail_windows[j].at_s <= t:
            e = fail_windows[j]
            if e.end_s >= t and (e.target is None or e.target == "req-%07d" % i):
                return True
            j += 1
        return False

    def degraded_severity(t: float) -> float:
        nonlocal deg_lo
        while deg_lo < len(deg_windows) and deg_windows[deg_lo].end_s < t:
            deg_lo += 1
        j = deg_lo
        while j < len(deg_windows) and deg_windows[j].at_s <= t:
            if deg_windows[j].end_s >= t:
                return deg_windows[j].severity
            j += 1
        return 1.0

    # ------------------------------------------------------ KV plumbing
    def release_pin(i: int) -> None:
        src = st_src[i]
        kv_l[src] -= prompt_l[i]
        if routable_f[src]:
            pkey_l[src] -= prompt_l[i]
        pins[src].discard(i)
        st_src[i] = -1

    def schedule_arrival(i: int, t_a: float, dst: int) -> None:
        nonlocal inc_min
        sq = len(tq_i)
        tq_i.append(i)
        st_seq[i] = sq
        heappush(inc[dst], (t_a, sq))
        if t_a < itops[dst]:
            itops[dst] = t_a
            heappush(iheap, (t_a, dst))
            if t_a < inc_min:
                inc_min = t_a

    def decode_route(i: int, excl: int = -1) -> int:
        nonlocal drng_buf, drng_ptr
        if excl < 0:
            if not routable_d:
                raise SchedulerError("no routable decode replicas")
            if mode_d == 1:
                return dkey_l.index(min(dkey_l))
            if mode_d == 0:
                if drng_ptr >= len(drng_buf):
                    drng_buf = droute_rng.random(8192).tolist()
                    drng_ptr = 0
                u = drng_buf[drng_ptr]
                drng_ptr += 1
                k = len(routable_d)
                j = int(u * k)
                if j >= k:
                    j = k - 1
                return routable_d[j]
            state_d.queue_depth[:] = depth_l
            state_d.running[:] = running_l
            state_d.kv_used[:] = kv_l
            return decode_router.route(code_l[i], ptok_l[i])
        # Exclusion variants run only on rare migration events.
        cands = [r2 for r2 in routable_d if r2 != excl]
        if not cands:
            raise SchedulerError("no routable decode replicas")
        if mode_d == 1:
            return min(cands, key=lambda r2: dkey_l[r2])
        if mode_d == 0:
            if drng_ptr >= len(drng_buf):
                drng_buf = droute_rng.random(8192).tolist()
                drng_ptr = 0
            u = drng_buf[drng_ptr]
            drng_ptr += 1
            k = len(cands)
            j = int(u * k)
            if j >= k:
                j = k - 1
            return cands[j]
        was = bool(state_d.routable[excl])
        state_d.routable[excl] = False
        state_d.rebuild_routable()
        state_d.queue_depth[:] = depth_l
        state_d.running[:] = running_l
        state_d.kv_used[:] = kv_l
        r2 = decode_router.route(code_l[i], ptok_l[i])
        state_d.routable[excl] = was
        state_d.rebuild_routable()
        return r2

    def ship_kv(i: int, src: int, t: float, excl: int = -1) -> None:
        """Price and schedule the prompt-KV ship ``src -> decode pool``.

        The pin on ``src`` must already be set.  A ship starting inside a
        KV_TRANSFER_FAIL window burns the full wire time plus backoff and
        converts to a decode-side re-prefill — the source KV is released
        immediately (the payload is gone either way).
        """
        nonlocal handoffs, reprefills
        handoffs += 1
        dst = decode_route(i, excl)
        if fail_covers(t, i):
            res_retry[i] += 1
            delay = transfer.raw_delay(prompt_l[i]) + retry_policy.delay_s(res_retry[i])
            release_pin(i)
            st_flag[i] = 1
            reprefills += 1
        else:
            delay = transfer.visible_delay(prompt_l[i])
            sev = degraded_severity(t)
            if sev != 1.0:
                delay /= sev
            st_flag[i] = 0
        schedule_arrival(i, t + delay, dst)

    def ship_resume(i: int, t: float) -> None:
        """Ship a mid-decode migration payload (prompt + output KV)."""
        nonlocal handoffs, reprefills
        handoffs += 1
        dst = decode_route(i)
        if fail_covers(t, i):
            res_retry[i] += 1
            delay = transfer.raw_delay(need_l[i]) + retry_policy.delay_s(res_retry[i])
            st_flag[i] = 1
            reprefills += 1
        else:
            delay = transfer.visible_delay(need_l[i])
            sev = degraded_severity(t)
            if sev != 1.0:
                delay /= sev
        schedule_arrival(i, t + delay, dst)

    # -------------------------------------------------------- admission
    def try_start_colo(r: int, t: float) -> None:
        nonlocal rejected, fin_min
        q = queues[r]
        top = tops[r]
        rt = routable_f[r]
        while q and running_l[r] < slots:
            i = q[0]
            if t - arr_l[i] > shed_ttft:
                q.popleft()
                depth_l[r] -= 1
                if rt:
                    pkey_l[r] -= span
                res_rej[i] = True
                rejected += 1
                continue
            need = need_l[i]
            if kv_l[r] + need > kv_cap:
                break
            q.popleft()
            depth_l[r] -= 1
            running_l[r] += 1
            kv_l[r] += need
            if rt:
                pkey_l[r] += need
            hit = 0
            code = code_l[i]
            if code >= 0:
                pt = ptok_l[i]
                col = prefix_tab.get(code)
                if col is None:
                    col = [0] * max_replicas
                    col[r] = pt
                    prefix_tab[code] = col
                    if pt > 0:
                        holders[code] = [r]
                    if generic:
                        state_p.record_prefix(code, r, pt)
                else:
                    cached = col[r]
                    m = cached if cached < pt else pt
                    hit = m - m % block
                    if pt > cached:
                        col[r] = pt
                        if cached == 0:
                            holders.setdefault(code, []).append(r)
                        if generic:
                            state_p.record_prefix(code, r, pt)
            eff = prompt_l[i] - hit
            if eff < 1:
                eff = 1
            first = t + (base + eff * per_pf)
            fin = first + (out_l[i] - 1) * per_out
            res_rep[i] = r
            res_start[i] = t
            res_hit[i] = hit
            res_first[i] = first
            res_drep[i] = r
            res_dstart[i] = first
            res_fin[i] = fin
            heappush(heaps[r], (fin, i))
            if fin < top:
                top = fin
        if top != tops[r]:
            tops[r] = top
            heappush(fheap, (top, r))
            if top < fin_min:
                fin_min = top

    def try_start_prefill(r: int, t: float) -> None:
        nonlocal rejected, fin_min
        q = queues[r]
        top = tops[r]
        rt = routable_f[r]
        while q and running_l[r] < slots:
            i = q[0]
            if t - arr_l[i] > shed_ttft:
                q.popleft()
                depth_l[r] -= 1
                if rt:
                    pkey_l[r] -= span
                res_rej[i] = True
                rejected += 1
                continue
            need = prompt_l[i]  # prefill holds prompt KV only
            if kv_l[r] + need > kv_cap:
                break
            q.popleft()
            depth_l[r] -= 1
            running_l[r] += 1
            kv_l[r] += need
            if rt:
                pkey_l[r] += need
            hit = 0
            code = code_l[i]
            if code >= 0:
                pt = ptok_l[i]
                col = prefix_tab.get(code)
                if col is None:
                    col = [0] * max_replicas
                    col[r] = pt
                    prefix_tab[code] = col
                    if pt > 0:
                        holders[code] = [r]
                    if generic:
                        state_p.record_prefix(code, r, pt)
                else:
                    cached = col[r]
                    m = cached if cached < pt else pt
                    hit = m - m % block
                    if pt > cached:
                        col[r] = pt
                        if cached == 0:
                            holders.setdefault(code, []).append(r)
                        if generic:
                            state_p.record_prefix(code, r, pt)
            eff = prompt_l[i] - hit
            if eff < 1:
                eff = 1
            first = t + (base + eff * per_pf)
            res_rep[i] = r
            res_start[i] = t
            res_hit[i] = hit
            res_first[i] = first
            heappush(heaps[r], (first, i))
            if first < top:
                top = first
        if top != tops[r]:
            tops[r] = top
            heappush(fheap, (top, r))
            if top < fin_min:
                fin_min = top

    def try_start_decode(r: int, t: float) -> None:
        nonlocal fin_min
        q = queues[r]
        top = tops[r]
        rt = routable_f[r]
        freed: List[int] = []
        while q and running_l[r] < slots:
            i = q[0]
            need = need_l[i]
            if kv_l[r] + need > kv_cap:
                break
            q.popleft()
            depth_l[r] -= 1
            running_l[r] += 1
            kv_l[r] += need
            if rt:
                dkey_l[r] += need
            flag = st_flag[i]
            if flag == 0:
                # The pin releases at admission, not at wire arrival:
                # until the receiver owns the KV, the source can't evict.
                fin = t + (out_l[i] - 1) * per_out
                freed.append(st_src[i])
                release_pin(i)
            elif flag == 1:
                fin = t + (base + prompt_l[i] * per_pf) + (out_l[i] - 1) * per_out
            else:
                fin = t + st_rem[i]
            res_drep[i] = r
            res_dstart[i] = t
            res_fin[i] = fin
            heappush(heaps[r], (fin, i))
            if fin < top:
                top = fin
        if top != tops[r]:
            tops[r] = top
            heappush(fheap, (top, r))
            if top < fin_min:
                fin_min = top
        for src in freed:  # may repeat a source; try_start is idempotent
            if queues[src] and running_l[src] < slots:
                try_start_prefill(src, t)
            if (
                draining[src]
                and running_l[src] == 0
                and not queues[src]
                and kv_l[src] == 0
                and not inc[src]
            ):
                retire(src)

    # ---------------------------------------------------------- routing
    def route_arrival(i: int, t: float) -> None:
        nonlocal rng_buf, rng_ptr
        if not routable_p:
            raise SchedulerError("no routable prefill/colocated replicas")
        if mode == 0:
            if rng_ptr >= len(rng_buf):
                rng_buf = route_rng.random(8192).tolist()
                rng_ptr = 0
            u = rng_buf[rng_ptr]
            rng_ptr += 1
            k = len(routable_p)
            j = int(u * k)
            if j >= k:
                j = k - 1
            r = routable_p[j]
        elif mode == 1:
            r = pkey_l.index(min(pkey_l))
        elif mode == 2:
            r = -1
            code = code_l[i]
            pt = ptok_l[i]
            if code >= 0 and pt > 0:
                hl = holders.get(code)
                if hl is not None:
                    col = prefix_tab[code]
                    best = 0
                    bk = 0
                    for r2 in hl:
                        if not routable_f[r2]:
                            continue
                        c = col[r2]
                        m = c if c < pt else pt
                        h = m - m % block_route
                        if h <= 0:
                            continue
                        if h > best:
                            best = h
                            bk = pkey_l[r2]
                            r = r2
                        elif h == best:
                            k2 = pkey_l[r2]
                            if k2 < bk or (k2 == bk and r2 < r):
                                bk = k2
                                r = r2
            if r < 0:
                r = pkey_l.index(min(pkey_l))
        else:
            state_p.queue_depth[:] = depth_l
            state_p.running[:] = running_l
            state_p.kv_used[:] = kv_l
            r = router.route(code_l[i], ptok_l[i])
        queues[r].append(i)
        depth_l[r] += 1
        if routable_f[r]:
            pkey_l[r] += span
        if running_l[r] < slots:
            if role_l[r] == ROLE_COLOCATED:
                try_start_colo(r, t)
            else:
                try_start_prefill(r, t)

    def requeue_decode(i: int, t: float) -> None:
        """Re-place one displaced decode-queue entry at time ``t``."""
        nonlocal reprefills
        flag = st_flag[i]
        if flag == 0:
            ship_kv(i, st_src[i], t)  # payload must cross the wire again
            return
        if flag == 2:
            st_flag[i] = 1  # the shipped snapshot is gone; restart decode
            reprefills += 1
        dst = decode_route(i)
        queues[dst].append(i)
        depth_l[dst] += 1
        if routable_f[dst]:
            dkey_l[dst] += span
        if running_l[dst] < slots:
            try_start_decode(dst, t)

    def migrate_entry(i: int, t: float, excl: int) -> None:
        """Move one queued decode entry off a hot replica (break-even)."""
        nonlocal migrations, shipped_migrations, reprefills
        migrations += 1
        flag = st_flag[i]
        if flag == 0:
            src = st_src[i]
            if transfer.ship_wins(prompt_l[i], base + prompt_l[i] * per_pf):
                shipped_migrations += 1
                ship_kv(i, src, t, excl)
                if st_flag[i] == 1:  # the re-ship failed: source KV freed
                    if queues[src] and running_l[src] < slots:
                        try_start_prefill(src, t)
                    if (
                        draining[src]
                        and running_l[src] == 0
                        and not queues[src]
                        and kv_l[src] == 0
                        and not inc[src]
                    ):
                        retire(src)
                return
            release_pin(i)
            st_flag[i] = 1
            reprefills += 1
            dst = decode_route(i, excl)
            queues[dst].append(i)
            depth_l[dst] += 1
            if routable_f[dst]:
                dkey_l[dst] += span
            if running_l[dst] < slots:
                try_start_decode(dst, t)
            if queues[src] and running_l[src] < slots:
                try_start_prefill(src, t)
            if (
                draining[src]
                and running_l[src] == 0
                and not queues[src]
                and kv_l[src] == 0
                and not inc[src]
            ):
                retire(src)
            return
        if flag == 2:
            st_flag[i] = 1
            reprefills += 1
        dst = decode_route(i, excl)
        queues[dst].append(i)
        depth_l[dst] += 1
        if routable_f[dst]:
            dkey_l[dst] += span
        if running_l[dst] < slots:
            try_start_decode(dst, t)

    # ------------------------------------------------------- membership
    def membership_changed() -> None:
        nonlocal routable_p, routable_d
        routable_p = [
            r for r in range(max_replicas) if routable_f[r] and role_l[r] != ROLE_DECODE
        ]
        routable_d = [
            r for r in range(max_replicas) if routable_f[r] and role_l[r] == ROLE_DECODE
        ]
        state_p.rebuild_routable()
        state_d.rebuild_routable()
        router.on_membership_change()
        decode_router.on_membership_change()

    def drop_prefixes(r: int) -> None:
        for code, col in prefix_tab.items():
            if col[r]:
                col[r] = 0
                holders[code].remove(r)

    def retire(r: int) -> None:
        nonlocal alive_count, drains
        alive[r] = False
        draining[r] = False
        alive_count -= 1
        drains += 1
        depth_l[r] = 0
        running_l[r] = 0
        kv_l[r] = 0
        if role_l[r] != ROLE_DECODE:
            drop_prefixes(r)
        state_p.reset_counters(r)
        state_p.clear_replica(r)
        state_d.reset_counters(r)
        state_d.clear_replica(r)

    def retry_or_reject(i: int, event: FaultEvent) -> None:
        nonlocal rejected, retry_seq
        res_retry[i] += 1
        res_rep[i] = -1
        res_start[i] = float("nan")
        res_hit[i] = 0
        res_first[i] = float("nan")
        res_drep[i] = -1
        res_dstart[i] = float("nan")
        res_fin[i] = float("nan")
        st_src[i] = -1
        st_flag[i] = 0
        st_seq[i] = -1
        st_rem[i] = 0.0
        res_gen[i] += 1
        if retry_policy.exhausted(res_retry[i]):
            res_rej[i] = True
            rejected += 1
        else:
            ready = event.end_s + retry_policy.delay_s(res_retry[i])
            heappush(retry_heap, (ready, retry_seq, i))
            retry_seq += 1

    def fix_fheap(r: int) -> None:
        """Re-establish fin_min after replica ``r``'s heap was cleared."""
        nonlocal fin_min
        tops[r] = _INF
        while fheap:
            f0, r0 = fheap[0]
            if tops[r0] == f0:
                fin_min = f0
                break
            heappop(fheap)
        else:
            fin_min = _INF

    def fix_iheap(r: int) -> None:
        nonlocal inc_min
        itops[r] = _INF
        while iheap:
            f0, r0 = iheap[0]
            if itops[r0] == f0:
                inc_min = f0
                break
            heappop(iheap)
        else:
            inc_min = _INF

    def drain_decode(r: int, t: float) -> None:
        """KV-aware evacuation of a draining decode replica."""
        nonlocal migrations, shipped_migrations, reprefills
        assert mig is not None
        if mig.drain_queued:
            while queues[r]:
                i = queues[r].popleft()
                depth_l[r] -= 1  # r is already unroutable: no key update
                migrate_entry(i, t, -1)  # r left routable_d when it drained
        if mig.drain_running and heaps[r]:
            # repro-lint: disable=R010 — rare drain event; the sort fixes
            # the (finish, request) processing order before the heap dies
            for fin, i in sorted(heaps[r]):
                res_gen[i] += 1
                running_l[r] -= 1
                kv_l[r] -= need_l[i]
                remaining = fin - t
                recompute = (base + prompt_l[i] * per_pf) + (out_l[i] - 1) * per_out
                migrations += 1
                if transfer.ship_wins(need_l[i], recompute, remaining):
                    shipped_migrations += 1
                    st_flag[i] = 2
                    st_rem[i] = remaining
                    st_src[i] = -1
                    ship_resume(i, t)
                else:
                    reprefills += 1
                    st_flag[i] = 1
                    st_src[i] = -1
                    dst = decode_route(i)
                    queues[dst].append(i)
                    depth_l[dst] += 1
                    if routable_f[dst]:
                        dkey_l[dst] += span
                    if running_l[dst] < slots:
                        try_start_decode(dst, t)
            heaps[r] = []
            fix_fheap(r)

    # -------------------------------------------------------- main loop
    while completed + rejected < n:
        t_death = death_list[di].at_s if di < len(death_list) else _INF
        t_spawn = spawn_heap[0][0] if spawn_heap else _INF
        t_retry = retry_heap[0][0] if retry_heap else _INF
        t_tick = tick
        t_rare_hi = t_death if t_death <= t_spawn else t_spawn
        # Hot inner loop: finishes, handoff arrivals, and workload
        # arrivals strictly ordered ahead of every rare event (ties per
        # the module-docstring priority ladder).
        while True:
            t_arr = arr_l[ptr] if ptr < n else _INF
            t_fin = fin_min
            t_inc = inc_min
            if (
                t_fin < t_rare_hi
                and t_fin <= t_inc
                and t_fin <= t_retry
                and t_fin <= t_arr
                and t_fin <= t_tick
            ):
                r = fheap[0][1]  # head is live: fheap[0][0] == fin_min
                heappop(fheap)
                fin, i = heappop(heaps[r])
                if heaps[r]:
                    top = heaps[r][0][0]
                    tops[r] = top
                    heappush(fheap, (top, r))
                else:
                    tops[r] = _INF
                while fheap:  # discard stale entries off the head
                    f0, r0 = fheap[0]
                    if tops[r0] == f0:
                        fin_min = f0
                        break
                    heappop(fheap)
                else:
                    fin_min = _INF
                clock = fin
                role = role_l[r]
                if role == ROLE_PREFILL:
                    running_l[r] -= 1
                    if routable_f[r]:
                        pkey_l[r] -= span
                    served[r] += 1
                    st_src[i] = r
                    pins[r].add(i)
                    ship_kv(i, r, fin)
                    if queues[r] and running_l[r] < slots:
                        try_start_prefill(r, fin)
                    if (
                        draining[r]
                        and running_l[r] == 0
                        and not queues[r]
                        and kv_l[r] == 0
                        and not inc[r]
                    ):
                        retire(r)
                elif role == ROLE_DECODE:
                    running_l[r] -= 1
                    kv_l[r] -= need_l[i]
                    if routable_f[r]:
                        dkey_l[r] -= span + need_l[i]
                    completed += 1
                    served[r] += 1
                    if queues[r]:
                        try_start_decode(r, fin)
                    if (
                        draining[r]
                        and running_l[r] == 0
                        and not queues[r]
                        and kv_l[r] == 0
                        and not inc[r]
                    ):
                        retire(r)
                else:
                    running_l[r] -= 1
                    kv_l[r] -= need_l[i]
                    if routable_f[r]:
                        pkey_l[r] -= span + need_l[i]
                    completed += 1
                    served[r] += 1
                    if queues[r]:
                        try_start_colo(r, fin)
                    if (
                        draining[r]
                        and running_l[r] == 0
                        and not queues[r]
                        and kv_l[r] == 0
                        and not inc[r]
                    ):
                        retire(r)
                continue
            if (
                t_inc < t_rare_hi
                and t_inc < t_fin
                and t_inc <= t_retry
                and t_inc <= t_arr
                and t_inc <= t_tick
            ):
                dst = iheap[0][1]
                heappop(iheap)
                t_a, sq = heappop(inc[dst])
                if inc[dst]:
                    top = inc[dst][0][0]
                    itops[dst] = top
                    heappush(iheap, (top, dst))
                else:
                    itops[dst] = _INF
                while iheap:
                    f0, r0 = iheap[0]
                    if itops[r0] == f0:
                        inc_min = f0
                        break
                    heappop(iheap)
                else:
                    inc_min = _INF
                clock = t_a
                i = tq_i[sq]
                st_seq[i] = -1
                queues[dst].append(i)
                depth_l[dst] += 1
                if routable_f[dst]:
                    dkey_l[dst] += span
                if running_l[dst] < slots:
                    try_start_decode(dst, t_a)
                continue
            if (
                t_arr < t_rare_hi
                and t_arr < t_retry
                and t_arr < t_fin
                and t_arr < t_inc
                and t_arr <= t_tick
            ):
                clock = t_arr
                route_arrival(ptr, t_arr)
                ptr += 1
                continue
            break
        if completed + rejected >= n:
            break
        # Rare event dispatch: smallest (time, priority).
        best_t = t_death
        best_kind = 0
        if t_spawn < best_t:
            best_t, best_kind = t_spawn, 1
        if t_retry < best_t:
            best_t, best_kind = t_retry, 2
        if t_tick < best_t:
            best_t, best_kind = t_tick, 3
        if best_t == _INF:
            raise SchedulerError(
                "pool fleet stalled: queued work but no runnable event "
                f"({completed + rejected}/{n} settled)"
            )
        clock = best_t
        if best_kind == 0:
            event = death_list[di]
            di += 1
            role_want = pool_target(event.target)
            victim = -1
            if event.target is not None and role_want is None:
                name = event.target
                if name.startswith("replica-"):
                    slot = int(name[len("replica-") :])
                    if 0 <= slot < max_replicas and alive[slot]:
                        victim = slot
            else:
                want = -1 if role_want is None else ROLE_NAMES.index(role_want)
                cands = [
                    r
                    for r in range(max_replicas)
                    if alive[r]
                    and not draining[r]
                    and (want < 0 or role_l[r] == want)
                ]
                if not cands:
                    cands = [
                        r
                        for r in range(max_replicas)
                        if alive[r] and (want < 0 or role_l[r] == want)
                    ]
                if cands:
                    victim = cands[deaths % len(cands)]
            if victim < 0:
                continue  # nothing to kill (all dead or bad target)
            fleet.fault_log.append(event)
            deaths += 1
            r = victim
            role = role_l[r]
            alive[r] = False
            draining[r] = False
            routable_f[r] = False
            if role == ROLE_DECODE:
                dkey_l[r] = huge
            else:
                pkey_l[r] = huge
            alive_count -= 1
            state_p.routable[r] = False
            state_d.routable[r] = False
            membership_changed()
            # Requests whose prompt KV was pinned on the victim lose it:
            # wherever they are (on the wire or queued at a decode
            # replica), they continue as decode-side re-prefills.
            if pins[r]:
                # repro-lint: disable=R010 — rare death event; sorted()
                # fixes the conversion order for parity with the baseline
                for i in sorted(pins[r]):
                    st_src[i] = -1
                    st_flag[i] = 1
                    reprefills += 1
                pins[r].clear()
            in_flight = sorted(heaps[r])
            heaps[r] = []
            fix_fheap(r)
            # repro-lint: disable=R010 — runs only on rare REPLICA_DEATH
            # fault events, and the copy is required before .clear()
            stranded = list(queues[r])
            queues[r].clear()
            incoming: List[Tuple[float, int]] = []
            if role == ROLE_DECODE:
                incoming = sorted(inc[r])
                inc[r] = []
                fix_iheap(r)
            depth_l[r] = 0
            running_l[r] = 0
            kv_l[r] = 0
            if role != ROLE_DECODE:
                drop_prefixes(r)
            state_p.reset_counters(r)
            state_p.clear_replica(r)
            state_d.reset_counters(r)
            state_d.clear_replica(r)
            for _, i in in_flight:
                retry_or_reject(i, event)
            if role == ROLE_DECODE:
                for i in stranded:
                    reroutes += 1
                    requeue_decode(i, event.at_s)
                for t_a, sq in incoming:
                    i = tq_i[sq]
                    st_seq[i] = -1
                    reroutes += 1
                    if st_flag[i] == 0:
                        # KV still pinned on the source: ship it again.
                        ship_kv(i, st_src[i], event.at_s)
                    else:
                        if st_flag[i] == 2:
                            st_flag[i] = 1  # snapshot died with the replica
                            reprefills += 1
                        dst = decode_route(i)
                        schedule_arrival(i, t_a, dst)  # redirect in flight
            else:
                for i in stranded:
                    reroutes += 1
                    route_arrival(i, event.at_s)
        elif best_kind == 1:
            _, _, srole = heappop(spawn_heap)
            slot = -1
            for r in range(max_replicas):
                if not alive[r]:
                    slot = r
                    break
            if slot >= 0:
                alive[slot] = True
                draining[slot] = False
                routable_f[slot] = True
                role_l[slot] = srole
                if srole == ROLE_DECODE:
                    dkey_l[slot] = 0
                    pkey_l[slot] = huge
                    state_d.routable[slot] = True
                else:
                    pkey_l[slot] = 0
                    dkey_l[slot] = huge
                    state_p.routable[slot] = True
                alive_count += 1
                spawns += 1
                membership_changed()
        elif best_kind == 2:
            _, _, i = heappop(retry_heap)
            route_arrival(i, best_t)
        else:
            tick = tick + scale.interval_s  # type: ignore[union-attr]
            if scale is not None:
                nr_p = len(routable_p)
                nr_d = len(routable_d)
                if nr_p > 0 or nr_d > 0:
                    wp = 0
                    for r in routable_p:
                        wp += depth_l[r]
                    mp = wp / nr_p if nr_p > 0 else _INF
                    if split:
                        wd = 0
                        for r in routable_d:
                            wd += depth_l[r]
                        md = wd / nr_d if nr_d > 0 else _INF
                        if mp >= md:
                            srole, sper = ROLE_PREFILL, mp
                        else:
                            srole, sper = ROLE_DECODE, md
                    else:
                        srole, sper = ROLE_COLOCATED, mp
                    if (
                        sper > scale.high_queue_per_replica
                        and alive_count + len(spawn_heap) < scale.max_replicas
                    ):
                        heappush(
                            spawn_heap,
                            (
                                best_t + scale.spawn_delay_s + pools.warmup_s,
                                spawn_seq,
                                srole,
                            ),
                        )
                        spawn_seq += 1
                    elif not split:
                        if (
                            mp < scale.low_queue_per_replica
                            and nr_p > scale.min_replicas
                        ):
                            r = routable_p[nr_p - 1]
                            draining[r] = True
                            routable_f[r] = False
                            pkey_l[r] = huge
                            state_p.routable[r] = False
                            membership_changed()
                            if running_l[r] == 0 and not queues[r] and kv_l[r] == 0:
                                retire(r)  # colocated: never a handoff target
                    elif (
                        mp < scale.low_queue_per_replica
                        and nr_p > 1
                        and alive_count > scale.min_replicas
                    ):
                        r = routable_p[nr_p - 1]
                        draining[r] = True
                        routable_f[r] = False
                        pkey_l[r] = huge
                        state_p.routable[r] = False
                        membership_changed()
                        if (
                            running_l[r] == 0
                            and not queues[r]
                            and kv_l[r] == 0
                            and not inc[r]
                        ):
                            retire(r)
                    elif (
                        md < scale.low_queue_per_replica
                        and nr_d > 1
                        and alive_count > scale.min_replicas
                    ):
                        r = routable_d[nr_d - 1]
                        draining[r] = True
                        routable_f[r] = False
                        dkey_l[r] = huge
                        state_d.routable[r] = False
                        membership_changed()
                        if mig is not None:
                            drain_decode(r, best_t)
                        if (
                            running_l[r] == 0
                            and not queues[r]
                            and kv_l[r] == 0
                            and not inc[r]
                        ):
                            retire(r)
                # Hot-spot rebalancing: the tick also sweeps the decode
                # pool for outlier queues and migrates their excess tail.
                if mig is not None and len(routable_d) >= 2:
                    nr_d = len(routable_d)
                    wd = 0
                    for r in routable_d:
                        wd += depth_l[r]
                    mean_d = wd / nr_d
                    for r in routable_d:
                        d = depth_l[r]
                        if d >= mig.min_queue and d > mig.hot_queue_ratio * mean_d:
                            excess = d - int(mean_d)
                            for _ in range(excess):
                                if not queues[r]:
                                    break
                                i = queues[r].pop()  # tail waited least
                                depth_l[r] -= 1
                                dkey_l[r] -= span
                                migrate_entry(i, best_t, r)

    # The conservation invariant behind the death-storm regression tests:
    # every reserved KV token and every pin must have been released.
    bad = [
        r
        for r in range(max_replicas)
        if kv_l[r] != 0 or running_l[r] != 0 or pins[r]
    ]
    if bad:
        raise SchedulerError(
            "KV ledger leak after pool run: replicas "
            + ", ".join(
                f"{r}(kv={kv_l[r]}, running={running_l[r]}, pins={len(pins[r])})"
                for r in bad
            )
        )

    return FleetResult(
        replica=np.asarray(res_rep, dtype=np.int64),
        start_s=np.asarray(res_start, dtype=np.float64),
        first_token_s=np.asarray(res_first, dtype=np.float64),
        finish_s=np.asarray(res_fin, dtype=np.float64),
        retries=np.asarray(res_retry, dtype=np.int64),
        rejected=np.asarray(res_rej, dtype=np.bool_),
        prefix_hit_tokens=np.asarray(res_hit, dtype=np.int64),
        completed=completed,
        rejected_total=rejected,
        deaths=deaths,
        spawns=spawns,
        drains=drains,
        reroutes=reroutes,
        served_per_replica=np.asarray(served, dtype=np.int64),
        sim_end_s=clock,
        decode_replica=np.asarray(res_drep, dtype=np.int64),
        decode_start_s=np.asarray(res_dstart, dtype=np.float64),
        handoffs=handoffs,
        migrations=migrations,
        shipped_migrations=shipped_migrations,
        reprefills=reprefills,
    )


# ==================================================== token-level disagg
class _PoolEngine:
    """One token-level pool slot: an engine and its arrival deque."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine
        self.pending: Deque[Request] = deque()
        self.active = False


class DisaggEngineFleet:
    """Token-level disaggregation: prefill engines feeding decode engines.

    The pool DES above answers fleet-scale questions with an aggregate
    latency model; this class answers *mechanism* questions with real
    :class:`~repro.inference.scheduler.ServingEngine` instances — batching
    policies, chunked prefill, KV allocators, and per-token timelines all
    participate.  Prefill engines run in ``handoff_mode`` (a sequence
    retires at its first token); each drained request's KV ship is priced
    by the shared :class:`~repro.inference.transfer.TransferModel`
    (KV_TRANSFER_FAIL windows convert the ship into a decode-side
    re-prefill with backoff, KV_DEGRADED divides the wire speed) and the
    request is delivered to a decode engine — chosen by ``decode_router``
    at delivery time — which admits it straight into decode.

    With one engine per pool, a zero-visible-delay transfer
    (``overlap=1.0``) and no contention, per-token timelines match a
    single colocated engine exactly (the metamorphic anchor the test
    suite locks).  REPLICA_DEATH / autoscale live at the pool-DES layer,
    not here.
    """

    def __init__(
        self,
        engine_factory: "Callable[[], ServingEngine]",
        n_prefill: int,
        n_decode: int,
        *,
        router: Optional[Router] = None,
        decode_router: Optional[Router] = None,
        transfer: Optional[TransferModel] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if n_prefill <= 0 or n_decode <= 0:
            raise ConfigError("need at least one prefill and one decode engine")
        self.transfer = transfer or TransferModel()
        self.retry = retry or RetryPolicy()
        self.prefill: List[_PoolEngine] = []
        for _ in range(n_prefill):
            engine = engine_factory()
            engine.handoff_mode = True
            self.prefill.append(_PoolEngine(engine))
        self.decode: List[_PoolEngine] = [
            _PoolEngine(engine_factory()) for _ in range(n_decode)
        ]
        sample = self.prefill[0].engine
        capacity = getattr(sample.allocator, "capacity_tokens", None)
        self._kv_proxy = capacity is None
        kv_span = int(capacity) if capacity is not None else max(sample.max_running, 1)
        self.router = router or PrefixAwareRouter()
        self.decode_router = decode_router or LeastLoadedRouter()
        self._state_p = RouterState(n_prefill, kv_span)
        self._state_p.routable[:] = True
        self._state_p.rebuild_routable()
        self.router.bind(self._state_p)
        self._state_d = RouterState(n_decode, kv_span)
        self._state_d.routable[:] = True
        self._state_d.rebuild_routable()
        self.decode_router.bind(self._state_d)
        self._fail_windows: List[FaultEvent] = (
            faults.of_kind(KV_TRANSFER_FAIL) if faults is not None else []
        )
        self._deg_windows: List[FaultEvent] = (
            faults.of_kind(KV_DEGRADED) if faults is not None else []
        )
        self._prefix_codes: Dict[str, int] = {}
        self.handoffs = 0
        self.reprefills = 0
        self.rejected = 0

    # ----------------------------------------------------------- plumbing
    def _code_of(self, request: Request) -> int:
        if request.prefix_id is None or request.prefix_tokens <= 0:
            return -1
        code = self._prefix_codes.get(request.prefix_id)
        if code is None:
            code = len(self._prefix_codes)
            self._prefix_codes[request.prefix_id] = code
        return code

    def _refresh(self, state: RouterState, pool: List[_PoolEngine]) -> None:
        for r, w in enumerate(pool):
            engine = w.engine
            state.queue_depth[r] = len(w.pending)
            state.running[r] = len(engine.running) + len(engine._preempted)
            if self._kv_proxy:
                state.kv_used[r] = len(engine.running)
            else:
                state.kv_used[r] = engine.allocator.stats.reserved_tokens  # type: ignore[union-attr]

    def _covering(self, windows: List[FaultEvent], t: float, rid: str) -> Optional[FaultEvent]:
        for e in windows:
            if e.at_s > t:
                break
            if e.end_s >= t and (e.target is None or e.target == rid):
                return e
        return None

    def _ship(
        self,
        request: Request,
        t: float,
        heap: List[Tuple[float, int, Request]],
        seq: List[int],
    ) -> None:
        """Price the KV handoff leaving the prefill pool at time ``t``."""
        self.handoffs += 1
        fail = self._covering(self._fail_windows, t, request.request_id)
        if fail is not None:
            request.retries += 1
            self.reprefills += 1
            request.admitted_s = None
            request.first_token_s = None
            request.token_times = []
            request.prefix_hit = False
            request.kv_shipped = False
            if self.retry.exhausted(request.retries):
                request.rejected = True
                self.rejected += 1
                return
            delay = self.transfer.raw_delay(request.prompt_tokens) + self.retry.delay_s(
                request.retries
            )
        else:
            delay = self.transfer.visible_delay(request.prompt_tokens)
            deg = self._covering(self._deg_windows, t, request.request_id)
            if deg is not None and deg.severity != 1.0:
                delay /= deg.severity
            request.kv_shipped = True
        request.handoff_s = t + delay
        heapq.heappush(heap, (t + delay, seq[0], request))
        seq[0] += 1

    # ---------------------------------------------------------- main loop
    def run(self, requests: "Sequence[Request]") -> List[Request]:
        """Serve ``requests`` through both pools to completion."""
        order = sorted(requests, key=lambda r: r.arrival_s)
        n = len(order)
        ptr = 0
        handoff_heap: List[Tuple[float, int, Request]] = []
        seq = [0]
        engines = [(w, True) for w in self.prefill] + [(w, False) for w in self.decode]
        while True:
            t_deliver = handoff_heap[0][0] if handoff_heap else _INF
            t_arr = order[ptr].arrival_s if ptr < n else _INF
            t_step = _INF
            step_at = -1
            for k, (w, _) in enumerate(engines):
                if w.active and w.engine.now < t_step:
                    t_step = w.engine.now
                    step_at = k
            # Deterministic order: delivery < arrival < engine step.
            best_t, best_kind = t_deliver, 0
            if t_arr < best_t:
                best_t, best_kind = t_arr, 1
            if t_step < best_t:
                best_t, best_kind = t_step, 2
            if best_t == _INF:
                break
            if best_kind == 0:
                _, _, request = heapq.heappop(handoff_heap)
                self._refresh(self._state_d, self.decode)
                r = self.decode_router.route(-1, 0)
                w = self.decode[r]
                w.pending.append(request)
                w.active = True
            elif best_kind == 1:
                request = order[ptr]
                ptr += 1
                self._refresh(self._state_p, self.prefill)
                code = self._code_of(request)
                r = self.router.route(code, request.prefix_tokens)
                if code >= 0:
                    self._state_p.record_prefix(code, r, request.prefix_tokens)
                w = self.prefill[r]
                w.pending.append(request)
                w.active = True
            else:
                w, is_prefill = engines[step_at]
                status = w.engine.step(w.pending)
                if status == STEP_IDLE:
                    w.active = False
                elif is_prefill and status == STEP_HANDOFF:
                    t = w.engine.now
                    for request in w.engine.drain_finished():
                        self._ship(request, t, handoff_heap, seq)
        return list(requests)
