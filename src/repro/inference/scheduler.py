"""Batching schedulers: static, continuous (Orca), chunked prefill (Sarathi).

One discrete-event engine (:class:`ServingEngine`) drives all scheduler
policies over a shared iteration-latency model, so throughput/TTFT/TBT
differences are attributable to scheduling alone:

* :class:`StaticBatchScheduler` — classic request-level batching: collect
  a batch, prefill it, decode until *every* member finishes, repeat.
  Short requests wait for the batch's stragglers;
* :class:`ContinuousBatchScheduler` — Orca's iteration-level scheduling
  [66]: finished requests leave and waiting requests join at every
  iteration. Full prompts prefill in one iteration, which stalls running
  decodes (the TBT spike Sarathi fixes);
* chunked prefill — Sarathi-Serve [4]: ``chunk_tokens`` caps the prefill
  tokens coscheduled with decodes in any iteration, bounding TBT at a
  small TTFT cost.

The engine keeps the simulated trajectory identical to the original
per-iteration-rescan implementation (guarded by
``tests/test_scheduler_golden.py``) while avoiding O(n) work per
iteration: arrivals drain from a deque, the engine maintains incremental
``_prefilling`` / ``_decoding`` sets instead of policies refiltering
``running.values()``, SJF keeps a lazy heap keyed on remaining work, and
all of an iteration's KV appends go to the allocator in one batched call
when no memory pressure is in play.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CacheError, SchedulerError
from ..faults import GPU_CRASH, FaultEvent, FaultInjector, FaultPlan, RetryPolicy
from .kvcache import PagedAllocator, ReservedAllocator
from .request import SLO, Request

#: :meth:`ServingEngine.step` outcomes (see its docstring).
STEP_RAN = "ran"
STEP_ADVANCED = "advanced"
STEP_IDLE = "idle"
STEP_HANDOFF = "handoff"


def _arrival_time(request: Request) -> float:
    """A request's effective arrival at *this* engine.

    For a disaggregated handoff the request reaches the decode engine when
    its KV ship lands (``handoff_s``), not at its original fleet arrival.
    """
    return request.handoff_s if request.handoff_s is not None else request.arrival_s


@dataclass(frozen=True)
class IterationCost:
    """Per-iteration latency model.

    ``base_s`` is the weight-read / kernel-launch floor every iteration
    pays (decode's memory-bound cost); prefill tokens add compute-bound
    time; each decoding sequence adds a small KV-read cost.
    """

    base_s: float = 0.006
    per_prefill_token_s: float = 0.00011
    per_decode_seq_s: float = 0.00025

    def time(self, prefill_tokens: int, decode_seqs: int) -> float:
        if prefill_tokens == 0 and decode_seqs == 0:
            return 0.0
        return (
            self.base_s
            + prefill_tokens * self.per_prefill_token_s
            + decode_seqs * self.per_decode_seq_s
        )


@dataclass
class _Running:
    request: Request
    prefill_remaining: int
    decoded: int = 0
    # Monotone per-(re)admission ordinal; mirrors the sequence's position in
    # ``engine.running`` so priority ties resolve exactly as the old stable
    # sort over dict order did. Reassigned when a preempted sequence resumes.
    admit_index: int = 0

    @property
    def prefilling(self) -> bool:
        return self.prefill_remaining > 0

    @property
    def finished(self) -> bool:
        return not self.prefilling and self.decoded >= self.request.output_tokens


def _plan_prefill(
    prefilling: Iterable[_Running], chunk_tokens: Optional[int]
) -> List[Tuple[_Running, int]]:
    """Greedy in-order prefill planning, shared by every policy.

    ``chunk_tokens=None`` schedules each waiting prompt whole; otherwise the
    budget is handed out in sequence order (Sarathi's chunk cap).
    """
    prefill_work: List[Tuple[_Running, int]] = []
    if chunk_tokens is None:
        for seq in prefilling:
            prefill_work.append((seq, seq.prefill_remaining))
    else:
        budget = chunk_tokens
        for seq in prefilling:
            if budget <= 0:
                break
            take = min(seq.prefill_remaining, budget)
            prefill_work.append((seq, take))
            budget -= take
    return prefill_work


class SchedulerPolicy:
    """Interface: decide what runs in the next iteration."""

    name = "base"
    # Maximum concurrently running sequences this policy wants; ``None``
    # defers entirely to the engine's ``max_running``.
    admit_cap: Optional[int] = None

    def plan_iteration(
        self, engine: "ServingEngine"
    ) -> Tuple[List[Tuple[_Running, int]], List[_Running]]:
        """Return (prefill work as (seq, tokens) pairs, decode seqs)."""
        raise NotImplementedError

    def may_admit(self, engine: "ServingEngine") -> bool:
        """May new requests join right now?"""
        return True

    def on_decode_ready(self, seq: _Running) -> None:
        """Hook: ``seq`` entered (or continues in) the decode phase."""


class ContinuousBatchScheduler(SchedulerPolicy):
    """Iteration-level batching, optionally with chunked prefill."""

    def __init__(
        self, *, max_batch: int = 64, chunk_tokens: Optional[int] = None
    ) -> None:
        if max_batch <= 0:
            raise SchedulerError("max_batch must be positive")
        if chunk_tokens is not None and chunk_tokens <= 0:
            raise SchedulerError("chunk_tokens must be positive")
        self.max_batch = max_batch
        self.admit_cap = max_batch
        self.chunk_tokens = chunk_tokens
        self.name = "chunked-prefill" if chunk_tokens else "continuous"

    def plan_iteration(
        self, engine: "ServingEngine"
    ) -> Tuple[List[Tuple[_Running, int]], List[_Running]]:
        # ``_decoding`` preserves admission order (prefill budget is granted
        # in admission order, so completions land in admission order too),
        # matching the old filter over ``running.values()``.
        decoding = list(engine._decoding.values())[: self.max_batch]
        prefill_work = _plan_prefill(engine._prefilling.values(), self.chunk_tokens)
        return prefill_work, decoding


class ShortestJobFirstScheduler(ContinuousBatchScheduler):
    """Continuous batching with shortest-remaining-work priority.

    The paper's open-challenges section names "query batching and
    scheduling" as an under-exploited data-level optimization; SJF is the
    classic latency-optimal policy: under saturation, finishing short
    requests first minimizes mean latency (at some tail cost for long
    requests). Prefill admission also prefers short prompts.

    Decode priority lives in a lazy heap keyed on
    ``(remaining_tokens, admit_index)`` — entries go stale when a sequence
    decodes, preempts, or finishes, and are discarded on pop — replacing
    the full re-sort of the running set every iteration.
    """

    def __init__(self, *, max_batch: int = 64, chunk_tokens: Optional[int] = None) -> None:
        super().__init__(max_batch=max_batch, chunk_tokens=chunk_tokens)
        self.name = "sjf"
        self._heap: List[Tuple[int, int, _Running]] = []

    def on_decode_ready(self, seq: _Running) -> None:
        remaining = seq.request.output_tokens - seq.decoded
        heapq.heappush(self._heap, (remaining, seq.admit_index, seq))

    def plan_iteration(
        self, engine: "ServingEngine"
    ) -> Tuple[List[Tuple[_Running, int]], List[_Running]]:
        heap = self._heap
        decoding: List[_Running] = []
        running = engine.running
        while heap and len(decoding) < self.max_batch:
            remaining, admit_index, seq = heapq.heappop(heap)
            if (
                running.get(seq.request.request_id) is not seq
                or seq.admit_index != admit_index
                or seq.prefilling
                or seq.finished
                or seq.request.output_tokens - seq.decoded != remaining
            ):
                continue  # stale entry; the live one carries current keys
            decoding.append(seq)
        prefilling = sorted(
            engine._prefilling.values(), key=lambda s: s.prefill_remaining
        )
        prefill_work = _plan_prefill(prefilling, self.chunk_tokens)
        return prefill_work, decoding


class StaticBatchScheduler(SchedulerPolicy):
    """Request-level batching: the batch drains fully before refilling."""

    def __init__(self, *, batch_size: int = 16) -> None:
        if batch_size <= 0:
            raise SchedulerError("batch_size must be positive")
        self.batch_size = batch_size
        self.admit_cap = batch_size
        self.name = "static"

    def plan_iteration(
        self, engine: "ServingEngine"
    ) -> Tuple[List[Tuple[_Running, int]], List[_Running]]:
        prefill_work = _plan_prefill(engine._prefilling.values(), None)
        decoding = list(engine._decoding.values())
        return prefill_work, decoding

    def may_admit(self, engine: "ServingEngine") -> bool:
        # Only admit when the previous batch has fully drained.
        return not engine.running


class ServingEngine:
    """Discrete-event loop: admission, iteration execution, token accounting.

    Fault tolerance: pass ``faults`` to inject :data:`~repro.faults.GPU_CRASH`
    events.  A crash tears down every in-flight sequence — KV freed, generation
    state lost — and re-queues the requests with capped exponential backoff
    (``retry``), counting each restart in ``Request.retries`` / the engine's
    ``retries`` total.  ``shed_slo`` additionally enables SLO-aware admission
    control: a request whose queueing delay has already blown the TTFT budget
    is rejected instead of served (DistServe-style goodput protection when the
    surviving capacity saturates).  With ``faults=None`` *or* an empty plan,
    every fault branch is dead and trajectories stay bit-identical to the
    fault-free engine (guarded by ``tests/test_scheduler_golden.py``).

    ``handoff_mode=True`` turns the engine into a prefill-pool worker
    (DistServe): sequences retire at their first token into a drain list
    (:meth:`drain_finished`) and ``step`` reports :data:`STEP_HANDOFF`;
    :class:`~repro.inference.pools.DisaggEngineFleet` prices the KV ship
    and forwards each request to a decode engine.
    """

    def __init__(
        self,
        scheduler: SchedulerPolicy,
        *,
        allocator: Optional[object] = None,
        cost: Optional[IterationCost] = None,
        max_running: int = 256,
        keep_prefix_on_release: bool = False,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        shed_slo: Optional[SLO] = None,
        handoff_mode: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.allocator = allocator
        self.cost = cost or IterationCost()
        self.max_running = max_running
        self.keep_prefix_on_release = keep_prefix_on_release
        self.retry = retry or RetryPolicy()
        self.shed_slo = shed_slo
        # Prefill-pool mode (DistServe): a sequence retires at its first
        # token instead of decoding locally; the fleet layer drains it via
        # :meth:`drain_finished` and ships its KV to a decode engine.
        self.handoff_mode = handoff_mode
        self.handoffs = 0
        self._handoff_done: List[Request] = []
        self._handoff_release: List[str] = []
        self.running: Dict[str, _Running] = {}
        self.now = 0.0
        self.iterations = 0
        self.busy_s = 0.0
        self.completed_total = 0
        self.retries = 0
        self.rejected = 0
        self.downtime_s = 0.0
        self.fault_log: List[FaultEvent] = []
        self._injector = (
            FaultInjector(faults, kinds=(GPU_CRASH,)) if faults is not None else None
        )
        # (ready_s, seqno, request) min-heap of crash-evicted requests waiting
        # out their retry backoff before full re-admission.
        self._retry_queue: List[Tuple[float, int, Request]] = []
        self._retry_seq = 0
        self._preempted: List[_Running] = []
        # Incrementally maintained views of ``running``, so policies plan an
        # iteration without refiltering/re-sorting the whole running set.
        # Both preserve admission order (insertion-ordered dicts).
        self._prefilling: Dict[str, _Running] = {}
        self._decoding: Dict[str, _Running] = {}
        self._admit_counter = 0

    # ------------------------------------------------------- state tracking
    def _insert_running(self, seq: _Running) -> None:
        seq.admit_index = self._admit_counter
        self._admit_counter += 1
        self.running[seq.request.request_id] = seq
        self._prefilling[seq.request.request_id] = seq

    # ----------------------------------------------------------- preemption
    def _preempt_youngest(self) -> bool:
        """vLLM's all-or-nothing recompute preemption: evict the youngest
        running sequence entirely; it re-prefills when memory frees up."""
        if len(self.running) <= 1:
            return False
        victim_id = max(
            self.running, key=lambda rid: self.running[rid].request.arrival_s
        )
        seq = self.running.pop(victim_id)
        self._prefilling.pop(victim_id, None)
        self._decoding.pop(victim_id, None)
        if self.allocator is not None:
            self.allocator.release(victim_id)
        seq.request.preemptions += 1
        seq.prefill_remaining = seq.request.prompt_tokens + seq.decoded
        self._preempted.append(seq)
        return True

    def _safe_append(self, request_id: str, n_tokens: int = 1) -> None:
        """Append KV entries, preempting under memory pressure."""
        if self.allocator is None or request_id not in self.running:
            return
        while True:
            try:
                self.allocator.append(request_id, n_tokens)
                return
            except CacheError as exc:
                if "unknown request" in str(exc):
                    return  # sequence was preempted earlier this iteration
                if not self._preempt_youngest():
                    raise

    # ------------------------------------------------------- fault recovery
    def _deliver_faults(self) -> None:
        """Absorb every crash whose timestamp the clock has passed."""
        assert self._injector is not None
        for event in self._injector.due(self.now):
            self._absorb_crash(event)

    def _absorb_crash(self, event: FaultEvent) -> None:
        """A lane crash: all in-flight work loses its KV and re-queues.

        Sequences that already finished keep their timelines; everything
        still running (or waiting preempted) restarts from scratch after
        the outage window plus its per-request retry backoff.  Requests
        that have exhausted the retry budget are shed instead.
        """
        self.fault_log.append(event)
        victims = list(self.running.values()) + self._preempted
        for request_id in list(self.running):
            if self.allocator is not None:
                self.allocator.release(request_id)
        self.running.clear()
        self._prefilling.clear()
        self._decoding.clear()
        self._preempted = []
        for seq in victims:
            request = seq.request
            request.retries += 1
            self.retries += 1
            # Generation state is gone: the retry re-prefills and re-decodes.
            request.admitted_s = None
            request.first_token_s = None
            request.token_times = []
            request.prefix_hit = False
            if self.retry.exhausted(request.retries):
                request.rejected = True
                self.rejected += 1
                continue
            ready_s = event.end_s + self.retry.delay_s(request.retries)
            heapq.heappush(self._retry_queue, (ready_s, self._retry_seq, request))
            self._retry_seq += 1
        if event.duration_s > 0.0:
            self.downtime_s += event.duration_s
            self.now = max(self.now, event.end_s)

    def _admit_retries(self, cap: int) -> None:
        """Re-admit crash-evicted requests whose backoff has elapsed."""
        while self._retry_queue and self._retry_queue[0][0] <= self.now:
            if len(self.running) >= cap:
                break
            _, _, request = self._retry_queue[0]
            if self.shed_slo is not None and (
                self.now - request.arrival_s > self.shed_slo.ttft_s
            ):
                heapq.heappop(self._retry_queue)
                request.rejected = True
                self.rejected += 1
                continue
            if self.allocator is not None:
                if not self.allocator.can_admit(
                    request.request_id, request.prompt_tokens
                ):
                    break
                self.allocator.admit(request.request_id, request.prompt_tokens)
            heapq.heappop(self._retry_queue)
            request.admitted_s = self.now
            # The crash wiped any shared prefix blocks this lane held, so the
            # retry re-prefills the full prompt.
            self._insert_running(
                _Running(request=request, prefill_remaining=request.prompt_tokens)
            )

    # ------------------------------------------------------------ admission
    def _complete_on_arrival(self, request: Request) -> None:
        """Finish a shipped request whose whole generation was its first
        token: nothing to decode, so the KV reserved at admission is
        released immediately (this helper owns that release)."""
        request.finished_s = self.now
        self.completed_total += 1
        if self.allocator is not None:
            self.allocator.release(request.request_id)

    def _try_admit(self, queue: Deque[Request]) -> None:
        if not self.scheduler.may_admit(self):
            return
        cap = self.max_running
        if self.scheduler.admit_cap is not None:
            cap = min(cap, self.scheduler.admit_cap)
        # Resume preempted sequences first (they hold completed work).
        still_waiting: List[_Running] = []
        for seq in self._preempted:
            request = seq.request
            total_needed = request.prompt_tokens + seq.decoded
            can = self.allocator is None or self.allocator.can_admit(
                request.request_id, total_needed
            )
            if can and len(self.running) < cap:
                if self.allocator is not None:
                    self.allocator.admit(request.request_id, total_needed)
                self._insert_running(seq)
            else:
                still_waiting.append(seq)
        self._preempted = still_waiting
        if self._retry_queue:
            self._admit_retries(cap)
        while queue and _arrival_time(queue[0]) <= self.now:
            if (
                self.shed_slo is not None
                and queue[0].handoff_s is None
                and self.now - queue[0].arrival_s > self.shed_slo.ttft_s
            ):
                # Already past its TTFT budget in the queue: serving it can
                # only waste surviving capacity, so shed it.  Handed-off
                # requests are exempt: their prefill work is already sunk.
                request = queue.popleft()
                request.rejected = True
                self.rejected += 1
                continue
            if len(self.running) >= cap:
                break
            request = queue[0]
            if request.kv_shipped:
                # Disaggregated arrival: the prompt KV came over the wire,
                # so the sequence enters decode directly — no prefill
                # compute, no prefix-cache interaction.
                if self.allocator is not None:
                    if not self.allocator.can_admit(
                        request.request_id, request.prompt_tokens
                    ):
                        break
                    self.allocator.admit(request.request_id, request.prompt_tokens)
                queue.popleft()
                request.decode_admitted_s = self.now
                seq = _Running(request=request, prefill_remaining=0, decoded=1)
                seq.admit_index = self._admit_counter
                self._admit_counter += 1
                if seq.finished:
                    # Single-token output: the prefill side's first token
                    # was the whole generation.
                    self._complete_on_arrival(request)
                    continue
                self.running[request.request_id] = seq
                self._decoding[request.request_id] = seq
                self.scheduler.on_decode_ready(seq)
                continue
            cached = 0
            if self.allocator is not None:
                if not self.allocator.can_admit(
                    request.request_id,
                    request.prompt_tokens,
                    request.prefix_id,
                    request.prefix_tokens,
                ):
                    break
                cached = self.allocator.admit(
                    request.request_id,
                    request.prompt_tokens,
                    request.prefix_id,
                    request.prefix_tokens,
                )
            queue.popleft()
            request.admitted_s = self.now
            if request.handoff_s is not None:
                # A failed KV ship re-prefilling on the decode side.
                request.decode_admitted_s = self.now
            request.prefix_hit = cached > 0
            self._insert_running(
                _Running(
                    request=request,
                    prefill_remaining=max(request.prompt_tokens - cached, 1),
                )
            )

    # --------------------------------------------------------- phase shifts
    def _finish_prefill(self, seq: _Running) -> None:
        """Move a sequence whose prompt just drained into the decode set."""
        request_id = seq.request.request_id
        self._prefilling.pop(request_id, None)
        if self.handoff_mode:
            # The first token is out; the rest of the generation belongs
            # to a decode engine.  KV release is deferred to the end of
            # the step so this iteration's batched appends still land.
            self.running.pop(request_id, None)
            self.handoffs += 1
            self._handoff_done.append(seq.request)
            self._handoff_release.append(request_id)
            return
        self._decoding[request_id] = seq
        if not seq.finished:
            self.scheduler.on_decode_ready(seq)

    def drain_finished(self) -> List[Request]:
        """Hand over (and clear) the requests whose prefill completed.

        Only meaningful with ``handoff_mode=True``; the caller owns
        shipping their KV to a decode engine and pricing the transfer.
        """
        done = self._handoff_done
        self._handoff_done = []
        return done

    # ------------------------------------------------------------ main loop
    def step(self, pending: Deque[Request]) -> str:
        """One trip through the discrete-event loop.

        ``pending`` is the engine's arrival queue (sorted by ``arrival_s``);
        callers that feed requests incrementally (the fleet layer) own the
        deque and push routed arrivals onto it between steps.  Returns one of

        * :data:`STEP_RAN` — an iteration executed and the clock advanced by
          its latency;
        * :data:`STEP_ADVANCED` — nothing was runnable, so the clock jumped
          to the next arrival / retry-ready time;
        * :data:`STEP_IDLE` — no running, queued, preempted, or retrying
          work remains: the engine is drained.

        ``run`` is exactly a loop over this method, so fleet-driven replicas
        follow bit-identical trajectories to a standalone engine.
        """
        if self._injector is not None:
            self._deliver_faults()
        handoffs_before = self.handoffs
        self._try_admit(pending)
        if not self.running:
            if not pending and not self._preempted and not self._retry_queue:
                return STEP_IDLE
            if pending or self._retry_queue:
                next_times = []
                if pending:
                    next_times.append(_arrival_time(pending[0]))
                if self._retry_queue:
                    next_times.append(self._retry_queue[0][0])
                target = min(next_times)
                if not pending and target <= self.now:
                    raise SchedulerError(
                        "retried sequences can never be re-admitted (KV too small)"
                    )
                self.now = max(self.now, target)
                return STEP_ADVANCED
            raise SchedulerError(
                "preempted sequences can never be re-admitted (KV too small)"
            )
        prefill_work, decoding = self.scheduler.plan_iteration(self)
        prefill_tokens = sum(tokens for _, tokens in prefill_work)
        iter_time = self.cost.time(prefill_tokens, len(decoding))
        if iter_time <= 0:
            raise SchedulerError("scheduler produced an empty iteration")
        self.now += iter_time
        self.busy_s += iter_time
        self.iterations += 1
        if self.allocator is not None:
            self.allocator.stats.observe()
        # Predict this iteration's KV appends (first tokens of completing
        # prefills, then one per decoding sequence — the order the
        # sequential path issues them in). If the allocator can take them
        # all, skip per-sequence calls and pressure handling entirely.
        append_pairs: List[Tuple[str, int]] = [
            (seq.request.request_id, 1)
            for seq, tokens in prefill_work
            if tokens == seq.prefill_remaining and seq.decoded == 0
        ]
        append_pairs.extend((seq.request.request_id, 1) for seq in decoding)
        batch_append = None
        if self.allocator is not None:
            can_all = getattr(self.allocator, "can_append_all", None)
            if can_all is not None and can_all(append_pairs):
                batch_append = self.allocator.append_many
        if self.allocator is None or batch_append is not None:
            # Fast path: no memory pressure possible, so no sequence can
            # be preempted mid-iteration and the membership rechecks the
            # sequential path needs are vacuous.
            for seq, tokens in prefill_work:
                seq.prefill_remaining -= tokens
                if not seq.prefilling:
                    if seq.decoded == 0:
                        seq.request.first_token_s = self.now
                        seq.request.token_times.append(self.now)
                        seq.decoded = 1
                    self._finish_prefill(seq)
            for seq in decoding:
                seq.decoded += 1
                seq.request.token_times.append(self.now)
                if not seq.finished:
                    self.scheduler.on_decode_ready(seq)
            if batch_append is not None:
                batch_append(append_pairs)
        else:
            # Pressure path: identical to the original per-sequence loop,
            # including preemption interleaved between appends.
            for seq, tokens in prefill_work:
                request_id = seq.request.request_id
                if request_id not in self.running:
                    continue  # preempted earlier in this iteration
                seq.prefill_remaining -= tokens
                if not seq.prefilling:
                    if seq.decoded == 0:
                        seq.request.first_token_s = self.now
                        seq.request.token_times.append(self.now)
                        seq.decoded = 1
                        self._safe_append(request_id, 1)
                    if request_id in self.running:
                        self._finish_prefill(seq)
            for seq in decoding:
                request_id = seq.request.request_id
                if request_id not in self.running:
                    continue  # preempted earlier in this iteration
                seq.decoded += 1
                seq.request.token_times.append(self.now)
                self._safe_append(request_id, 1)
                if request_id in self.running and not seq.finished:
                    self.scheduler.on_decode_ready(seq)
        # Release handed-off sequences' local KV (deferred past the
        # batched appends above; the shipped copy is the decode side's).
        if self._handoff_release:
            for request_id in self._handoff_release:
                if self.allocator is not None:
                    if self.keep_prefix_on_release and isinstance(
                        self.allocator, PagedAllocator
                    ):
                        self.allocator.release(request_id, keep_for_prefix=True)
                    else:
                        self.allocator.release(request_id)
            self._handoff_release = []
        # Retire finished sequences (they all sit in the decode set).
        finished_ids = [
            rid for rid, seq in self._decoding.items() if seq.finished
        ]
        for request_id in finished_ids:
            seq = self._decoding.pop(request_id)
            self.running.pop(request_id, None)
            seq.request.finished_s = self.now
            self.completed_total += 1
            if self.allocator is not None:
                if self.keep_prefix_on_release and isinstance(
                    self.allocator, PagedAllocator
                ):
                    self.allocator.release(request_id, keep_for_prefix=True)
                else:
                    self.allocator.release(request_id)
        if self.handoffs > handoffs_before:
            return STEP_HANDOFF  # signal the fleet layer to drain_finished()
        return STEP_RAN

    def run(self, requests: Sequence[Request]) -> List[Request]:
        """Simulate to completion; returns the requests with timelines filled."""
        pending: Deque[Request] = deque(sorted(requests, key=lambda r: r.arrival_s))
        total = len(pending)
        completed_start = self.completed_total
        rejected_start = self.rejected
        while (
            self.completed_total
            - completed_start
            + (self.rejected - rejected_start)
            < total
        ):
            if self.step(pending) == STEP_IDLE:
                break
        return list(requests)
