"""Batching schedulers: static, continuous (Orca), chunked prefill (Sarathi).

One discrete-event engine (:class:`ServingEngine`) drives all scheduler
policies over a shared iteration-latency model, so throughput/TTFT/TBT
differences are attributable to scheduling alone:

* :class:`StaticBatchScheduler` — classic request-level batching: collect
  a batch, prefill it, decode until *every* member finishes, repeat.
  Short requests wait for the batch's stragglers;
* :class:`ContinuousBatchScheduler` — Orca's iteration-level scheduling
  [66]: finished requests leave and waiting requests join at every
  iteration. Full prompts prefill in one iteration, which stalls running
  decodes (the TBT spike Sarathi fixes);
* chunked prefill — Sarathi-Serve [4]: ``chunk_tokens`` caps the prefill
  tokens coscheduled with decodes in any iteration, bounding TBT at a
  small TTFT cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SchedulerError
from .kvcache import PagedAllocator, ReservedAllocator
from .request import Request


@dataclass(frozen=True)
class IterationCost:
    """Per-iteration latency model.

    ``base_s`` is the weight-read / kernel-launch floor every iteration
    pays (decode's memory-bound cost); prefill tokens add compute-bound
    time; each decoding sequence adds a small KV-read cost.
    """

    base_s: float = 0.006
    per_prefill_token_s: float = 0.00011
    per_decode_seq_s: float = 0.00025

    def time(self, prefill_tokens: int, decode_seqs: int) -> float:
        if prefill_tokens == 0 and decode_seqs == 0:
            return 0.0
        return (
            self.base_s
            + prefill_tokens * self.per_prefill_token_s
            + decode_seqs * self.per_decode_seq_s
        )


@dataclass
class _Running:
    request: Request
    prefill_remaining: int
    decoded: int = 0

    @property
    def prefilling(self) -> bool:
        return self.prefill_remaining > 0

    @property
    def finished(self) -> bool:
        return not self.prefilling and self.decoded >= self.request.output_tokens


class SchedulerPolicy:
    """Interface: decide what runs in the next iteration."""

    name = "base"

    def plan_iteration(
        self, engine: "ServingEngine"
    ) -> Tuple[List[Tuple[_Running, int]], List[_Running]]:
        """Return (prefill work as (seq, tokens) pairs, decode seqs)."""
        raise NotImplementedError

    def may_admit(self, engine: "ServingEngine") -> bool:
        """May new requests join right now?"""
        return True


class ContinuousBatchScheduler(SchedulerPolicy):
    """Iteration-level batching, optionally with chunked prefill."""

    def __init__(
        self, *, max_batch: int = 64, chunk_tokens: Optional[int] = None
    ) -> None:
        if max_batch <= 0:
            raise SchedulerError("max_batch must be positive")
        if chunk_tokens is not None and chunk_tokens <= 0:
            raise SchedulerError("chunk_tokens must be positive")
        self.max_batch = max_batch
        self.chunk_tokens = chunk_tokens
        self.name = "chunked-prefill" if chunk_tokens else "continuous"

    def plan_iteration(self, engine):
        running = list(engine.running.values())
        decoding = [s for s in running if not s.prefilling][: self.max_batch]
        prefilling = [s for s in running if s.prefilling]
        prefill_work: List[Tuple[_Running, int]] = []
        if self.chunk_tokens is None:
            # Whole-prompt prefill: admit every waiting prefill this iteration.
            for seq in prefilling:
                prefill_work.append((seq, seq.prefill_remaining))
        else:
            budget = self.chunk_tokens
            for seq in prefilling:
                if budget <= 0:
                    break
                take = min(seq.prefill_remaining, budget)
                prefill_work.append((seq, take))
                budget -= take
        return prefill_work, decoding


class ShortestJobFirstScheduler(ContinuousBatchScheduler):
    """Continuous batching with shortest-remaining-work priority.

    The paper's open-challenges section names "query batching and
    scheduling" as an under-exploited data-level optimization; SJF is the
    classic latency-optimal policy: under saturation, finishing short
    requests first minimizes mean latency (at some tail cost for long
    requests). Prefill admission also prefers short prompts.
    """

    def __init__(self, *, max_batch: int = 64, chunk_tokens: Optional[int] = None) -> None:
        super().__init__(max_batch=max_batch, chunk_tokens=chunk_tokens)
        self.name = "sjf"

    def plan_iteration(self, engine):
        running = list(engine.running.values())
        decoding = sorted(
            (s for s in running if not s.prefilling),
            key=lambda s: s.request.output_tokens - s.decoded,
        )[: self.max_batch]
        prefilling = sorted(
            (s for s in running if s.prefilling),
            key=lambda s: s.prefill_remaining,
        )
        prefill_work: List[Tuple[_Running, int]] = []
        if self.chunk_tokens is None:
            for seq in prefilling:
                prefill_work.append((seq, seq.prefill_remaining))
        else:
            budget = self.chunk_tokens
            for seq in prefilling:
                if budget <= 0:
                    break
                take = min(seq.prefill_remaining, budget)
                prefill_work.append((seq, take))
                budget -= take
        return prefill_work, decoding


class StaticBatchScheduler(SchedulerPolicy):
    """Request-level batching: the batch drains fully before refilling."""

    def __init__(self, *, batch_size: int = 16) -> None:
        if batch_size <= 0:
            raise SchedulerError("batch_size must be positive")
        self.batch_size = batch_size
        self.name = "static"

    def plan_iteration(self, engine):
        running = list(engine.running.values())
        prefill_work = [(s, s.prefill_remaining) for s in running if s.prefilling]
        decoding = [s for s in running if not s.prefilling]
        return prefill_work, decoding

    def may_admit(self, engine):
        # Only admit when the previous batch has fully drained.
        return not engine.running


class ServingEngine:
    """Discrete-event loop: admission, iteration execution, token accounting."""

    def __init__(
        self,
        scheduler: SchedulerPolicy,
        *,
        allocator: Optional[object] = None,
        cost: Optional[IterationCost] = None,
        max_running: int = 256,
        keep_prefix_on_release: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.allocator = allocator
        self.cost = cost or IterationCost()
        self.max_running = max_running
        self.keep_prefix_on_release = keep_prefix_on_release
        self.running: Dict[str, _Running] = {}
        self.now = 0.0
        self.iterations = 0
        self.busy_s = 0.0
        self._preempted: List[_Running] = []

    # ----------------------------------------------------------- preemption
    def _preempt_youngest(self) -> bool:
        """vLLM's all-or-nothing recompute preemption: evict the youngest
        running sequence entirely; it re-prefills when memory frees up."""
        if len(self.running) <= 1:
            return False
        victim_id = max(
            self.running, key=lambda rid: self.running[rid].request.arrival_s
        )
        seq = self.running.pop(victim_id)
        if self.allocator is not None:
            self.allocator.release(victim_id)
        seq.request.preemptions += 1
        seq.prefill_remaining = seq.request.prompt_tokens + seq.decoded
        self._preempted.append(seq)
        return True

    def _safe_append(self, request_id: str, n_tokens: int = 1) -> None:
        """Append KV entries, preempting under memory pressure."""
        if self.allocator is None or request_id not in self.running:
            return
        from ..errors import CacheError

        while True:
            try:
                self.allocator.append(request_id, n_tokens)
                return
            except CacheError as exc:
                if "unknown request" in str(exc):
                    return  # sequence was preempted earlier this iteration
                if not self._preempt_youngest():
                    raise

    # ------------------------------------------------------------ admission
    def _try_admit(self, queue: List[Request]) -> None:
        if not self.scheduler.may_admit(self):
            return
        admit_cap = getattr(self.scheduler, "batch_size", None) or getattr(
            self.scheduler, "max_batch", self.max_running
        )
        # Resume preempted sequences first (they hold completed work).
        still_waiting: List[_Running] = []
        for seq in self._preempted:
            request = seq.request
            total_needed = request.prompt_tokens + seq.decoded
            can = self.allocator is None or self.allocator.can_admit(
                request.request_id, total_needed
            )
            if can and len(self.running) < min(self.max_running, admit_cap):
                if self.allocator is not None:
                    self.allocator.admit(request.request_id, total_needed)
                self.running[request.request_id] = seq
            else:
                still_waiting.append(seq)
        self._preempted = still_waiting
        while queue and queue[0].arrival_s <= self.now:
            if len(self.running) >= min(self.max_running, admit_cap):
                break
            request = queue[0]
            cached = 0
            if self.allocator is not None:
                if not self.allocator.can_admit(
                    request.request_id,
                    request.prompt_tokens,
                    request.prefix_id,
                    request.prefix_tokens,
                ):
                    break
                cached = self.allocator.admit(
                    request.request_id,
                    request.prompt_tokens,
                    request.prefix_id,
                    request.prefix_tokens,
                )
            queue.pop(0)
            request.admitted_s = self.now
            request.prefix_hit = cached > 0
            self.running[request.request_id] = _Running(
                request=request,
                prefill_remaining=max(request.prompt_tokens - cached, 1),
            )

    # ------------------------------------------------------------ main loop
    def run(self, requests: Sequence[Request]) -> List[Request]:
        """Simulate to completion; returns the requests with timelines filled."""
        queue = sorted(requests, key=lambda r: r.arrival_s)
        pending = list(queue)
        total = len(pending)
        completed = 0
        while completed < total:
            self._try_admit(pending)
            if not self.running:
                if not pending and not self._preempted:
                    break
                if pending:
                    self.now = max(self.now, pending[0].arrival_s)
                    continue
                raise SchedulerError(
                    "preempted sequences can never be re-admitted (KV too small)"
                )
            prefill_work, decoding = self.scheduler.plan_iteration(self)
            prefill_tokens = sum(tokens for _, tokens in prefill_work)
            iter_time = self.cost.time(prefill_tokens, len(decoding))
            if iter_time <= 0:
                raise SchedulerError("scheduler produced an empty iteration")
            self.now += iter_time
            self.busy_s += iter_time
            self.iterations += 1
            if self.allocator is not None:
                self.allocator.stats.observe()
            # Prefill progress; a prompt that completes emits its first token.
            for seq, tokens in prefill_work:
                if seq.request.request_id not in self.running:
                    continue  # preempted earlier in this iteration
                seq.prefill_remaining -= tokens
                if not seq.prefilling and seq.decoded == 0:
                    seq.request.first_token_s = self.now
                    seq.request.token_times.append(self.now)
                    seq.decoded = 1
                    self._safe_append(seq.request.request_id, 1)
            # Decode progress: one token per decoding sequence.
            for seq in decoding:
                if seq.request.request_id not in self.running:
                    continue  # preempted earlier in this iteration
                seq.decoded += 1
                seq.request.token_times.append(self.now)
                self._safe_append(seq.request.request_id, 1)
            # Retire finished sequences.
            for request_id in [rid for rid, s in self.running.items() if s.finished]:
                seq = self.running.pop(request_id)
                seq.request.finished_s = self.now
                completed += 1
                if self.allocator is not None:
                    if self.keep_prefix_on_release and isinstance(
                        self.allocator, PagedAllocator
                    ):
                        self.allocator.release(request_id, keep_for_prefix=True)
                    else:
                        self.allocator.release(request_id)
        return list(requests)
