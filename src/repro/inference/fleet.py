"""Multi-replica fleet serving: cluster simulation with cache-aware routing.

The paper's serving section (§2.3) is about *clusters*, not engines:
Mooncake [55] routes requests to the replica whose KV cache already holds
their prefix, DistServe [69] sheds load to protect goodput, and both scale
replica counts with demand.  This module lifts the repository's
single-engine simulator to that level, twice over:

* :class:`EngineFleet` — N real :class:`~repro.inference.scheduler.
  ServingEngine` replicas driven through :meth:`ServingEngine.step` behind
  a pluggable :class:`~repro.inference.router.Router`.  Token-level
  fidelity: a fleet of one replica follows a **bit-identical** trajectory
  to a bare engine (the metamorphic anchor in ``tests/test_fleet.py``).
* :class:`ClusterFleet` — a request-granular fleet model for *scale*:
  each request is one service interval (prefill + decode from the replica
  model's closed-form latency), which keeps the event count at O(1) per
  request and makes million-request router studies tractable.

Both understand :data:`~repro.faults.REPLICA_DEATH` faults (whole-replica
loss: queue re-routed, in-flight work retried with backoff on survivors)
and queue-depth-driven autoscaling (:class:`AutoscalePolicy`).

``ClusterFleet.run`` is the perf_opt core.  The naive fleet DES
(``benchmarks/perf/_legacy_fleet.py``, frozen) keeps one global event heap
holding every future arrival, finish, and tick — pops cost O(log n) over
millions of entries, replica deaths leave stale finish records that need
epoch-tag lazy invalidation, and router metrics are recomputed by scanning
per-replica Python objects.  The optimized loop shards the heap: arrivals
stay an index into the sorted workload columns, each replica keeps its own
small finish heap (bounded by its concurrency ``slots``), and the next
event emerges from a top-of-heap tournament over the per-replica minima —
a death simply discards one replica's heap, no tombstones.  The three
built-in policies run inline against incrementally maintained packed
integer load keys (an O(R) membership rebuild only on the rare death /
spawn / drain events), random routing consumes buffered uniform draws,
and prefix-aware routing scans per-prefix *holder lists* — only the
replicas that actually cache a prefix — instead of the whole fleet.
Custom routers still see the NumPy-column
:class:`~repro.inference.router.RouterState` contract.
Golden parity with the frozen baseline is bitwise (``FleetResult.
equals``), exactly as PR 1/PR 4 pinned the single-engine and prep
kernels.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from math import log
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, SchedulerError
from ..faults import REPLICA_DEATH, FaultEvent, FaultPlan, RetryPolicy
from ..utils import derive_rng, percentile
from .request import SLO, Request
from .router import Router, RouterState
from .scheduler import STEP_IDLE, ServingEngine

if TYPE_CHECKING:  # pools imports fleet; the reverse edge is lazy
    from .pools import PoolSpec

_INF = float("inf")


# ============================================================== workloads
@dataclass(frozen=True)
class FleetWorkload:
    """A fleet-scale request trace in structure-of-arrays form.

    One float64/int64 column per field instead of per-request objects:
    million-request traces stay cheap to generate, slice, and feed to the
    vectorized fleet loop.  ``prefix_code`` is an integer prefix family id
    (``-1`` = no shared prefix) and ``prefix_tokens`` the shared length —
    the columnar analogue of :attr:`Request.prefix_id`.
    """

    arrival_s: np.ndarray
    prompt_tokens: np.ndarray
    output_tokens: np.ndarray
    prefix_code: np.ndarray
    prefix_tokens: np.ndarray

    def __post_init__(self) -> None:
        n = self.arrival_s.shape[0]
        for name in ("prompt_tokens", "output_tokens", "prefix_code", "prefix_tokens"):
            if getattr(self, name).shape[0] != n:
                raise ConfigError(f"workload column {name!r} length mismatch")
        if n and bool(np.any(self.arrival_s[1:] < self.arrival_s[:-1])):
            raise ConfigError("arrival_s must be sorted non-decreasing")
        if n and (int(self.prompt_tokens.min()) < 1 or int(self.output_tokens.min()) < 1):
            raise ConfigError("prompt/output token counts must be >= 1")

    @property
    def n(self) -> int:
        """Number of requests in the trace."""
        return int(self.arrival_s.shape[0])

    def head(self, count: int) -> "FleetWorkload":
        """The first ``count`` requests (for smoke-scale runs)."""
        return FleetWorkload(
            arrival_s=self.arrival_s[:count],
            prompt_tokens=self.prompt_tokens[:count],
            output_tokens=self.output_tokens[:count],
            prefix_code=self.prefix_code[:count],
            prefix_tokens=self.prefix_tokens[:count],
        )

    def to_requests(self) -> List[Request]:
        """Materialize :class:`Request` objects (for :class:`EngineFleet`)."""
        out: List[Request] = []
        for i in range(self.n):
            code = int(self.prefix_code[i])
            out.append(
                Request(
                    request_id=f"req-{i:07d}",
                    arrival_s=float(self.arrival_s[i]),
                    prompt_tokens=int(self.prompt_tokens[i]),
                    output_tokens=int(self.output_tokens[i]),
                    prefix_id=None if code < 0 else f"prefix-{code}",
                    prefix_tokens=0 if code < 0 else int(self.prefix_tokens[i]),
                )
            )
        return out


def fleet_poisson_workload(
    num_requests: int,
    *,
    rate_rps: float = 100.0,
    prompt_mean: int = 512,
    prompt_sigma: float = 0.5,
    output_mean: int = 64,
    output_sigma: float = 0.6,
    max_tokens: int = 8192,
    num_prefixes: int = 0,
    prefix_tokens: int = 512,
    prefix_fraction: float = 0.0,
    seed: int = 0,
) -> FleetWorkload:
    """Draw a Poisson-arrival trace with lognormal lengths, fully vectorized.

    A ``prefix_fraction`` share of requests carry one of ``num_prefixes``
    shared system prompts of ``prefix_tokens`` tokens prepended to their
    unique part — the workload shape under which prefix-aware routing pays
    (Mooncake's production traces).  All randomness flows through
    ``derive_rng(seed, "fleet", "workload")``.
    """
    if num_requests <= 0:
        raise ConfigError("num_requests must be positive")
    if rate_rps <= 0.0:
        raise ConfigError("rate_rps must be positive")
    if not 0.0 <= prefix_fraction <= 1.0:
        raise ConfigError("prefix_fraction must be in [0, 1]")
    if prefix_fraction > 0.0 and num_prefixes <= 0:
        raise ConfigError("prefix_fraction > 0 needs num_prefixes > 0")
    rng = derive_rng(seed, "fleet", "workload")
    arrival = np.cumsum(rng.exponential(1.0 / rate_rps, num_requests))
    prompts = np.clip(
        np.rint(np.exp(rng.normal(log(float(prompt_mean)), prompt_sigma, num_requests))),
        1,
        max_tokens,
    ).astype(np.int64)
    outputs = np.clip(
        np.rint(np.exp(rng.normal(log(float(output_mean)), output_sigma, num_requests))),
        1,
        max_tokens,
    ).astype(np.int64)
    codes = np.full(num_requests, -1, dtype=np.int64)
    ptoks = np.zeros(num_requests, dtype=np.int64)
    if prefix_fraction > 0.0:
        shared = rng.random(num_requests) < prefix_fraction
        drawn = rng.integers(0, num_prefixes, num_requests, dtype=np.int64)
        codes = np.where(shared, drawn, codes)
        ptoks = np.where(shared, np.int64(prefix_tokens), ptoks)
        prompts = prompts + ptoks
    return FleetWorkload(
        arrival_s=arrival,
        prompt_tokens=prompts,
        output_tokens=outputs,
        prefix_code=codes,
        prefix_tokens=ptoks,
    )


# ================================================================= config
@dataclass(frozen=True)
class ReplicaModel:
    """Closed-form per-replica service model for :class:`ClusterFleet`.

    A replica serves up to ``slots`` requests concurrently within
    ``kv_capacity_tokens`` of KV budget (a request reserves
    ``prompt + output`` tokens for its lifetime).  Service time is the
    single-engine :class:`~repro.inference.scheduler.IterationCost` shape
    collapsed to one interval per request: prefill pays the compute-bound
    token cost once (minus block-rounded prefix hits), then each output
    token streams at ``per_output_token_s``.
    """

    slots: int = 64
    kv_capacity_tokens: int = 262_144
    base_s: float = 0.006
    per_prefill_token_s: float = 0.00011
    per_output_token_s: float = 0.0095
    block_tokens: int = 64

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise ConfigError("slots must be positive")
        if self.kv_capacity_tokens <= 0:
            raise ConfigError("kv_capacity_tokens must be positive")
        if self.base_s <= 0.0 or self.per_prefill_token_s <= 0.0:
            raise ConfigError("latency coefficients must be positive")
        if self.per_output_token_s <= 0.0:
            raise ConfigError("per_output_token_s must be positive")
        if self.block_tokens <= 0:
            raise ConfigError("block_tokens must be positive")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth-driven replica scaling.

    Every ``interval_s`` of simulated time the fleet compares mean queued
    requests per routable replica against the watermarks: above
    ``high_queue_per_replica`` a new replica spawns after ``spawn_delay_s``
    (model load + warmup); below ``low_queue_per_replica`` the
    highest-indexed replica drains (stops taking traffic, finishes its
    backlog, then retires).
    """

    min_replicas: int = 1
    max_replicas: int = 8
    high_queue_per_replica: float = 8.0
    low_queue_per_replica: float = 1.0
    interval_s: float = 5.0
    spawn_delay_s: float = 10.0

    def __post_init__(self) -> None:
        if self.min_replicas <= 0 or self.max_replicas < self.min_replicas:
            raise ConfigError("need 0 < min_replicas <= max_replicas")
        if self.low_queue_per_replica < 0.0 or (
            self.high_queue_per_replica <= self.low_queue_per_replica
        ):
            raise ConfigError("need 0 <= low watermark < high watermark")
        if self.interval_s <= 0.0 or self.spawn_delay_s < 0.0:
            raise ConfigError("interval_s must be positive, spawn_delay_s >= 0")


# ================================================================ results
@dataclass
class FleetResult:
    """Per-request outcome columns plus fleet counters from a cluster run.

    The trailing block only fills on disaggregated runs
    (:mod:`repro.inference.pools`): which decode replica served each
    request, when its decode admission happened, and the pool-level
    counters (KV handoffs, migrations, re-prefills).  Plain colocated
    runs leave the arrays ``None`` and the counters 0.
    """

    replica: np.ndarray
    start_s: np.ndarray
    first_token_s: np.ndarray
    finish_s: np.ndarray
    retries: np.ndarray
    rejected: np.ndarray
    prefix_hit_tokens: np.ndarray
    completed: int
    rejected_total: int
    deaths: int
    spawns: int
    drains: int
    reroutes: int
    served_per_replica: np.ndarray
    sim_end_s: float
    decode_replica: Optional[np.ndarray] = None
    decode_start_s: Optional[np.ndarray] = None
    handoffs: int = 0
    migrations: int = 0
    shipped_migrations: int = 0
    reprefills: int = 0

    def equals(self, other: "FleetResult") -> bool:
        """Bitwise parity: every column and counter identical.

        The optional decode columns are compared when both sides carry
        them (every pool-DES parity case does); a plain run's ``None``
        against a pool run's array is not a comparison the parity suite
        makes, so it is treated as "no shared column to compare".
        """

        def opt_eq(a: Optional[np.ndarray], b: Optional[np.ndarray]) -> bool:
            if a is None or b is None:
                return True
            return np.array_equal(a, b, equal_nan=np.issubdtype(a.dtype, np.floating))

        return (
            np.array_equal(self.replica, other.replica)
            and np.array_equal(self.start_s, other.start_s, equal_nan=True)
            and np.array_equal(self.first_token_s, other.first_token_s, equal_nan=True)
            and np.array_equal(self.finish_s, other.finish_s, equal_nan=True)
            and np.array_equal(self.retries, other.retries)
            and np.array_equal(self.rejected, other.rejected)
            and np.array_equal(self.prefix_hit_tokens, other.prefix_hit_tokens)
            and np.array_equal(self.served_per_replica, other.served_per_replica)
            and opt_eq(self.decode_replica, other.decode_replica)
            and opt_eq(self.decode_start_s, other.decode_start_s)
            and self.completed == other.completed
            and self.rejected_total == other.rejected_total
            and self.deaths == other.deaths
            and self.spawns == other.spawns
            and self.drains == other.drains
            and self.reroutes == other.reroutes
            and self.handoffs == other.handoffs
            and self.migrations == other.migrations
            and self.shipped_migrations == other.shipped_migrations
            and self.reprefills == other.reprefills
            and self.sim_end_s == other.sim_end_s
        )


@dataclass
class FleetReport:
    """Router-policy comparison row: tails, throughput, shedding, balance."""

    policy: str
    requests: int
    completed: int
    rejected: int
    shed_rate: float
    throughput_rps: float
    ttft_p50: float
    ttft_p95: float
    ttft_p99: float
    latency_p50: float
    latency_p99: float
    prefix_hit_rate: float
    mean_retries: float
    imbalance: float
    deaths: int
    spawns: int
    drains: int
    sim_end_s: float

    def row(self) -> Dict[str, float]:
        """Flat dict for table rendering / BENCH JSON."""
        return {
            "completed": self.completed,
            "shed_rate": round(self.shed_rate, 4),
            "throughput_rps": round(self.throughput_rps, 2),
            "ttft_p50_s": round(self.ttft_p50, 4),
            "ttft_p95_s": round(self.ttft_p95, 4),
            "ttft_p99_s": round(self.ttft_p99, 4),
            "latency_p99_s": round(self.latency_p99, 4),
            "prefix_hit_rate": round(self.prefix_hit_rate, 4),
            "imbalance": round(self.imbalance, 3),
        }


def summarize_fleet(
    workload: FleetWorkload, result: FleetResult, *, policy: str = ""
) -> FleetReport:
    """Aggregate a :class:`FleetResult` into a policy-comparison row."""
    done = np.logical_and(~result.rejected, np.isfinite(result.finish_s))
    n_done = int(done.sum())
    if n_done == 0:
        raise SchedulerError("fleet run completed zero requests")
    ttft = result.first_token_s[done] - workload.arrival_s[done]
    latency = result.finish_s[done] - workload.arrival_s[done]
    span = float(result.finish_s[done].max() - workload.arrival_s.min())
    served = result.served_per_replica
    active = served[served > 0]
    mean_served = float(active.mean()) if active.shape[0] else 0.0
    imbalance = float(active.max()) / mean_served if mean_served > 0.0 else 0.0
    with_prefix = np.logical_and(done, workload.prefix_code >= 0)
    n_prefix = int(with_prefix.sum())
    hits = int(np.count_nonzero(result.prefix_hit_tokens[with_prefix]))
    return FleetReport(
        policy=policy,
        requests=workload.n,
        completed=n_done,
        rejected=result.rejected_total,
        shed_rate=result.rejected_total / workload.n,
        throughput_rps=n_done / span if span > 0.0 else 0.0,
        ttft_p50=percentile(ttft.tolist(), 50.0),
        ttft_p95=percentile(ttft.tolist(), 95.0),
        ttft_p99=percentile(ttft.tolist(), 99.0),
        latency_p50=percentile(latency.tolist(), 50.0),
        latency_p99=percentile(latency.tolist(), 99.0),
        prefix_hit_rate=hits / n_prefix if n_prefix else 0.0,
        mean_retries=float(result.retries.mean()),
        imbalance=imbalance,
        deaths=result.deaths,
        spawns=result.spawns,
        drains=result.drains,
        sim_end_s=result.sim_end_s,
    )


# ========================================================== cluster fleet
class ClusterFleet:
    """Request-granular fleet DES over sharded per-replica event heaps.

    Each replica owns a small finish heap (never larger than its ``slots``
    concurrency), the next finish comes from a tournament over the heap
    tops, and arrivals are consumed straight off the sorted workload
    columns — no global heap, no stale-event tombstones.  Event order is
    total and deterministic: at equal timestamps, death < spawn < finish <
    retry < arrival < autoscale tick, finishes tie-break on (replica,
    request), and the frozen naive baseline realizes the identical order
    through one global priority heap, which the parity suite exploits.

    Router decisions are batched out of the per-request path: the three
    built-in policies are specialized inline — the seeded-uniform stream
    is drawn in vectorized blocks, and the least-loaded / prefix-aware
    argmin reads a packed integer load key that admission and completion
    maintain *incrementally* (O(1) per state change) instead of being
    recomputed by scanning replicas per decision, which is what the naive
    baseline does.  A custom :class:`~repro.inference.router.Router`
    subclass still works: the fleet falls back to syncing the
    :class:`~repro.inference.router.RouterState` columns and calling
    ``route`` per request (correct, but off the fast path).
    """

    def __init__(
        self,
        n_replicas: int,
        router: Router,
        *,
        model: Optional[ReplicaModel] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        shed_slo: Optional[SLO] = None,
        autoscale: Optional[AutoscalePolicy] = None,
        pools: Optional["PoolSpec"] = None,
        decode_router: Optional[Router] = None,
    ) -> None:
        if n_replicas <= 0:
            raise ConfigError("n_replicas must be positive")
        if pools is not None and pools.total != n_replicas:
            raise ConfigError(
                f"pool spec covers {pools.total} replicas but n_replicas={n_replicas}"
            )
        if pools is None and decode_router is not None:
            raise ConfigError("decode_router needs a pool spec to route over")
        self.router = router
        self.model = model or ReplicaModel()
        self.retry = retry or RetryPolicy()
        self.shed_slo = shed_slo
        self.autoscale = autoscale
        self.pools = pools
        self.decode_router = decode_router
        self.n_replicas = n_replicas
        self.max_replicas = (
            max(n_replicas, autoscale.max_replicas) if autoscale else n_replicas
        )
        self._faults = faults
        self._deaths: List[FaultEvent] = (
            faults.of_kind(REPLICA_DEATH) if faults is not None else []
        )
        self.fault_log: List[FaultEvent] = []

    # The loop below is the optimized counterpart of
    # benchmarks/perf/_legacy_fleet.py:LegacyClusterFleet.run — any change
    # here must preserve bitwise FleetResult parity with that frozen code.
    def run(self, workload: FleetWorkload) -> FleetResult:
        """Simulate the trace to completion; returns per-request outcomes."""
        if self.pools is not None:
            from .pools import run_pool_fleet  # lazy: pools imports fleet

            return run_pool_fleet(self, workload)
        model = self.model
        n = workload.n
        need_l: List[int] = (workload.prompt_tokens + workload.output_tokens).tolist()
        need_max = max(need_l)
        if need_max > model.kv_capacity_tokens:
            raise ConfigError(
                "a request needs more KV than one replica holds "
                f"({need_max} > {model.kv_capacity_tokens})"
            )
        # Scalar-read copies of the workload columns: list indexing beats
        # ndarray scalar indexing by ~4x in the per-event hot path.
        arr_l: List[float] = workload.arrival_s.tolist()
        prompt_l: List[int] = workload.prompt_tokens.tolist()
        out_l: List[int] = workload.output_tokens.tolist()
        code_l: List[int] = workload.prefix_code.tolist()
        ptok_l: List[int] = workload.prefix_tokens.tolist()

        max_replicas = self.max_replicas
        state = RouterState(max_replicas, model.kv_capacity_tokens)
        state.routable[: self.n_replicas] = True
        state.rebuild_routable()
        router = self.router
        router.bind(state)
        # Policy specialization: the built-in routers run inline against
        # incrementally maintained integer keys (mode 0-2); anything else
        # goes through the generic column-sync path (mode 3).
        from .router import LeastLoadedRouter, PrefixAwareRouter, RandomRouter

        if type(router) is RandomRouter:
            mode = 0
            route_rng = derive_rng(router.seed, "fleet", "router")
        elif type(router) is LeastLoadedRouter:
            mode = 1
        elif type(router) is PrefixAwareRouter:
            mode = 2
        else:
            mode = 3

        huge = 1 << 62
        span = model.kv_capacity_tokens + 1
        alive = [True] * self.n_replicas + [False] * (max_replicas - self.n_replicas)
        draining = [False] * max_replicas
        routable_f = list(alive)
        routable_l = [r for r in range(max_replicas) if routable_f[r]]
        alive_count = self.n_replicas
        depth_l = [0] * max_replicas
        running_l = [0] * max_replicas
        kv_l = [0] * max_replicas
        key_l = [0 if routable_f[r] else huge for r in range(max_replicas)]
        # Prefix caches: code -> cached tokens per replica slot, plus a
        # per-code *holder list* (replicas with a non-zero cache entry) so
        # the prefix-aware scan touches only replicas that can possibly
        # hit — O(holders), not O(R), per decision.
        prefix_tab: Dict[int, List[int]] = {}
        holders: Dict[int, List[int]] = {}
        generic = mode == 3
        block_route = (
            router.block_tokens if isinstance(router, PrefixAwareRouter) else model.block_tokens
        )

        queues: List[Deque[int]] = [deque() for _ in range(max_replicas)]
        heaps: List[List[Tuple[float, int]]] = [[] for _ in range(max_replicas)]
        tops: List[float] = [_INF] * max_replicas
        # Tournament heap over per-replica top finishes: ``(top, replica)``
        # entries, lazily invalidated — an entry is live iff it still
        # equals ``tops[replica]``.  ``fin_min`` caches the live minimum.
        fheap: List[Tuple[float, int]] = []
        fin_min = _INF

        # first_token_s / finish_s are NOT tracked per event: both derive
        # exactly (same IEEE expression order as the loop's scalars) from
        # start_s and the hit column, so they are vectorized at the end.
        res_rep = [-1] * n
        res_start = [float("nan")] * n
        res_retry = [0] * n
        res_rej = [False] * n
        res_hit = [0] * n
        served = [0] * max_replicas
        completed = 0
        rejected = 0
        deaths = spawns = drains = reroutes = 0

        retry_heap: List[Tuple[float, int, int]] = []
        retry_seq = 0
        spawn_heap: List[float] = []
        death_list = self._deaths
        di = 0
        scale = self.autoscale
        tick = scale.interval_s if scale is not None else _INF
        shed = self.shed_slo
        # +inf sentinel: "t - arrival > shed_ttft" is then never true, so
        # the hot loop needs no separate shed-enabled test.
        shed_ttft = shed.ttft_s if shed is not None else _INF
        retry_policy = self.retry
        slots = model.slots
        kv_cap = model.kv_capacity_tokens
        base = model.base_s
        per_pf = model.per_prefill_token_s
        per_out = model.per_output_token_s
        block = model.block_tokens
        clock = 0.0
        ptr = 0
        rng_buf: List[float] = []
        rng_ptr = 0
        heappush = heapq.heappush
        heappop = heapq.heappop

        def try_start(r: int, t: float) -> None:
            nonlocal rejected, fin_min
            q = queues[r]
            top = tops[r]
            rt = routable_f[r]
            while q and running_l[r] < slots:
                i = q[0]
                if t - arr_l[i] > shed_ttft:
                    q.popleft()
                    depth_l[r] -= 1
                    if rt:
                        key_l[r] -= span
                    res_rej[i] = True
                    rejected += 1
                    continue
                need = need_l[i]
                if kv_l[r] + need > kv_cap:
                    break
                q.popleft()
                depth_l[r] -= 1
                running_l[r] += 1
                kv_l[r] += need
                if rt:
                    key_l[r] += need  # depth-1/running+1 cancel in the key
                hit = 0
                code = code_l[i]
                if code >= 0:
                    pt = ptok_l[i]
                    col = prefix_tab.get(code)
                    if col is None:
                        col = [0] * max_replicas
                        col[r] = pt
                        prefix_tab[code] = col
                        if pt > 0:
                            holders[code] = [r]
                        if generic:
                            state.record_prefix(code, r, pt)
                    else:
                        cached = col[r]
                        m = cached if cached < pt else pt
                        hit = m - m % block
                        if pt > cached:
                            col[r] = pt
                            if cached == 0:
                                holders.setdefault(code, []).append(r)
                            if generic:
                                state.record_prefix(code, r, pt)
                eff = prompt_l[i] - hit
                if eff < 1:
                    eff = 1
                first = t + (base + eff * per_pf)
                fin = first + (out_l[i] - 1) * per_out
                res_rep[i] = r
                res_start[i] = t
                res_hit[i] = hit
                heappush(heaps[r], (fin, i))
                if fin < top:
                    top = fin
            if top != tops[r]:  # tops only ever drop inside try_start
                tops[r] = top
                heappush(fheap, (top, r))
                if top < fin_min:
                    fin_min = top

        def route_to(i: int, t: float) -> None:
            nonlocal rng_buf, rng_ptr
            if not routable_l:
                raise SchedulerError("no routable replicas")
            if mode == 0:
                if rng_ptr >= len(rng_buf):
                    rng_buf = route_rng.random(8192).tolist()
                    rng_ptr = 0
                u = rng_buf[rng_ptr]
                rng_ptr += 1
                k = len(routable_l)
                j = int(u * k)
                if j >= k:
                    j = k - 1
                r = routable_l[j]
            elif mode == 1:
                r = key_l.index(min(key_l))
            elif mode == 2:
                r = -1
                code = code_l[i]
                pt = ptok_l[i]
                if code >= 0 and pt > 0:
                    hl = holders.get(code)
                    if hl is not None:
                        # Only holders can hit; pick by lexicographic
                        # (-hit, load key, index) — identical to the
                        # ascending-index two-pass scan of the baseline.
                        col = prefix_tab[code]
                        best = 0
                        bk = 0
                        for r2 in hl:
                            if not routable_f[r2]:
                                continue
                            c = col[r2]
                            m = c if c < pt else pt
                            h = m - m % block_route
                            if h <= 0:
                                continue
                            if h > best:
                                best = h
                                bk = key_l[r2]
                                r = r2
                            elif h == best:
                                k2 = key_l[r2]
                                if k2 < bk or (k2 == bk and r2 < r):
                                    bk = k2
                                    r = r2
                if r < 0:  # no prefix, or no routable replica caches it
                    r = key_l.index(min(key_l))
            else:
                state.queue_depth[:] = depth_l
                state.running[:] = running_l
                state.kv_used[:] = kv_l
                r = router.route(code_l[i], ptok_l[i])
            queues[r].append(i)
            depth_l[r] += 1
            if routable_f[r]:
                key_l[r] += span
            if running_l[r] < slots:
                try_start(r, t)

        def membership_changed() -> None:
            nonlocal routable_l
            routable_l = [r for r in range(max_replicas) if routable_f[r]]
            state.rebuild_routable()
            router.on_membership_change()

        def drop_prefixes(r: int) -> None:
            for code, col in prefix_tab.items():
                if col[r]:
                    col[r] = 0
                    holders[code].remove(r)

        def retire(r: int) -> None:
            nonlocal alive_count, drains
            alive[r] = False
            draining[r] = False
            alive_count -= 1
            drains += 1
            depth_l[r] = 0
            running_l[r] = 0
            kv_l[r] = 0
            drop_prefixes(r)
            state.reset_counters(r)
            state.clear_replica(r)

        while completed + rejected < n:
            t_death = death_list[di].at_s if di < len(death_list) else _INF
            t_spawn = spawn_heap[0] if spawn_heap else _INF
            t_retry = retry_heap[0][0] if retry_heap else _INF
            t_tick = tick
            t_rare_hi = t_death if t_death <= t_spawn else t_spawn
            if t_rare_hi == _INF and t_retry == _INF and t_tick == _INF:
                # No rare event can ever interleave again: only finishes
                # and arrivals remain.  Ticks drive draining and deaths
                # are spent, so every finishing replica is routable and
                # the membership guards drop out of the loop.
                while True:
                    t_arr = arr_l[ptr] if ptr < n else _INF
                    if fin_min <= t_arr:
                        if fin_min == _INF:
                            break
                        r = fheap[0][1]
                        heappop(fheap)
                        fin, i = heappop(heaps[r])
                        h = heaps[r]
                        if h:
                            top = h[0][0]
                            tops[r] = top
                            heappush(fheap, (top, r))
                        else:
                            tops[r] = _INF
                        while fheap:  # discard stale entries off the head
                            f0, r0 = fheap[0]
                            if tops[r0] == f0:
                                fin_min = f0
                                break
                            heappop(fheap)
                        else:
                            fin_min = _INF
                        running_l[r] -= 1
                        kv_l[r] -= need_l[i]
                        key_l[r] -= span + need_l[i]
                        completed += 1
                        served[r] += 1
                        clock = fin
                        if queues[r]:
                            try_start(r, fin)
                        continue
                    # Arrival.  The two cheapest policies are inlined —
                    # one uniform draw / one C-level min — the rest go
                    # through route_to (identical decisions either way).
                    clock = t_arr
                    if mode == 0:
                        if rng_ptr >= len(rng_buf):
                            rng_buf = route_rng.random(8192).tolist()
                            rng_ptr = 0
                        u = rng_buf[rng_ptr]
                        rng_ptr += 1
                        k = len(routable_l)
                        if k == 0:
                            raise SchedulerError("no routable replicas")
                        j = int(u * k)
                        if j >= k:
                            j = k - 1
                        r = routable_l[j]
                    elif mode == 1:
                        if not routable_l:
                            raise SchedulerError("no routable replicas")
                        r = key_l.index(min(key_l))
                    else:
                        route_to(ptr, t_arr)
                        ptr += 1
                        continue
                    queues[r].append(ptr)
                    depth_l[r] += 1
                    key_l[r] += span
                    if running_l[r] < slots:
                        try_start(r, t_arr)
                    ptr += 1
                if completed + rejected >= n:
                    break
            # Hot inner loop: finishes and arrivals strictly ordered ahead
            # of every rare event (ties per the priority ladder above).
            while True:
                t_arr = arr_l[ptr] if ptr < n else _INF
                t_fin = fin_min
                if (
                    t_fin < t_rare_hi
                    and t_fin <= t_retry
                    and t_fin <= t_arr
                    and t_fin <= t_tick
                ):
                    r = fheap[0][1]  # head is live: fheap[0][0] == fin_min
                    heappop(fheap)
                    fin, i = heappop(heaps[r])
                    if heaps[r]:
                        top = heaps[r][0][0]
                        tops[r] = top
                        heappush(fheap, (top, r))
                    else:
                        tops[r] = _INF
                    while fheap:  # discard stale entries off the head
                        f0, r0 = fheap[0]
                        if tops[r0] == f0:
                            fin_min = f0
                            break
                        heappop(fheap)
                    else:
                        fin_min = _INF
                    running_l[r] -= 1
                    kv_l[r] -= need_l[i]
                    if routable_f[r]:
                        key_l[r] -= span + need_l[i]
                    completed += 1
                    served[r] += 1
                    clock = fin
                    if queues[r]:
                        try_start(r, fin)
                    if draining[r] and running_l[r] == 0 and not queues[r]:
                        retire(r)
                    continue
                if (
                    t_arr < t_rare_hi
                    and t_arr < t_retry
                    and t_arr < t_fin
                    and t_arr <= t_tick
                ):
                    clock = t_arr
                    route_to(ptr, t_arr)
                    ptr += 1
                    continue
                break
            if completed + rejected >= n:
                break
            # Rare event dispatch: smallest (time, priority).
            best_t = t_death
            best_kind = 0
            if t_spawn < best_t:
                best_t, best_kind = t_spawn, 1
            if t_retry < best_t:
                best_t, best_kind = t_retry, 2
            if t_tick < best_t:
                best_t, best_kind = t_tick, 3
            if best_t == _INF:
                raise SchedulerError(
                    "fleet stalled: queued work but no runnable event "
                    f"({completed + rejected}/{n} settled)"
                )
            clock = best_t
            if best_kind == 0:
                event = death_list[di]
                di += 1
                cands = [r for r in range(max_replicas) if alive[r] and not draining[r]]
                if not cands:
                    cands = [r for r in range(max_replicas) if alive[r]]
                victim = -1
                if event.target is not None:
                    name = event.target
                    if name.startswith("replica-"):
                        slot = int(name[len("replica-") :])
                        if 0 <= slot < max_replicas and alive[slot]:
                            victim = slot
                elif cands:
                    victim = cands[deaths % len(cands)]
                if victim < 0:
                    continue  # nothing to kill (all dead or bad target)
                self.fault_log.append(event)
                deaths += 1
                r = victim
                alive[r] = False
                draining[r] = False
                routable_f[r] = False
                key_l[r] = huge
                alive_count -= 1
                state.routable[r] = False
                membership_changed()
                in_flight = sorted(heaps[r])
                heaps[r] = []
                tops[r] = _INF
                while fheap:  # victim's entries just went stale
                    f0, r0 = fheap[0]
                    if tops[r0] == f0:
                        fin_min = f0
                        break
                    heappop(fheap)
                else:
                    fin_min = _INF
                # repro-lint: disable=R010 — runs only on rare REPLICA_DEATH
                # fault events, and the copy is required before .clear()
                stranded = list(queues[r])
                queues[r].clear()
                depth_l[r] = 0
                running_l[r] = 0
                kv_l[r] = 0
                drop_prefixes(r)
                state.reset_counters(r)
                state.clear_replica(r)
                for _, i in in_flight:
                    res_retry[i] += 1
                    res_rep[i] = -1
                    res_start[i] = float("nan")
                    res_hit[i] = 0
                    if retry_policy.exhausted(res_retry[i]):
                        res_rej[i] = True
                        rejected += 1
                    else:
                        ready = event.end_s + retry_policy.delay_s(res_retry[i])
                        heappush(retry_heap, (ready, retry_seq, i))
                        retry_seq += 1
                for i in stranded:
                    reroutes += 1
                    route_to(i, event.at_s)
            elif best_kind == 1:
                heappop(spawn_heap)
                slot = -1
                for r in range(max_replicas):
                    if not alive[r]:
                        slot = r
                        break
                if slot >= 0:
                    alive[slot] = True
                    draining[slot] = False
                    routable_f[slot] = True
                    key_l[slot] = 0
                    alive_count += 1
                    spawns += 1
                    state.routable[slot] = True
                    membership_changed()
            elif best_kind == 2:
                _, _, i = heappop(retry_heap)
                route_to(i, best_t)
            else:
                tick = tick + scale.interval_s  # type: ignore[union-attr]
                nr = len(routable_l)
                if nr > 0 and scale is not None:
                    waiting = 0
                    for r in routable_l:
                        waiting += depth_l[r]
                    per = waiting / nr
                    if (
                        per > scale.high_queue_per_replica
                        and alive_count + len(spawn_heap) < scale.max_replicas
                    ):
                        heappush(spawn_heap, best_t + scale.spawn_delay_s)
                    elif per < scale.low_queue_per_replica and nr > scale.min_replicas:
                        r = routable_l[nr - 1]
                        draining[r] = True
                        routable_f[r] = False
                        key_l[r] = huge
                        state.routable[r] = False
                        membership_changed()
                        if running_l[r] == 0 and not queues[r]:
                            retire(r)

        start_col = np.asarray(res_start, dtype=np.float64)
        hit_col = np.asarray(res_hit, dtype=np.int64)
        eff_col = np.maximum(workload.prompt_tokens - hit_col, 1)
        first_col = start_col + (base + eff_col * per_pf)
        fin_col = first_col + (workload.output_tokens - 1) * per_out
        return FleetResult(
            replica=np.asarray(res_rep, dtype=np.int64),
            start_s=start_col,
            first_token_s=first_col,
            finish_s=fin_col,
            retries=np.asarray(res_retry, dtype=np.int64),
            rejected=np.asarray(res_rej, dtype=np.bool_),
            prefix_hit_tokens=hit_col,
            completed=completed,
            rejected_total=rejected,
            deaths=deaths,
            spawns=spawns,
            drains=drains,
            reroutes=reroutes,
            served_per_replica=np.asarray(served, dtype=np.int64),
            sim_end_s=clock,
        )


# =========================================================== engine fleet
class _EngineReplica:
    """One fleet slot: a live engine, its arrival deque, and liveness."""

    def __init__(self, engine: ServingEngine) -> None:
        self.engine = engine
        self.pending: Deque[Request] = deque()
        self.active = False
        self.draining = False

    def idle(self) -> bool:
        engine = self.engine
        return (
            not self.pending
            and not engine.running
            and not engine._preempted
            and not engine._retry_queue
        )


class EngineFleet:
    """N token-level :class:`ServingEngine` replicas behind a router.

    Replicas advance through :meth:`ServingEngine.step`, each on its own
    clock; the fleet interleaves replica steps with routed arrivals,
    replica-death faults, fleet-level retries, and autoscale ticks in
    deterministic (time, priority) order.  With one replica and no fleet
    faults, the driven engine's trajectory — every timestamp, iteration
    count, and KV decision — is bit-identical to ``engine.run()`` on the
    same requests, whatever the router policy (the ROADMAP item-5
    metamorphic invariant).  Routers see the same :class:`RouterState`
    columns as :class:`ClusterFleet`, refreshed from live engine state
    before every decision; prefix-hit columns are optimistic route-time
    estimates, as in a real cluster's routing tier.
    """

    def __init__(
        self,
        engine_factory: Callable[[], ServingEngine],
        n_replicas: int,
        router: Router,
        *,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        autoscale: Optional[AutoscalePolicy] = None,
    ) -> None:
        if n_replicas <= 0:
            raise ConfigError("n_replicas must be positive")
        self.engine_factory = engine_factory
        self.router = router
        self.retry = retry or RetryPolicy()
        self.autoscale = autoscale
        self.max_replicas = (
            max(n_replicas, autoscale.max_replicas) if autoscale else n_replicas
        )
        self.replicas: List[Optional[_EngineReplica]] = [
            _EngineReplica(engine_factory()) for _ in range(n_replicas)
        ] + [None] * (self.max_replicas - n_replicas)
        sample = self.replicas[0].engine  # type: ignore[union-attr]
        capacity = getattr(sample.allocator, "capacity_tokens", None)
        self._kv_proxy = capacity is None
        self.state = RouterState(
            self.max_replicas,
            int(capacity) if capacity is not None else max(sample.max_running, 1),
        )
        for r in range(n_replicas):
            self.state.routable[r] = True
        self.state.rebuild_routable()
        self.router.bind(self.state)
        self._deaths: List[FaultEvent] = (
            faults.of_kind(REPLICA_DEATH) if faults is not None else []
        )
        self.fault_log: List[FaultEvent] = []
        self.assignments: Dict[str, int] = {}
        self._prefix_codes: Dict[str, int] = {}
        self.retries = 0
        self.rejected = 0
        self.deaths = 0
        self.spawns = 0
        self.drains = 0
        self.reroutes = 0

    # --------------------------------------------------------- router feed
    def _code_of(self, request: Request) -> int:
        if request.prefix_id is None or request.prefix_tokens <= 0:
            return -1
        code = self._prefix_codes.get(request.prefix_id)
        if code is None:
            code = len(self._prefix_codes)
            self._prefix_codes[request.prefix_id] = code
        return code

    def _refresh_columns(self) -> None:
        state = self.state
        for r in state.routable_indices.tolist():
            w = self.replicas[r]
            assert w is not None
            engine = w.engine
            state.queue_depth[r] = len(w.pending)
            state.running[r] = len(engine.running) + len(engine._preempted)
            if self._kv_proxy:
                state.kv_used[r] = len(engine.running)
            else:
                state.kv_used[r] = engine.allocator.stats.reserved_tokens  # type: ignore[union-attr]

    def _route(self, request: Request, count_reroute: bool = False) -> None:
        self._refresh_columns()
        code = self._code_of(request)
        r = self.router.route(code, request.prefix_tokens)
        if code >= 0:
            self.state.record_prefix(code, r, request.prefix_tokens)
        w = self.replicas[r]
        assert w is not None
        w.pending.append(request)
        w.active = True
        self.assignments[request.request_id] = r
        if count_reroute:
            self.reroutes += 1

    def _retire(self, r: int) -> None:
        self.replicas[r] = None
        self.state.routable[r] = False
        self.state.rebuild_routable()
        self.state.reset_counters(r)
        self.state.clear_replica(r)
        self.drains += 1
        self.router.on_membership_change()

    def _absorb_death(
        self,
        event: FaultEvent,
        retry_heap: List[Tuple[float, int, Request]],
        seq: List[int],
    ) -> None:
        cands = [
            r
            for r in range(self.max_replicas)
            if self.replicas[r] is not None and not self.replicas[r].draining  # type: ignore[union-attr]
        ]
        if not cands:
            cands = [r for r in range(self.max_replicas) if self.replicas[r] is not None]
        victim = -1
        if event.target is not None:
            name = event.target
            if name.startswith("replica-"):
                slot = int(name[len("replica-") :])
                if 0 <= slot < self.max_replicas and self.replicas[slot] is not None:
                    victim = slot
        elif cands:
            victim = cands[self.deaths % len(cands)]
        if victim < 0:
            return
        self.fault_log.append(event)
        self.deaths += 1
        w = self.replicas[victim]
        assert w is not None
        engine = w.engine
        in_flight = list(engine.running.values()) + engine._preempted
        stranded = list(w.pending)
        carried = sorted(engine._retry_queue)
        self.replicas[victim] = None
        self.state.routable[victim] = False
        self.state.rebuild_routable()
        self.state.reset_counters(victim)
        self.state.clear_replica(victim)
        self.router.on_membership_change()
        for run_seq in in_flight:
            request = run_seq.request
            request.retries += 1
            self.retries += 1
            request.admitted_s = None
            request.first_token_s = None
            request.token_times = []
            request.prefix_hit = False
            if self.retry.exhausted(request.retries):
                request.rejected = True
                self.rejected += 1
                continue
            ready = event.end_s + self.retry.delay_s(request.retries)
            heapq.heappush(retry_heap, (max(ready, event.at_s), seq[0], request))
            seq[0] += 1
        for ready, _, request in carried:
            heapq.heappush(retry_heap, (max(ready, event.at_s), seq[0], request))
            seq[0] += 1
        if not self.state.routable_indices.shape[0] and (stranded or retry_heap):
            raise SchedulerError("replica_death left the fleet with no replicas")
        for request in stranded:
            self._route(request, count_reroute=True)

    # ------------------------------------------------------------ main loop
    def run(self, requests: Sequence[Request]) -> List[Request]:
        """Route and serve ``requests`` across the fleet to completion."""
        order = sorted(requests, key=lambda r: r.arrival_s)
        n = len(order)
        ptr = 0
        retry_heap: List[Tuple[float, int, Request]] = []
        seq = [0]
        spawn_heap: List[float] = []
        di = 0
        scale = self.autoscale
        tick = scale.interval_s if scale is not None else _INF
        while True:
            t_death = self._deaths[di].at_s if di < len(self._deaths) else _INF
            t_spawn = spawn_heap[0] if spawn_heap else _INF
            t_retry = retry_heap[0][0] if retry_heap else _INF
            t_arr = order[ptr].arrival_s if ptr < n else _INF
            t_step = _INF
            r_step = -1
            for r in range(self.max_replicas):
                w = self.replicas[r]
                if w is not None and w.active and w.engine.now < t_step:
                    t_step = w.engine.now
                    r_step = r
            work_left = ptr < n or retry_heap or r_step >= 0
            t_tick = tick if (scale is not None and work_left) else _INF
            # Deterministic order: death < spawn < retry < arrival < step < tick.
            best_t, best_kind = t_death, 0
            if t_spawn < best_t:
                best_t, best_kind = t_spawn, 1
            if t_retry < best_t:
                best_t, best_kind = t_retry, 2
            if t_arr < best_t:
                best_t, best_kind = t_arr, 3
            if t_step < best_t:
                best_t, best_kind = t_step, 4
            if t_tick < best_t:
                best_t, best_kind = t_tick, 5
            if best_t == _INF:
                if di < len(self._deaths):
                    di += 1  # faults scheduled after the fleet drained: no-op
                    continue
                break
            if best_kind == 0:
                di += 1
                self._absorb_death(self._deaths[di - 1], retry_heap, seq)
            elif best_kind == 1:
                heapq.heappop(spawn_heap)
                slot = -1
                for r in range(self.max_replicas):
                    if self.replicas[r] is None:
                        slot = r
                        break
                if slot >= 0:
                    self.replicas[slot] = _EngineReplica(self.engine_factory())
                    self.spawns += 1
                    self.state.routable[slot] = True
                    self.state.rebuild_routable()
                    self.router.on_membership_change()
            elif best_kind == 2:
                _, _, request = heapq.heappop(retry_heap)
                self._route(request, count_reroute=True)
            elif best_kind == 3:
                self._route(order[ptr])
                ptr += 1
            elif best_kind == 4:
                w = self.replicas[r_step]
                assert w is not None
                if w.engine.step(w.pending) == STEP_IDLE:
                    w.active = False
                    if w.draining and w.idle():
                        self._retire(r_step)
            else:
                tick = tick + scale.interval_s  # type: ignore[union-attr]
                routable = self.state.routable_indices.tolist()
                nr = len(routable)
                if nr > 0 and scale is not None:
                    waiting = sum(
                        len(self.replicas[r].pending) for r in routable  # type: ignore[union-attr]
                    )
                    per = waiting / nr
                    live = sum(1 for w in self.replicas if w is not None)
                    if (
                        per > scale.high_queue_per_replica
                        and live + len(spawn_heap) < scale.max_replicas
                    ):
                        heapq.heappush(spawn_heap, best_t + scale.spawn_delay_s)
                    elif per < scale.low_queue_per_replica and nr > scale.min_replicas:
                        r = routable[nr - 1]
                        w = self.replicas[r]
                        assert w is not None
                        w.draining = True
                        self.state.routable[r] = False
                        self.state.rebuild_routable()
                        self.router.on_membership_change()
                        if w.idle():
                            self._retire(r)
        return list(requests)
