"""LLM serving simulator: batching, paged KV, disaggregation, caches (§2.3.2)."""

from .attention_store import (
    DEFAULT_TIERS,
    AttentionStore,
    MultiTurnReport,
    Tier,
    simulate_multiturn,
)
from .disaggregation import (
    TransferModel,
    simulate_colocated,
    simulate_disaggregated,
    sweep_splits,
)
from .eviction import (
    POLICIES,
    AllOrNothingPolicy,
    CacheEntry,
    DependencyTreePolicy,
    EvictionPolicy,
    KVEntryCache,
    LFUPolicy,
    LRUPolicy,
)
from .fleet import (
    AutoscalePolicy,
    ClusterFleet,
    EngineFleet,
    FleetReport,
    FleetResult,
    FleetWorkload,
    ReplicaModel,
    fleet_poisson_workload,
    summarize_fleet,
)
from .kvcache import KVStats, PagedAllocator, ReservedAllocator
from .metrics import (
    PhaseStats,
    PoolBreakdown,
    ServingReport,
    fleet_phase_breakdown,
    phase_breakdown,
    summarize,
)
from .pools import (
    ROLE_NAMES,
    DisaggEngineFleet,
    MigrationPolicy,
    PoolSpec,
    make_pool_routers,
)
from .prefix import PrefixCacheSimulator, PrefixReport, compare_policies
from .request import SLO, Request
from .router import (
    ROUTER_NAMES,
    LeastLoadedRouter,
    PrefixAwareRouter,
    RandomRouter,
    Router,
    RouterState,
    make_router,
)
from .scheduler import (
    STEP_HANDOFF,
    ContinuousBatchScheduler,
    ShortestJobFirstScheduler,
    IterationCost,
    ServingEngine,
    StaticBatchScheduler,
)
from .workload import (
    LengthDistribution,
    multi_turn_workload,
    poisson_workload,
    shared_prefix_workload,
)

__all__ = [
    "DEFAULT_TIERS", "AttentionStore", "MultiTurnReport", "Tier", "simulate_multiturn",
    "TransferModel", "simulate_colocated", "simulate_disaggregated", "sweep_splits",
    "POLICIES", "AllOrNothingPolicy", "CacheEntry", "DependencyTreePolicy",
    "EvictionPolicy", "KVEntryCache", "LFUPolicy", "LRUPolicy",
    "AutoscalePolicy", "ClusterFleet", "EngineFleet", "FleetReport", "FleetResult",
    "FleetWorkload", "ReplicaModel", "fleet_poisson_workload", "summarize_fleet",
    "KVStats", "PagedAllocator", "ReservedAllocator",
    "PhaseStats", "PoolBreakdown", "ServingReport",
    "fleet_phase_breakdown", "phase_breakdown", "summarize",
    "PrefixCacheSimulator", "PrefixReport", "compare_policies",
    "ROLE_NAMES", "DisaggEngineFleet", "MigrationPolicy", "PoolSpec", "make_pool_routers",
    "SLO", "Request",
    "ROUTER_NAMES", "LeastLoadedRouter", "PrefixAwareRouter", "RandomRouter",
    "Router", "RouterState", "make_router",
    "STEP_HANDOFF", "ContinuousBatchScheduler", "ShortestJobFirstScheduler", "IterationCost", "ServingEngine", "StaticBatchScheduler",
    "LengthDistribution", "multi_turn_workload", "poisson_workload", "shared_prefix_workload",
]
