"""Demonstration (few-shot example) selection strategies.

"Demonstration examples selection" is called out in §2.2.1. Three standard
selectors over a pool of labelled examples:

* :class:`RandomSelector` — the seeded baseline;
* :class:`SimilaritySelector` — nearest examples to the query in embedding
  space (kNN-prompting);
* :class:`DiversitySelector` — greedy max-min facility-location pick that
  covers the input space (good when queries are broad).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..utils import derive_rng
from .templates import Demonstration


class ExamplePool:
    """A pool of demonstrations with cached embeddings."""

    def __init__(
        self, examples: Sequence[Demonstration], embedder: Optional[EmbeddingModel] = None
    ) -> None:
        self.examples = list(examples)
        self.embedder = embedder
        self._matrix: Optional[np.ndarray] = None

    @property
    def matrix(self) -> np.ndarray:
        if self.embedder is None:
            raise ConfigError("this selector requires an embedder on the pool")
        if self._matrix is None:
            self._matrix = self.embedder.embed_batch([e.input for e in self.examples])
        return self._matrix

    def __len__(self) -> int:
        return len(self.examples)


class RandomSelector:
    """Seeded uniform sample (query-independent)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def select(self, pool: ExamplePool, query: str, k: int) -> List[Demonstration]:
        if k <= 0 or not pool.examples:
            return []
        rng = derive_rng(self.seed, "fewshot", query)
        k = min(k, len(pool))
        picks = rng.choice(len(pool), size=k, replace=False)
        return [pool.examples[int(i)] for i in picks]


class SimilaritySelector:
    """k nearest examples to the query in embedding space."""

    def select(self, pool: ExamplePool, query: str, k: int) -> List[Demonstration]:
        if k <= 0 or not pool.examples:
            return []
        qvec = pool.embedder.embed(query)  # type: ignore[union-attr]
        scores = pool.matrix @ qvec
        order = np.argsort(-scores)[: min(k, len(pool))]
        return [pool.examples[int(i)] for i in order]


class DiversitySelector:
    """Greedy max-min coverage: first the most similar, then farthest-first."""

    def select(self, pool: ExamplePool, query: str, k: int) -> List[Demonstration]:
        if k <= 0 or not pool.examples:
            return []
        matrix = pool.matrix
        qvec = pool.embedder.embed(query)  # type: ignore[union-attr]
        k = min(k, len(pool))
        selected = [int(np.argmax(matrix @ qvec))]
        while len(selected) < k:
            sims_to_selected = matrix @ matrix[selected].T  # (n, |selected|)
            max_sim = sims_to_selected.max(axis=1)
            max_sim[selected] = np.inf
            selected.append(int(np.argmin(max_sim)))
        return [pool.examples[i] for i in selected]


SELECTORS = {
    "random": RandomSelector,
    "similarity": SimilaritySelector,
    "diversity": DiversitySelector,
}
