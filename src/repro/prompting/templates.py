"""Prompt template registry and automatic prompt assembly.

Covers the "automatic prompting generation" challenge from §2.2.1: a
library of per-task instruction templates, variable substitution with
missing-variable checking, and an :class:`AutoPrompter` that assembles a
full task prompt (instruction + selected demonstrations + context budget)
from declarative parts.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..llm.protocol import Prompt
from ..llm.tokenizer import Tokenizer, default_tokenizer

_VARIABLE_RE = re.compile(r"\{(\w+)\}")


@dataclass(frozen=True)
class PromptTemplate:
    """A named instruction template with ``{variable}`` slots."""

    name: str
    task: str
    instruction: str

    def variables(self) -> List[str]:
        return sorted(set(_VARIABLE_RE.findall(self.instruction)))

    def render_instruction(self, **values: str) -> str:
        missing = [v for v in self.variables() if v not in values]
        if missing:
            raise ConfigError(f"template {self.name!r} missing variables {missing}")
        return self.instruction.format(**values)


_BUILTIN_TEMPLATES = [
    PromptTemplate("qa-grounded", "qa", "Answer using only the provided context."),
    PromptTemplate("qa-closed", "qa", "Answer from your own knowledge."),
    PromptTemplate(
        "filter", "judge", "Decide whether the item satisfies: {predicate}."
    ),
    PromptTemplate(
        "extract-fields", "extract", "Extract the fields {attributes} for {subject}."
    ),
    PromptTemplate("map-field", "map", "Return the value of field '{field}'."),
    PromptTemplate("rank-passages", "rank", "Order the passages by relevance."),
    PromptTemplate(
        "decompose-question", "decompose", "Break the question into single-hop steps."
    ),
    PromptTemplate("summarize-one", "summarize", "Summarize in one sentence."),
]


class TemplateLibrary:
    """Registry of :class:`PromptTemplate` keyed by name."""

    def __init__(self, include_builtin: bool = True) -> None:
        self._templates: Dict[str, PromptTemplate] = {}
        if include_builtin:
            for t in _BUILTIN_TEMPLATES:
                self._templates[t.name] = t

    def register(self, template: PromptTemplate, *, overwrite: bool = False) -> None:
        if template.name in self._templates and not overwrite:
            raise ConfigError(f"template {template.name!r} already registered")
        self._templates[template.name] = template

    def get(self, name: str) -> PromptTemplate:
        try:
            return self._templates[name]
        except KeyError:
            raise ConfigError(
                f"unknown template {name!r}; available: {sorted(self._templates)}"
            ) from None

    def for_task(self, task: str) -> List[PromptTemplate]:
        return [t for t in self._templates.values() if t.task == task]

    def names(self) -> List[str]:
        return sorted(self._templates)


@dataclass
class Demonstration:
    """One few-shot example as (input, output)."""

    input: str
    output: str

    def render(self) -> str:
        return f"Q: {self.input} A: {self.output}"


class AutoPrompter:
    """Assembles complete prompts under a token budget.

    Priority when trimming to fit: instruction and input are kept, then as
    much context as fits, then demonstrations (least critical first to go).
    """

    def __init__(
        self,
        library: Optional[TemplateLibrary] = None,
        *,
        tokenizer: Optional[Tokenizer] = None,
        max_tokens: Optional[int] = None,
    ) -> None:
        self.library = library or TemplateLibrary()
        self.tokenizer = tokenizer or default_tokenizer()
        self.max_tokens = max_tokens

    def build(
        self,
        template_name: str,
        *,
        input_text: str,
        context: str = "",
        demonstrations: Sequence[Demonstration] = (),
        variables: Optional[Dict[str, str]] = None,
        fields: Optional[Dict[str, str]] = None,
    ) -> Prompt:
        template = self.library.get(template_name)
        instruction = template.render_instruction(**(variables or {}))
        prompt = Prompt(
            task=template.task,
            instruction=instruction,
            context=context,
            examples=[d.render() for d in demonstrations],
            input=input_text,
            fields=dict(fields or {}),
        )
        if self.max_tokens is not None:
            prompt = self._fit(prompt)
        return prompt

    def _fit(self, prompt: Prompt) -> Prompt:
        budget = self.max_tokens
        assert budget is not None
        count = self.tokenizer.count

        def total(p: Prompt) -> int:
            return count(p.render())

        if total(prompt) <= budget:
            return prompt
        # Drop demonstrations from the end first.
        examples = list(prompt.examples)
        while examples and total(
            Prompt(
                prompt.task,
                prompt.instruction,
                prompt.context,
                examples,
                prompt.input,
                prompt.fields,
            )
        ) > budget:
            examples.pop()
        prompt = Prompt(
            prompt.task, prompt.instruction, prompt.context, examples, prompt.input, prompt.fields
        )
        if total(prompt) <= budget:
            return prompt
        # Then trim context sentences from the end.
        sentences = re.split(r"(?<=[.!?])\s+", prompt.context)
        while len(sentences) > 1:
            sentences.pop()
            candidate = Prompt(
                prompt.task,
                prompt.instruction,
                " ".join(sentences),
                examples,
                prompt.input,
                prompt.fields,
            )
            if total(candidate) <= budget:
                return candidate
        return Prompt(
            prompt.task, prompt.instruction, "", examples, prompt.input, prompt.fields
        )


def token_count(prompt: Prompt, tokenizer: Optional[Tokenizer] = None) -> int:
    """Tokens in a rendered prompt (cost unit for §2.2.1 optimizations)."""
    tok = tokenizer or default_tokenizer()
    return tok.count(prompt.render())
