"""Prompt engineering: templates, few-shot selection, compression (§2.2.1)."""

from .compression import (
    CompressionResult,
    PromptCompressor,
    budget_truncate,
    dedup_sentences,
    relevance_filter,
)
from .fewshot import (
    SELECTORS,
    DiversitySelector,
    ExamplePool,
    RandomSelector,
    SimilaritySelector,
)
from .templates import (
    AutoPrompter,
    Demonstration,
    PromptTemplate,
    TemplateLibrary,
    token_count,
)

__all__ = [
    "CompressionResult",
    "PromptCompressor",
    "budget_truncate",
    "dedup_sentences",
    "relevance_filter",
    "SELECTORS",
    "DiversitySelector",
    "ExamplePool",
    "RandomSelector",
    "SimilaritySelector",
    "AutoPrompter",
    "Demonstration",
    "PromptTemplate",
    "TemplateLibrary",
    "token_count",
]
