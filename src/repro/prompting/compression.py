"""Prompt compression: shrink context tokens while keeping answer-bearing
content (the "prompting compression to reduce the LLMs cost" item, §2.2.1).

Three composable passes, LLMLingua-flavoured but deterministic:

* :func:`dedup_sentences` — drop near-duplicate context sentences;
* :func:`relevance_filter` — keep only sentences whose embedding similarity
  to the query clears a threshold (or the top fraction);
* :func:`budget_truncate` — hard token ceiling, keeping the most relevant
  sentences that fit.

:class:`PromptCompressor` chains them and reports the compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..llm.embedding import EmbeddingModel
from ..llm.protocol import Prompt
from ..llm.tokenizer import Tokenizer, default_tokenizer
from ..rag.chunking import split_sentences


def dedup_sentences(
    sentences: List[str], embedder: EmbeddingModel, *, threshold: float = 0.92
) -> List[str]:
    """Remove sentences nearly identical (cosine > threshold) to a kept one."""
    kept: List[str] = []
    kept_vecs: List[np.ndarray] = []
    for sentence in sentences:
        vec = embedder.embed(sentence)
        if any(float(np.dot(vec, kv)) > threshold for kv in kept_vecs):
            continue
        kept.append(sentence)
        kept_vecs.append(vec)
    return kept


def relevance_filter(
    sentences: List[str],
    query: str,
    embedder: EmbeddingModel,
    *,
    keep_fraction: float = 0.5,
    min_keep: int = 1,
) -> List[str]:
    """Keep the ``keep_fraction`` of sentences most similar to the query,
    preserving original order."""
    if not sentences:
        return []
    qvec = embedder.embed(query)
    scores = np.array([float(np.dot(qvec, embedder.embed(s))) for s in sentences])
    keep_n = max(min_keep, int(round(len(sentences) * keep_fraction)))
    keep_idx = set(np.argsort(-scores)[:keep_n].tolist())
    return [s for i, s in enumerate(sentences) if i in keep_idx]


def budget_truncate(
    sentences: List[str],
    query: str,
    embedder: EmbeddingModel,
    *,
    max_tokens: int,
    tokenizer: Optional[Tokenizer] = None,
) -> List[str]:
    """Greedy knapsack: admit sentences by relevance until the budget fills,
    then emit in original order."""
    tok = tokenizer or default_tokenizer()
    if not sentences:
        return []
    qvec = embedder.embed(query)
    scored = sorted(
        range(len(sentences)),
        key=lambda i: -float(np.dot(qvec, embedder.embed(sentences[i]))),
    )
    budget = max_tokens
    chosen = set()
    for i in scored:
        cost = tok.count(sentences[i])
        if cost <= budget:
            chosen.add(i)
            budget -= cost
    return [s for i, s in enumerate(sentences) if i in chosen]


@dataclass
class CompressionResult:
    """A compressed prompt plus before/after token accounting."""

    prompt: Prompt
    original_tokens: int
    compressed_tokens: int

    @property
    def ratio(self) -> float:
        """compressed / original (lower = more compression)."""
        if self.original_tokens == 0:
            return 1.0
        return self.compressed_tokens / self.original_tokens


class PromptCompressor:
    """Chains dedup -> relevance filter -> budget truncation on a prompt's
    context section."""

    def __init__(
        self,
        embedder: EmbeddingModel,
        *,
        dedup_threshold: float = 0.92,
        keep_fraction: float = 0.6,
        max_context_tokens: Optional[int] = None,
        tokenizer: Optional[Tokenizer] = None,
    ) -> None:
        self.embedder = embedder
        self.dedup_threshold = dedup_threshold
        self.keep_fraction = keep_fraction
        self.max_context_tokens = max_context_tokens
        self.tokenizer = tokenizer or default_tokenizer()

    def compress(self, prompt: Prompt) -> CompressionResult:
        original_tokens = self.tokenizer.count(prompt.render())
        sentences = split_sentences(prompt.context)
        sentences = dedup_sentences(
            sentences, self.embedder, threshold=self.dedup_threshold
        )
        sentences = relevance_filter(
            sentences, prompt.input, self.embedder, keep_fraction=self.keep_fraction
        )
        if self.max_context_tokens is not None:
            sentences = budget_truncate(
                sentences,
                prompt.input,
                self.embedder,
                max_tokens=self.max_context_tokens,
                tokenizer=self.tokenizer,
            )
        compressed = Prompt(
            task=prompt.task,
            instruction=prompt.instruction,
            context=" ".join(sentences),
            examples=list(prompt.examples),
            input=prompt.input,
            fields=dict(prompt.fields),
        )
        return CompressionResult(
            prompt=compressed,
            original_tokens=original_tokens,
            compressed_tokens=self.tokenizer.count(compressed.render()),
        )
