"""Task skills of the simulated LLM.

Each skill consumes a parsed prompt and produces output text the way a
competent instruction-following model would, with an explicit error channel:

* a *correctness draw* decides whether this call behaves correctly, with
  probability driven by the model tier's base accuracy, whether relevant
  context was supplied (grounding helps), and how many few-shot examples the
  prompt carries (in-context learning helps, saturating);
* on failure, a *hallucination draw* decides between confidently returning a
  plausible-but-wrong value of the right type (the failure mode the paper
  highlights) and abstaining with ``unknown``.

All draws are seeded from (model seed, prompt text, temperature), so a
temperature-0 call is exactly reproducible and self-consistency style
resampling is possible by varying temperature.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..data.documents import extract_stated_facts
from ..data.world import ATTRIBUTE_QUESTIONS
from ..utils import derive_rng, stable_hash
from .embedding import EmbeddingModel
from .knowledge import KnowledgeBase
from .protocol import ParsedPrompt

ABSTAIN = "unknown"


def _question_patterns() -> List[Tuple[str, str, re.Pattern]]:
    """Inverse regexes of the question templates in the world module."""
    patterns = []
    for (etype, attr), template in ATTRIBUTE_QUESTIONS.items():
        pattern = re.escape(template).replace(re.escape("{subject}"), r"(?P<subject>.+?)")
        patterns.append((etype, attr, re.compile("^" + pattern + "$", re.IGNORECASE)))
    return patterns


_QUESTION_PATTERNS = _question_patterns()
_HOP_SUBJECT_RE = re.compile(
    r"^the (?P<rel>[\w ]+?) of (?P<entity>[A-Z][\w\- ]*)$", re.IGNORECASE
)


def parse_question(question: str) -> Optional[Tuple[str, str, str]]:
    """Parse a question into ``(subject, attribute, entity_type)`` or None.

    Whitespace-normalized first: real models are not brittle to doubled
    spaces or a detached question mark, so the simulated one isn't either.
    """
    question = re.sub(r"\s+", " ", question).strip()
    question = question.rstrip(" ?") + "?"
    for etype, attr, pattern in _QUESTION_PATTERNS:
        match = pattern.match(question)
        if match:
            return (match.group("subject").strip(), attr, etype)
    return None


def parse_hop_subject(subject: str) -> Optional[Tuple[str, str]]:
    """If ``subject`` is 'the X of Y', return ``(relation_attr, entity)``."""
    match = _HOP_SUBJECT_RE.match(subject.strip())
    if match is None:
        return None
    rel = match.group("rel").strip().lower().replace(" ", "_")
    return (rel, match.group("entity").strip())


def parse_record(text: str) -> Dict[str, str]:
    """Parse a record from JSON or ``key=value; ...`` fallback."""
    text = text.strip()
    if text.startswith("{"):
        try:
            loaded = json.loads(text)
            return {str(k): str(v) for k, v in loaded.items()}
        except (json.JSONDecodeError, AttributeError):
            pass
    record: Dict[str, str] = {}
    for part in re.split(r"[;\n]", text):
        if "=" in part:
            key, _, value = part.partition("=")
            record[key.strip()] = value.strip()
    return record


_NUMERIC_RE = re.compile(r"^-?\d+(\.\d+)?$")

_PREDICATE_RE = re.compile(
    r"^(?P<field>[\w.]+)\s*(?P<op>==|!=|>=|<=|>|<|contains|in)\s*(?P<value>.+)$"
)


def evaluate_predicate(predicate: str, record: Dict[str, str]) -> Optional[bool]:
    """Ground-truth evaluation of ``field op literal`` over a record.

    Returns None when the predicate is unparseable or references a missing
    field — callers treat that as "model must guess".
    """
    match = _PREDICATE_RE.match(predicate.strip())
    if match is None:
        return None
    field = match.group("field")
    op = match.group("op")
    literal = match.group("value").strip().strip("'\"")
    actual = record.get(field)
    if actual is None:
        return None
    if op in {">", "<", ">=", "<="}:
        if not (_NUMERIC_RE.match(actual) and _NUMERIC_RE.match(literal)):
            return None
        a, b = float(actual), float(literal)
        return {"<": a < b, ">": a > b, "<=": a <= b, ">=": a >= b}[op]
    if op == "==":
        return actual.strip().lower() == literal.lower()
    if op == "!=":
        return actual.strip().lower() != literal.lower()
    if op == "contains":
        return literal.lower() in actual.lower()
    if op == "in":
        options = [part.strip().strip("'\"").lower() for part in literal.split(",")]
        return actual.strip().lower() in options
    return None


def predicate_field(predicate: str) -> Optional[str]:
    """The record field a ``field op literal`` predicate reads, if it parses.

    Used by planners to decide whether a rule predicate commutes with an
    operator that writes a field (it does iff the fields differ).
    """
    match = _PREDICATE_RE.match(predicate.strip())
    return match.group("field") if match is not None else None


def compile_predicate(
    predicate: str,
) -> Optional[Callable[[Dict[str, str]], Optional[bool]]]:
    """Pre-parse ``field op literal`` into a per-record evaluator.

    Returns ``None`` when the predicate itself does not parse (every record
    is then undecidable, exactly as :func:`evaluate_predicate` reports).
    The returned closure is equivalent to
    ``evaluate_predicate(predicate, record)`` for every record — it just
    hoists the regex parse and literal normalization out of per-row loops,
    which matters when a predicate cascade runs over millions of rows.
    """
    match = _PREDICATE_RE.match(predicate.strip())
    if match is None:
        return None
    field = match.group("field")
    op = match.group("op")
    literal = match.group("value").strip().strip("'\"")

    if op in {">", "<", ">=", "<="}:
        literal_numeric = _NUMERIC_RE.match(literal) is not None
        bound = float(literal) if literal_numeric else 0.0

        def numeric_eval(record: Dict[str, str]) -> Optional[bool]:
            actual = record.get(field)
            if actual is None:
                return None
            if not (literal_numeric and _NUMERIC_RE.match(actual)):
                return None
            a = float(actual)
            if op == "<":
                return a < bound
            if op == ">":
                return a > bound
            if op == "<=":
                return a <= bound
            return a >= bound

        return numeric_eval

    lowered = literal.lower()
    if op in {"==", "!="}:
        want_equal = op == "=="

        def equality_eval(record: Dict[str, str]) -> Optional[bool]:
            actual = record.get(field)
            if actual is None:
                return None
            equal = actual.strip().lower() == lowered
            return equal if want_equal else not equal

        return equality_eval

    if op == "contains":

        def contains_eval(record: Dict[str, str]) -> Optional[bool]:
            actual = record.get(field)
            if actual is None:
                return None
            return lowered in actual.lower()

        return contains_eval

    options = frozenset(
        part.strip().strip("'\"").lower() for part in literal.split(",")
    )

    def membership_eval(record: Dict[str, str]) -> Optional[bool]:
        actual = record.get(field)
        if actual is None:
            return None
        return actual.strip().lower() in options

    return membership_eval


@dataclass
class SkillContext:
    """Everything a skill invocation may consult."""

    prompt: ParsedPrompt
    knowledge: KnowledgeBase
    embedder: EmbeddingModel
    rng: np.random.Generator
    base_accuracy: float
    hallucination_rate: float
    reasoning_depth: int  # max hops the model can chain internally

    # -------------------------------------------------------------- helpers
    def p_correct(self, *, grounded: bool, difficulty: float = 0.0) -> float:
        """Per-call correctness probability."""
        p = self.base_accuracy
        if grounded:
            p += 0.18
        p += 0.03 * min(self.prompt.num_examples, 4)
        p -= difficulty
        return float(np.clip(p, 0.02, 0.995))

    def draw_correct(self, *, grounded: bool, difficulty: float = 0.0) -> bool:
        return bool(self.rng.random() < self.p_correct(grounded=grounded, difficulty=difficulty))

    def fail_output(self, attribute: str, correct: Optional[str]) -> str:
        """Hallucinate a plausible wrong value or abstain."""
        if self.rng.random() < self.hallucination_rate:
            return self.knowledge.plausible_wrong_value(
                attribute, correct, seed_material=self.prompt.raw[:200]
            )
        return ABSTAIN


# --------------------------------------------------------------------- QA
def skill_qa(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Answer a question, preferring stated context over parametric memory."""
    parsed = parse_question(ctx.prompt.input)
    if parsed is None:
        return ABSTAIN, {"reason": "unparseable-question"}
    subject, attribute, _etype = parsed

    # Multi-hop phrasing: "the maker of Volt-3" as subject.
    hop = parse_hop_subject(subject)
    context_facts = (
        extract_stated_facts(ctx.prompt.context) if ctx.prompt.has_context else []
    )
    fact_map = {f.key(): f.value for f in context_facts}

    def resolve(subj: str, attr: str) -> Tuple[Optional[str], bool]:
        """(value, grounded_in_context)."""
        stated = fact_map.get((subj.lower(), attr))
        if stated is not None:
            return stated, True
        return ctx.knowledge.lookup(subj, attr), False

    if hop is not None:
        rel, entity = hop
        if ctx.reasoning_depth < 2:
            # Model cannot chain: answers as if the bridge entity were the
            # subject, which is usually wrong -> low multi-hop accuracy.
            value, grounded = resolve(entity, attribute)
        else:
            bridge, grounded1 = resolve(entity, rel)
            if bridge is None:
                return ctx.fail_output(attribute, None), {"reason": "missing-bridge"}
            value, grounded2 = resolve(bridge, attribute)
            grounded = grounded1 and grounded2
        difficulty = 0.12  # chaining is harder even when facts are available
    else:
        value, grounded = resolve(subject, attribute)
        difficulty = 0.0

    if value is None:
        return ctx.fail_output(attribute, None), {"reason": "unknown-fact"}
    if ctx.draw_correct(grounded=grounded, difficulty=difficulty):
        return value, {"grounded": grounded}
    return ctx.fail_output(attribute, value), {"reason": "error-draw"}


# ---------------------------------------------------------------- extract
def skill_extract(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Extract requested fields about a subject from the context passage.

    Prompt fields: ``subject`` and comma-separated ``attributes``.
    Output: one ``attr: value`` line per requested field.
    """
    subject = ctx.prompt.fields.get("subject", "").strip()
    wanted = [a.strip() for a in ctx.prompt.fields.get("attributes", "").split(",") if a.strip()]
    if not wanted:
        return ABSTAIN, {"reason": "no-attributes-requested"}
    stated = {
        f.attribute: f.value
        for f in extract_stated_facts(ctx.prompt.context)
        if not subject or f.subject.lower() == subject.lower()
    }
    lines = []
    for attr in wanted:
        value = stated.get(attr)
        if value is not None and ctx.draw_correct(grounded=True):
            lines.append(f"{attr}: {value}")
        else:
            lines.append(f"{attr}: {ctx.fail_output(attr, value)}")
    return "\n".join(lines), {"stated": len(stated)}


# ------------------------------------------------------------------ judge
def skill_judge(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Boolean judgment: a predicate over a record, or topicality of text.

    Prompt fields: ``predicate``. Input: a record (JSON / key=value) or raw
    text for semantic predicates of the form ``is_about <topic>``.
    """
    predicate = ctx.prompt.fields.get("predicate", "").strip()
    if predicate.lower().startswith("is_about"):
        topic = predicate[len("is_about") :].strip().strip("'\"")
        sim = ctx.embedder.similarity(topic, ctx.prompt.input)
        truth = sim > 0.18
        grounded = True
    else:
        record = parse_record(ctx.prompt.input)
        verdict = evaluate_predicate(predicate, record)
        if verdict is None:
            guess = "yes" if ctx.rng.random() < 0.5 else "no"
            return guess, {"reason": "unresolvable-predicate"}
        truth = verdict
        grounded = True
    if ctx.draw_correct(grounded=grounded):
        return ("yes" if truth else "no"), {"truth": truth}
    return ("no" if truth else "yes"), {"truth": truth, "reason": "error-draw"}


# ------------------------------------------------------------------- join
def skill_join(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Entity-match judgment between two records.

    Prompt fields: ``left_key`` / ``right_key`` name the fields to compare.
    Input: two records separated by a line ``---``.
    """
    left_key = ctx.prompt.fields.get("left_key", "name")
    right_key = ctx.prompt.fields.get("right_key", "name")
    parts = ctx.prompt.input.split("---")
    if len(parts) != 2:
        return "no", {"reason": "malformed-input"}
    left = parse_record(parts[0])
    right = parse_record(parts[1])
    lv = left.get(left_key, "").strip().lower()
    rv = right.get(right_key, "").strip().lower()
    if not lv or not rv:
        return "no", {"reason": "missing-keys"}
    truth = lv == rv
    if ctx.draw_correct(grounded=True):
        return ("yes" if truth else "no"), {"truth": truth}
    return ("no" if truth else "yes"), {"truth": truth, "reason": "error-draw"}


# -------------------------------------------------------------------- map
_MAP_FIELD_RE = re.compile(r"value of field ['\"]?(\w+)['\"]?", re.IGNORECASE)


def skill_map(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Apply a per-item transformation described in the instruction.

    Supported instructions (the vocabulary our semantic operators emit):
    ``return the value of field 'x'``, ``uppercase``, ``lowercase``,
    ``extract the year``, ``first sentence``.
    """
    instruction = ctx.prompt.instruction.lower()
    text = ctx.prompt.input
    field_match = _MAP_FIELD_RE.search(instruction)
    if field_match:
        record = parse_record(text)
        value = record.get(field_match.group(1))
        if value is None:
            return ABSTAIN, {"reason": "missing-field"}
        if ctx.draw_correct(grounded=True):
            return value, {}
        return ctx.fail_output(field_match.group(1), value), {"reason": "error-draw"}
    if "uppercase" in instruction:
        return text.upper(), {}
    if "lowercase" in instruction:
        return text.lower(), {}
    if "year" in instruction:
        match = re.search(r"\b(19|20)\d{2}\b", text)
        if match and ctx.draw_correct(grounded=True):
            return match.group(0), {}
        return ctx.fail_output("released", match.group(0) if match else None), {}
    if "first sentence" in instruction or "summar" in instruction:
        sentences = re.split(r"(?<=[.!?])\s+", text.strip())
        return sentences[0] if sentences else "", {}
    return text, {"reason": "unknown-map"}


# ------------------------------------------------------------------- rank
def skill_rank(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Order numbered context passages by relevance to the input query.

    Context lines look like ``[i] passage text``; output is the id order,
    comma-separated. Errors manifest as adjacent swaps, mimicking imperfect
    pointwise reranking.
    """
    query = ctx.prompt.input
    items: List[Tuple[int, str]] = []
    for line in ctx.prompt.context.splitlines():
        match = re.match(r"^\[(\d+)\]\s*(.*)$", line.strip())
        if match:
            items.append((int(match.group(1)), match.group(2)))
    if not items:
        return "", {"reason": "no-items"}
    qvec = ctx.embedder.embed(query)
    scored = sorted(
        items,
        key=lambda it: -float(np.dot(qvec, ctx.embedder.embed(it[1]))),
    )
    order = [idx for idx, _ in scored]
    for i in range(len(order) - 1):
        if not ctx.draw_correct(grounded=True):
            order[i], order[i + 1] = order[i + 1], order[i]
    return ",".join(str(i) for i in order), {"items": len(order)}


# -------------------------------------------------------------- decompose
def skill_decompose(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Break a two-hop question into two single-hop sub-questions."""
    parsed = parse_question(ctx.prompt.input)
    if parsed is None:
        return ctx.prompt.input, {"reason": "unparseable"}
    subject, attribute, etype = parsed
    hop = parse_hop_subject(subject)
    if hop is None:
        return ctx.prompt.input, {"hops": 1}
    rel, entity = hop
    if not ctx.draw_correct(grounded=True, difficulty=0.05):
        # A failed decomposition asks about the wrong relation.
        rel = ctx.knowledge.plausible_wrong_value("__relation__", rel, ctx.prompt.raw[:100])
        if rel == "unknown-entity":
            rel = "headquarters"
    first_template = None
    for (qetype, qattr), template in ATTRIBUTE_QUESTIONS.items():
        if qattr == rel:
            first_template = template
            break
    if first_template is None:
        first_template = "What is the " + rel.replace("_", " ") + " of {subject}?"
    second_template = ATTRIBUTE_QUESTIONS.get((etype, attribute))
    if second_template is None:
        second_template = "What is the " + attribute.replace("_", " ") + " of {subject}?"
    first = first_template.format(subject=entity)
    second = second_template.format(subject="{answer1}")
    return first + "\n" + second, {"hops": 2}


# ------------------------------------------------------------- summarize
def skill_summarize(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """One-line extractive summary: the highest-information fact sentence."""
    facts = extract_stated_facts(ctx.prompt.context or ctx.prompt.input)
    if facts:
        lead = facts[0]
        return f"{lead.subject}: {lead.attribute} is {lead.value}.", {"facts": len(facts)}
    text = (ctx.prompt.context or ctx.prompt.input).strip()
    sentences = re.split(r"(?<=[.!?])\s+", text)
    return (sentences[0] if sentences else ""), {"facts": 0}


# ------------------------------------------------------------------ label
def skill_label(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Classify the input into one of the classes in the ``classes`` field."""
    classes = [c.strip() for c in ctx.prompt.fields.get("classes", "").split("|") if c.strip()]
    if not classes:
        return ABSTAIN, {"reason": "no-classes"}
    qvec = ctx.embedder.embed(ctx.prompt.input)
    best = max(classes, key=lambda c: float(np.dot(qvec, ctx.embedder.embed(c))))
    if ctx.draw_correct(grounded=True):
        return best, {}
    others = [c for c in classes if c != best]
    if not others:
        return best, {}
    return others[int(ctx.rng.integers(0, len(others)))], {"reason": "error-draw"}


# ---------------------------------------------------------------- codegen
def skill_codegen(ctx: SkillContext) -> Tuple[str, Dict[str, object]]:
    """Synthesize an extraction-function *spec* (Evaporate-style).

    The prompt carries ``attribute`` / ``etype`` fields plus a sample
    document in the context. The "function" the model writes is returned as
    a compact spec line ``FUNC etype=<t> attr=<a> variant=<i>`` naming which
    phrasing variant the function's regex targets. Real Evaporate functions
    are partial (each handles the phrasings its author saw) and sometimes
    buggy; we reproduce both: the variant is the one evidenced by the sample
    document when the call behaves correctly, and a mis-targeted or corrupt
    variant otherwise.
    """
    from ..data.documents import FACT_TEMPLATES  # local import: avoid cycle at module load

    attribute = ctx.prompt.fields.get("attribute", "").strip()
    etype = ctx.prompt.fields.get("etype", "").strip()
    templates = FACT_TEMPLATES.get((etype, attribute))
    if not templates:
        return "FUNC invalid", {"reason": "unknown-attribute"}
    # Which variant does the sample document actually use?
    evidenced = None
    for i, template in enumerate(templates):
        probe = template.split("{")[0].strip()
        if probe and probe in ctx.prompt.context:
            evidenced = i
            break
    if evidenced is None:
        # Fall back to matching on a mid-template literal fragment.
        for i, template in enumerate(templates):
            fragments = [p for p in re.split(r"\{[sv]\}", template) if len(p.strip()) > 3]
            if any(frag.strip() in ctx.prompt.context for frag in fragments):
                evidenced = i
                break
    if evidenced is None:
        evidenced = int(ctx.rng.integers(0, len(templates)))
    if ctx.draw_correct(grounded=True):
        return f"FUNC etype={etype} attr={attribute} variant={evidenced}", {}
    # Buggy function: targets the wrong variant or the wrong capture.
    if ctx.rng.random() < 0.5 and len(templates) > 1:
        wrong = (evidenced + 1 + int(ctx.rng.integers(0, len(templates) - 1))) % len(templates)
        return f"FUNC etype={etype} attr={attribute} variant={wrong}", {"reason": "bug"}
    return f"FUNC etype={etype} attr={attribute} variant={evidenced} swap=1", {"reason": "bug"}


SKILLS = {
    "qa": skill_qa,
    "codegen": skill_codegen,
    "extract": skill_extract,
    "judge": skill_judge,
    "join": skill_join,
    "map": skill_map,
    "rank": skill_rank,
    "decompose": skill_decompose,
    "summarize": skill_summarize,
    "label": skill_label,
}
