"""Cost and latency accounting for simulated LLM calls.

Every call to a :class:`~repro.llm.model.SimLLM` produces a :class:`Usage`
record; :class:`UsageLedger` aggregates them. Latency follows the standard
two-phase serving model the paper describes (§2.3.2 LLM Inference): a
compute-bound *prefill* over all input tokens, then a sequential,
bandwidth-bound *decode* of one output token at a time — so time-to-first-
token scales with input length and total time adds per-output-token cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import BudgetExceededError, ConfigError


@dataclass(frozen=True)
class Usage:
    """Resource usage of one (or an aggregate of) LLM call(s)."""

    input_tokens: int = 0
    output_tokens: int = 0
    latency_s: float = 0.0
    usd: float = 0.0
    calls: int = 0

    def __add__(self, other: "Usage") -> "Usage":
        return Usage(
            input_tokens=self.input_tokens + other.input_tokens,
            output_tokens=self.output_tokens + other.output_tokens,
            latency_s=self.latency_s + other.latency_s,
            usd=self.usd + other.usd,
            calls=self.calls + other.calls,
        )

    def __sub__(self, other: "Usage") -> "Usage":
        """Delta between two cumulative snapshots (for per-tag attribution)."""
        return Usage(
            input_tokens=self.input_tokens - other.input_tokens,
            output_tokens=self.output_tokens - other.output_tokens,
            latency_s=self.latency_s - other.latency_s,
            usd=self.usd - other.usd,
            calls=self.calls - other.calls,
        )

    @property
    def total_tokens(self) -> int:
        return self.input_tokens + self.output_tokens


@dataclass
class CostModel:
    """Latency and dollar model for one model tier.

    ``prefill_tps`` / ``decode_tps`` are tokens-per-second throughputs of
    the two phases; dollar rates follow the per-1k-token convention of
    hosted APIs.
    """

    prefill_tps: float = 8000.0
    decode_tps: float = 60.0
    usd_per_1k_input: float = 0.5
    usd_per_1k_output: float = 1.5
    fixed_overhead_s: float = 0.05

    def __post_init__(self) -> None:
        if self.prefill_tps <= 0 or self.decode_tps <= 0:
            raise ConfigError("throughputs must be positive")

    def ttft(self, input_tokens: int) -> float:
        """Time to first token: overhead + full prefill."""
        return self.fixed_overhead_s + input_tokens / self.prefill_tps

    def usage(self, input_tokens: int, output_tokens: int) -> Usage:
        """Usage record for one call."""
        latency = self.ttft(input_tokens) + output_tokens / self.decode_tps
        usd = (
            input_tokens / 1000.0 * self.usd_per_1k_input
            + output_tokens / 1000.0 * self.usd_per_1k_output
        )
        return Usage(
            input_tokens=input_tokens,
            output_tokens=output_tokens,
            latency_s=latency,
            usd=usd,
            calls=1,
        )


@dataclass
class UsageLedger:
    """Aggregates call usage, optionally enforcing a budget.

    Set ``max_usd`` or ``max_calls`` to make over-budget calls raise
    :class:`~repro.errors.BudgetExceededError` — used by cost-bounded
    pipelines (Evaporate-style extraction, cascades).
    """

    max_usd: Optional[float] = None
    max_calls: Optional[int] = None
    total: Usage = field(default_factory=Usage)
    by_tag: Dict[str, Usage] = field(default_factory=dict)
    history: List[Usage] = field(default_factory=list)

    def charge(self, usage: Usage, *, tag: str = "default") -> None:
        """Record ``usage``; raises if a budget would be exceeded."""
        if self.max_usd is not None and self.total.usd + usage.usd > self.max_usd:
            raise BudgetExceededError(
                f"budget {self.max_usd:.4f} USD exceeded "
                f"(spent {self.total.usd:.4f}, next call {usage.usd:.4f})"
            )
        if self.max_calls is not None and self.total.calls + usage.calls > self.max_calls:
            raise BudgetExceededError(f"call budget {self.max_calls} exceeded")
        self.total = self.total + usage
        self.by_tag[tag] = self.by_tag.get(tag, Usage()) + usage
        self.history.append(usage)

    def remaining_usd(self) -> Optional[float]:
        if self.max_usd is None:
            return None
        return max(self.max_usd - self.total.usd, 0.0)

    def reset(self) -> None:
        self.total = Usage()
        self.by_tag.clear()
        self.history.clear()
