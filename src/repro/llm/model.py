"""The simulated LLM: a deterministic oracle with a realistic failure model.

:class:`SimLLM` is the drop-in stand-in for a hosted model. Components send
rendered prompt *text* (see ``repro.llm.protocol``); the model parses the
text, dispatches to a task skill (``repro.llm.skills``), applies its error
channel, and returns an :class:`LLMResponse` with full usage accounting.

Why this substitution preserves the paper's behaviour: LLM4Data techniques
are control flow *around* an LLM — their value depends on the oracle's
accuracy/cost/hallucination envelope, not its weights. SimLLM exposes those
three dials explicitly (per tier, see ``repro.llm.hub``), so every benchmark
can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..data.ngram import NGramLM
    from ..data.world import Fact, World

from ..errors import ModelError
from ..utils import derive_rng, stable_hash
from .cost import Usage, UsageLedger
from .embedding import EmbeddingModel
from .hub import ModelSpec, default_hub
from .knowledge import KnowledgeBase
from .protocol import ParsedPrompt, parse_prompt
from .skills import SKILLS, SkillContext
from .tokenizer import Tokenizer, default_tokenizer

SkillFn = Callable[[SkillContext], Tuple[str, Dict[str, object]]]


@dataclass(frozen=True)
class LLMResponse:
    """One model reply plus its resource usage and debug metadata."""

    text: str
    usage: Usage
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def abstained(self) -> bool:
        return self.text.strip().lower() == "unknown"


class SimLLM:
    """A simulated large language model.

    Parameters
    ----------
    spec:
        Model tier (accuracy, hallucination, cost). Defaults to ``sim-base``.
    world:
        If given, the model "pretrained on" a ``spec.knowledge_coverage``
        fraction of the world's facts.
    knowledge:
        Explicit knowledge base (overrides ``world`` sampling).
    seed:
        Model identity seed; drives all stochastic draws.
    ledger:
        Optional shared :class:`UsageLedger` for budget enforcement.
    """

    def __init__(
        self,
        spec: Optional[ModelSpec] = None,
        *,
        world: "Optional[World]" = None,
        knowledge: Optional[KnowledgeBase] = None,
        seed: int = 0,
        embedder: Optional[EmbeddingModel] = None,
        tokenizer: Optional[Tokenizer] = None,
        ledger: Optional[UsageLedger] = None,
    ) -> None:
        self.spec = spec or default_hub().get("sim-base")
        self.seed = seed
        self.tokenizer = tokenizer or default_tokenizer()
        self.embedder = embedder or EmbeddingModel(seed=seed)
        if knowledge is not None:
            self.knowledge = knowledge
        elif world is not None:
            self.knowledge = KnowledgeBase.from_world(
                world, coverage=self.spec.knowledge_coverage, seed=seed
            )
        else:
            self.knowledge = KnowledgeBase()
        self.ledger = ledger or UsageLedger()
        self._extra_skills: Dict[str, SkillFn] = {}
        self._scorer = None
        self._call_log: List[Dict[str, object]] = []

    # ----------------------------------------------------------- extension
    def register_skill(self, task: str, fn: SkillFn) -> None:
        """Register a custom task skill (e.g. ``sql``) on this instance."""
        self._extra_skills[task] = fn

    def fine_tune(self, facts: "List[Fact]") -> int:
        """Inject facts into parametric knowledge (SFT stand-in).

        Returns the number of previously-unknown facts learned.
        """
        return self.knowledge.add_facts(facts)

    # ----------------------------------------------------------- inference
    def generate(
        self,
        prompt: str,
        *,
        max_tokens: int = 256,
        temperature: float = 0.0,
        tag: str = "default",
    ) -> LLMResponse:
        """Run one model call on rendered prompt text."""
        if max_tokens <= 0:
            raise ModelError(f"max_tokens must be positive, got {max_tokens}")
        input_tokens = self.tokenizer.count(prompt)
        if input_tokens > self.spec.context_window:
            raise ModelError(
                f"prompt of {input_tokens} tokens exceeds context window "
                f"{self.spec.context_window} of {self.spec.name}"
            )
        parsed = parse_prompt(prompt)
        text, meta = self._dispatch(parsed, temperature)
        text, output_tokens = self._cap_output(text, max_tokens)
        usage = self.spec.cost.usage(input_tokens, output_tokens)
        self.ledger.charge(usage, tag=tag)
        self._call_log.append(
            {"task": parsed.task, "tag": tag, "tokens": usage.total_tokens}
        )
        return LLMResponse(text=text, usage=usage, meta=meta)

    def _cap_output(self, text: str, max_tokens: int) -> Tuple[str, int]:
        """Apply the ``max_tokens`` cap to a skill reply.

        The returned text always agrees with the charged token count: a
        reply longer than the cap is truncated to the first ``max_tokens``
        tokens (as a real decode loop stops emitting), never returned whole
        while only ``max_tokens`` are billed.
        """
        output_tokens = self.tokenizer.count(text)
        if output_tokens > max_tokens:
            return self.tokenizer.truncate(text, max_tokens), max_tokens
        return text, max(output_tokens, 1)

    def generate_many(
        self,
        prompts: Sequence[str],
        *,
        max_tokens: int = 256,
        temperature: float = 0.0,
        tag: str = "default",
    ) -> List[LLMResponse]:
        """Run one model call per prompt, amortizing per-call overhead.

        Bit-identical to ``[generate(p, ...) for p in prompts]`` — same
        response texts, usage records, ledger history, and call log — but
        batched: token counting runs as two ``count_many`` passes (inputs,
        then outputs), and prompt parsing, skill dispatch, and the seeded
        RNG derivation run once per *unique* prompt (duplicates replay the
        deterministic result instead of re-deriving it).  The ledger is
        still charged once per prompt, so budgets and per-tag attribution
        see every call.

        One contract difference from the loop: prompts are validated
        against the context window up front, so an oversized prompt raises
        before *any* prompt in the batch is charged (the loop would charge
        the prompts preceding the offender).
        """
        if max_tokens <= 0:
            raise ModelError(f"max_tokens must be positive, got {max_tokens}")
        prompt_list = list(prompts)
        if not prompt_list:
            return []
        input_counts = self.tokenizer.count_many(prompt_list)
        for input_tokens in input_counts:
            if input_tokens > self.spec.context_window:
                raise ModelError(
                    f"prompt of {input_tokens} tokens exceeds context window "
                    f"{self.spec.context_window} of {self.spec.name}"
                )
        unique_index: Dict[str, int] = {}
        for prompt in prompt_list:
            unique_index.setdefault(prompt, len(unique_index))
        unique_prompts = list(unique_index)
        parsed_list = [parse_prompt(prompt) for prompt in unique_prompts]
        raw_outputs = [self._dispatch(parsed, temperature) for parsed in parsed_list]
        output_counts = self.tokenizer.count_many([text for text, _ in raw_outputs])
        capped: List[Tuple[str, int, Dict[str, object], str]] = []
        for parsed, (text, meta), output_tokens in zip(
            parsed_list, raw_outputs, output_counts
        ):
            if output_tokens > max_tokens:
                text = self.tokenizer.truncate(text, max_tokens)
                output_tokens = max_tokens
            capped.append((text, max(output_tokens, 1), meta, parsed.task))
        responses: List[LLMResponse] = []
        for prompt, input_tokens in zip(prompt_list, input_counts):
            text, output_tokens, meta, task = capped[unique_index[prompt]]
            usage = self.spec.cost.usage(input_tokens, output_tokens)
            self.ledger.charge(usage, tag=tag)
            self._call_log.append(
                {"task": task, "tag": tag, "tokens": usage.total_tokens}
            )
            responses.append(LLMResponse(text=text, usage=usage, meta=dict(meta)))
        return responses

    def _dispatch(
        self, parsed: ParsedPrompt, temperature: float
    ) -> Tuple[str, Dict[str, object]]:
        skill = self._extra_skills.get(parsed.task) or SKILLS.get(parsed.task)
        rng = derive_rng(
            self.seed,
            "call",
            stable_hash(parsed.raw),
            int(temperature * 1000),
        )
        ctx = SkillContext(
            prompt=parsed,
            knowledge=self.knowledge,
            embedder=self.embedder,
            rng=rng,
            base_accuracy=self.spec.base_accuracy,
            hallucination_rate=self.spec.hallucination_rate,
            reasoning_depth=self.spec.reasoning_depth,
        )
        if skill is None:
            return self._chat(parsed, ctx)
        return skill(ctx)

    def _chat(
        self, parsed: ParsedPrompt, ctx: SkillContext
    ) -> Tuple[str, Dict[str, object]]:
        """Free-form fallback: try QA parsing, else template small talk."""
        from .skills import parse_question, skill_qa

        if parse_question(parsed.input) is not None:
            return skill_qa(ctx)
        return (
            "I can help with data tasks: question answering, extraction, "
            "filtering, ranking, and planning.",
            {"reason": "chat-fallback"},
        )

    # -------------------------------------------------------------- scoring
    def _ensure_scorer(self) -> "NGramLM":
        from ..data.ngram import NGramLM

        if self._scorer is None:
            sentences = [
                f"{subject} {attribute.replace('_', ' ')} {value}"
                for (subject, attribute), value in self.knowledge.facts.items()
            ]
            self._scorer = NGramLM(order=2).fit(sentences or ["the quick brown fox"])
        return self._scorer

    def perplexity(self, text: str) -> float:
        """Perplexity of text under the model's scoring head.

        Fluent in-domain text scores low; garbage scores high — which is all
        that perplexity-based data selection relies on.
        """
        return self._ensure_scorer().perplexity(text)

    def set_scorer(self, lm: "NGramLM") -> None:
        """Replace the scoring head (e.g. with an LM fit on a reference set)."""
        self._scorer = lm

    # ------------------------------------------------------------- metrics
    @property
    def usage(self) -> Usage:
        return self.ledger.total

    def reset_usage(self) -> None:
        self.ledger.reset()
        self._call_log.clear()

    @property
    def call_log(self) -> List[Dict[str, object]]:
        return list(self._call_log)


def make_llm(
    name: str = "sim-base",
    *,
    world: "Optional[World]" = None,
    seed: int = 0,
    ledger: Optional[UsageLedger] = None,
) -> SimLLM:
    """Convenience constructor from a hub tier name."""
    return SimLLM(default_hub().get(name), world=world, seed=seed, ledger=ledger)
