"""Model hub: the registry of simulated model tiers (Figure 1 "LLM Hub").

Tiers mirror the small/medium/large frontier the tutorial's cost arguments
rely on: larger models are more accurate and hallucinate less, but cost more
per token and decode slower — which is precisely what makes cascades,
caching, and call-minimizing operators worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from ..errors import ConfigError
from .cost import CostModel


@dataclass(frozen=True)
class ModelSpec:
    """Static description of one simulated model."""

    name: str
    tier: str  # "small" | "medium" | "large"
    params_b: float
    base_accuracy: float
    hallucination_rate: float
    knowledge_coverage: float
    reasoning_depth: int
    context_window: int
    cost: CostModel

    def __post_init__(self) -> None:
        if not 0.0 < self.base_accuracy <= 1.0:
            raise ConfigError(f"base_accuracy out of range: {self.base_accuracy}")
        if not 0.0 <= self.hallucination_rate <= 1.0:
            raise ConfigError("hallucination_rate out of range")
        if not 0.0 <= self.knowledge_coverage <= 1.0:
            raise ConfigError("knowledge_coverage out of range")
        if self.context_window < 256:
            raise ConfigError("context_window too small")

    def scaled(self, **overrides: object) -> "ModelSpec":
        """Copy with overrides (for ablations sweeping accuracy etc.)."""
        return replace(self, **overrides)


_BUILTIN_SPECS: List[ModelSpec] = [
    ModelSpec(
        name="sim-small",
        tier="small",
        params_b=1.3,
        base_accuracy=0.66,
        hallucination_rate=0.55,
        knowledge_coverage=0.25,
        reasoning_depth=1,
        context_window=4096,
        cost=CostModel(
            prefill_tps=24_000,
            decode_tps=160,
            usd_per_1k_input=0.05,
            usd_per_1k_output=0.15,
            fixed_overhead_s=0.02,
        ),
    ),
    ModelSpec(
        name="sim-base",
        tier="medium",
        params_b=13.0,
        base_accuracy=0.80,
        hallucination_rate=0.40,
        knowledge_coverage=0.45,
        reasoning_depth=2,
        context_window=16_384,
        cost=CostModel(
            prefill_tps=10_000,
            decode_tps=80,
            usd_per_1k_input=0.25,
            usd_per_1k_output=0.75,
            fixed_overhead_s=0.04,
        ),
    ),
    ModelSpec(
        name="sim-large",
        tier="large",
        params_b=70.0,
        base_accuracy=0.92,
        hallucination_rate=0.25,
        knowledge_coverage=0.65,
        reasoning_depth=2,
        context_window=131_072,
        cost=CostModel(
            prefill_tps=4_000,
            decode_tps=35,
            usd_per_1k_input=1.0,
            usd_per_1k_output=3.0,
            fixed_overhead_s=0.08,
        ),
    ),
]


class ModelHub:
    """Named registry of :class:`ModelSpec` instances."""

    def __init__(self, include_builtin: bool = True) -> None:
        self._specs: Dict[str, ModelSpec] = {}
        if include_builtin:
            for spec in _BUILTIN_SPECS:
                self._specs[spec.name] = spec

    def register(self, spec: ModelSpec, *, overwrite: bool = False) -> None:
        if spec.name in self._specs and not overwrite:
            raise ConfigError(f"model {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def get(self, name: str) -> ModelSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise ConfigError(
                f"unknown model {name!r}; available: {sorted(self._specs)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._specs)

    def by_tier(self, tier: str) -> List[ModelSpec]:
        return [s for s in self._specs.values() if s.tier == tier]


_DEFAULT_HUB = ModelHub()


def default_hub() -> ModelHub:
    """Process-wide default hub with the builtin tiers."""
    return _DEFAULT_HUB
