"""A tiny numpy transformer with a real KV cache (§2.3.2 LLM Inference).

The serving simulator models KV caching's *costs*; this module grounds its
*correctness* assumptions in actual attention arithmetic. It is a small
decoder-only transformer (deterministically initialized from a seed) whose
forward pass supports every cache discipline the paper describes, all
provably equivalent:

* **full recompute** — attention over the whole prefix each step;
* **incremental decode** — append one token's K/V to the cache and attend
  (the KV-cache mechanism: "store these vectors to avoid repeated
  calculation of key and value vectors");
* **chunked prefill** — feed the prompt in chunks, carrying the cache
  across chunks (Sarathi's correctness precondition);
* **paged layout** — K/V stored in scattered fixed-size blocks and
  gathered through a block table (vLLM's correctness precondition).

Tests assert bit-level (1e-5) equality of logits across all four, which is
precisely the invariant the cited systems rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..utils import derive_rng


def _softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _layer_norm(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


@dataclass
class TransformerConfig:
    """Architecture of the toy transformer."""

    vocab_size: int = 256
    dim: int = 32
    num_heads: int = 4
    num_layers: int = 2
    max_seq_len: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim % self.num_heads:
            raise ConfigError("dim must be divisible by num_heads")
        if min(self.vocab_size, self.dim, self.num_heads, self.num_layers) <= 0:
            raise ConfigError("architecture dims must be positive")

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_heads


@dataclass
class KVCache:
    """Per-layer key/value tensors, shape (layers, seq, heads, head_dim)."""

    keys: List[np.ndarray]
    values: List[np.ndarray]

    @classmethod
    def empty(cls, config: TransformerConfig) -> "KVCache":
        shape = (0, config.num_heads, config.head_dim)
        return cls(
            keys=[np.zeros(shape) for _ in range(config.num_layers)],
            values=[np.zeros(shape) for _ in range(config.num_layers)],
        )

    @property
    def seq_len(self) -> int:
        return self.keys[0].shape[0]

    def layer_keys(self, layer: int) -> np.ndarray:
        return self.keys[layer]

    def layer_values(self, layer: int) -> np.ndarray:
        return self.values[layer]

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        self.keys[layer] = np.concatenate([self.keys[layer], k], axis=0)
        self.values[layer] = np.concatenate([self.values[layer], v], axis=0)


class TinyTransformer:
    """Decoder-only transformer with deterministic random weights."""

    def __init__(self, config: Optional[TransformerConfig] = None) -> None:
        self.config = config or TransformerConfig()
        cfg = self.config
        rng = derive_rng(cfg.seed, "tiny-transformer")
        scale = 1.0 / np.sqrt(cfg.dim)

        def w(*shape):
            return rng.standard_normal(shape) * scale

        self.embedding = w(cfg.vocab_size, cfg.dim)
        self.positional = w(cfg.max_seq_len, cfg.dim)
        self.layers = []
        for _ in range(cfg.num_layers):
            self.layers.append(
                {
                    "wq": w(cfg.dim, cfg.dim),
                    "wk": w(cfg.dim, cfg.dim),
                    "wv": w(cfg.dim, cfg.dim),
                    "wo": w(cfg.dim, cfg.dim),
                    "w1": w(cfg.dim, 4 * cfg.dim),
                    "w2": w(4 * cfg.dim, cfg.dim),
                }
            )
        self.unembed = w(cfg.dim, cfg.vocab_size)

    # ------------------------------------------------------------- forward
    def _attend(
        self,
        layer: Dict[str, np.ndarray],
        x: np.ndarray,
        positions: np.ndarray,
        cache: Optional[KVCache],
        layer_index: int,
    ) -> np.ndarray:
        """Causal multi-head attention for ``x`` (new tokens only)."""
        cfg = self.config
        t_new = x.shape[0]
        q = (x @ layer["wq"]).reshape(t_new, cfg.num_heads, cfg.head_dim)
        k = (x @ layer["wk"]).reshape(t_new, cfg.num_heads, cfg.head_dim)
        v = (x @ layer["wv"]).reshape(t_new, cfg.num_heads, cfg.head_dim)
        if cache is not None:
            cache.append(layer_index, k, v)
            k_all = cache.layer_keys(layer_index)
            v_all = cache.layer_values(layer_index)
            past_len = k_all.shape[0] - t_new
        else:
            k_all, v_all = k, v
            past_len = 0
        t_total = k_all.shape[0]
        # scores: (heads, t_new, t_total)
        scores = np.einsum("qhd,khd->hqk", q, k_all) / np.sqrt(cfg.head_dim)
        # Causal mask: new token i (global position past_len + i) may attend
        # to keys with global index <= past_len + i.
        key_idx = np.arange(t_total)[None, :]
        query_idx = (past_len + np.arange(t_new))[:, None]
        mask = key_idx > query_idx
        scores = np.where(mask[None, :, :], -1e30, scores)
        attn = _softmax(scores, axis=-1)
        out = np.einsum("hqk,khd->qhd", attn, v_all).reshape(t_new, cfg.dim)
        return out @ layer["wo"]

    def forward(
        self,
        tokens: List[int],
        *,
        cache: Optional[KVCache] = None,
        position_offset: int = 0,
    ) -> np.ndarray:
        """Logits for each position of ``tokens``.

        With a ``cache``, ``tokens`` are *new* tokens appended after the
        cached prefix; ``position_offset`` must equal the cache length.
        """
        cfg = self.config
        if any(not 0 <= t < cfg.vocab_size for t in tokens):
            raise ConfigError("token id out of range")
        if position_offset + len(tokens) > cfg.max_seq_len:
            raise ConfigError("sequence exceeds max_seq_len")
        positions = np.arange(position_offset, position_offset + len(tokens))
        x = self.embedding[tokens] + self.positional[positions]
        for i, layer in enumerate(self.layers):
            x = x + self._attend(layer, _layer_norm(x), positions, cache, i)
            hidden = _layer_norm(x) @ layer["w1"]
            x = x + np.maximum(hidden, 0.0) @ layer["w2"]
        return _layer_norm(x) @ self.unembed

    # ------------------------------------------------- cache disciplines
    def logits_full_recompute(self, tokens: List[int]) -> np.ndarray:
        """Attention over the whole sequence, no cache (the baseline)."""
        return self.forward(tokens)

    def logits_incremental(self, tokens: List[int]) -> np.ndarray:
        """One token at a time through a KV cache."""
        cache = KVCache.empty(self.config)
        rows = []
        for i, token in enumerate(tokens):
            rows.append(self.forward([token], cache=cache, position_offset=i)[0])
        return np.stack(rows)

    def logits_chunked(self, tokens: List[int], chunk: int) -> np.ndarray:
        """Prompt fed in ``chunk``-sized pieces through one cache."""
        if chunk <= 0:
            raise ConfigError("chunk must be positive")
        cache = KVCache.empty(self.config)
        rows = []
        for start in range(0, len(tokens), chunk):
            piece = tokens[start : start + chunk]
            rows.append(self.forward(piece, cache=cache, position_offset=start))
        return np.concatenate(rows, axis=0)

    def generate_greedy(
        self, prompt: List[int], *, max_new_tokens: int = 8
    ) -> List[int]:
        """Greedy decoding with an incremental KV cache."""
        cache = KVCache.empty(self.config)
        logits = self.forward(prompt, cache=cache)
        out = list(prompt)
        for _ in range(max_new_tokens):
            nxt = int(np.argmax(logits[-1]))
            out.append(nxt)
            if len(out) >= self.config.max_seq_len:
                break
            logits = self.forward([nxt], cache=cache, position_offset=len(out) - 1)
        return out


class PagedKVCache(KVCache):
    """KV cache stored in scattered fixed-size blocks + a block table.

    Mirrors vLLM's memory layout: logically contiguous (seq, heads, dim)
    tensors live physically in non-contiguous blocks; reads gather through
    the block table. Functionally identical to :class:`KVCache` (asserted
    by tests), while exposing the block bookkeeping the simulator models.
    """

    def __init__(self, config: TransformerConfig, *, block_size: int = 16,
                 num_blocks: int = 256) -> None:
        self.config_ref = config
        self.block_size = block_size
        shape = (num_blocks, block_size, config.num_heads, config.head_dim)
        # Physical block pools per layer; one block table shared by layers.
        self._k_pool = [np.zeros(shape) for _ in range(config.num_layers)]
        self._v_pool = [np.zeros(shape) for _ in range(config.num_layers)]
        self._block_table: List[int] = []
        self._free = list(range(num_blocks - 1, -1, -1))
        self._lens = [0] * config.num_layers

    # KVCache interface -------------------------------------------------
    @property
    def seq_len(self) -> int:
        return min(self._lens)

    def layer_keys(self, layer: int) -> np.ndarray:
        return self._gather(self._k_pool[layer], self._lens[layer])

    def layer_values(self, layer: int) -> np.ndarray:
        return self._gather(self._v_pool[layer], self._lens[layer])

    @property
    def keys(self) -> List[np.ndarray]:  # type: ignore[override]
        return [self.layer_keys(i) for i in range(self.config_ref.num_layers)]

    @keys.setter
    def keys(self, value: List[np.ndarray]) -> None:  # pragma: no cover - interface shim
        raise ConfigError("paged cache keys are read-only views")

    @property
    def values(self) -> List[np.ndarray]:  # type: ignore[override]
        return [self.layer_values(i) for i in range(self.config_ref.num_layers)]

    @values.setter
    def values(self, value: List[np.ndarray]) -> None:  # pragma: no cover - interface shim
        raise ConfigError("paged cache values are read-only views")

    def _gather(self, pool: np.ndarray, length: int) -> np.ndarray:
        if not self._block_table:
            return np.zeros((0, self.config_ref.num_heads, self.config_ref.head_dim))
        stacked = pool[self._block_table].reshape(
            -1, self.config_ref.num_heads, self.config_ref.head_dim
        )
        return stacked[:length]

    def append(self, layer: int, k: np.ndarray, v: np.ndarray) -> None:
        # The first layer to reach a position drives block allocation; the
        # table is shared across layers (positions align by construction).
        write_pos = self._lens[layer]
        for i in range(k.shape[0]):
            pos = write_pos + i
            block_index = pos // self.block_size
            if block_index >= len(self._block_table):
                if not self._free:
                    raise ConfigError("paged cache out of blocks")
                self._block_table.append(self._free.pop())
            physical = self._block_table[block_index]
            offset = pos % self.block_size
            self._k_pool[layer][physical, offset] = k[i]
            self._v_pool[layer][physical, offset] = v[i]
        self._lens[layer] += k.shape[0]

    def block_count(self) -> int:
        return len(self._block_table)
