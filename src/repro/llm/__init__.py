"""Simulated-LLM substrate: tokenizer, embeddings, model hub, cost model.

See DESIGN.md §1 for why a deterministic simulated oracle is a faithful
substitute for a hosted LLM in every LLM4Data experiment.
"""

from .cache import CachedLLM, CacheStats
from .cost import CostModel, Usage, UsageLedger
from .embedding import EmbeddingModel, cosine_similarity, top_k_cosine
from .hub import ModelHub, ModelSpec, default_hub
from .knowledge import KnowledgeBase
from .model import LLMResponse, SimLLM, make_llm
from .protocol import ParsedPrompt, Prompt, parse_prompt
from .reasoning import ReasoningResult, best_of_n_grounded, chain_of_questions, self_consistency
from .tokenizer import Tokenizer, count_tokens, default_tokenizer
from .transformer import KVCache, PagedKVCache, TinyTransformer, TransformerConfig

__all__ = [
    "CachedLLM",
    "CacheStats",
    "ReasoningResult",
    "best_of_n_grounded",
    "chain_of_questions",
    "self_consistency",
    "CostModel",
    "Usage",
    "UsageLedger",
    "EmbeddingModel",
    "cosine_similarity",
    "top_k_cosine",
    "ModelHub",
    "ModelSpec",
    "default_hub",
    "KnowledgeBase",
    "LLMResponse",
    "SimLLM",
    "make_llm",
    "ParsedPrompt",
    "Prompt",
    "parse_prompt",
    "Tokenizer",
    "count_tokens",
    "default_tokenizer",
    "KVCache",
    "PagedKVCache",
    "TinyTransformer",
    "TransformerConfig",
]
