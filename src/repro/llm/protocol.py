"""Prompt wire format between LLM4Data components and the simulated LLM.

Components never call into the simulator's internals directly: they render a
*textual* prompt (as they would for a hosted model) and the simulator parses
that text back. This keeps the interface honest — what is not in the prompt
is invisible to the model, so prompt-engineering choices (adding context,
few-shot examples, compressing) have real effects.

The format is a light sectioned layout::

    ### task: qa
    ### instruction: Answer using only the provided context.
    ### context:
    <passages...>
    ### examples:
    Q: ... A: ...
    ### input:
    Which country is Norburg in?

Free-form prompts without ``### task:`` parse as task ``chat``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

_SECTION_RE = re.compile(r"^### (\w+):\s*(.*)$")

KNOWN_TASKS = {
    "chat",
    "qa",
    "extract",
    "judge",
    "map",
    "join",
    "rank",
    "decompose",
    "sql",
    "viz",
    "rewrite",
    "tune",
    "codegen",
    "label",
    "summarize",
}


@dataclass
class Prompt:
    """Structured prompt; ``render()`` yields the literal text sent to a model."""

    task: str = "chat"
    instruction: str = ""
    context: str = ""
    examples: List[str] = field(default_factory=list)
    input: str = ""
    fields: Dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"### task: {self.task}"]
        if self.instruction:
            lines.append(f"### instruction: {self.instruction}")
        for key, value in sorted(self.fields.items()):
            lines.append(f"### {key}: {value}")
        if self.context:
            lines.append("### context:")
            lines.append(self.context)
        if self.examples:
            lines.append("### examples:")
            lines.extend(self.examples)
        lines.append("### input:")
        lines.append(self.input)
        return "\n".join(lines)


@dataclass
class ParsedPrompt:
    """What the simulated model recovers from a prompt's text."""

    task: str
    instruction: str
    context: str
    examples: List[str]
    input: str
    fields: Dict[str, str]
    raw: str

    @property
    def num_examples(self) -> int:
        return len(self.examples)

    @property
    def has_context(self) -> bool:
        return bool(self.context.strip())


# Sections whose content is a block following the header line.
_BLOCK_SECTIONS = {"context", "examples", "input"}


def parse_prompt(text: str) -> ParsedPrompt:
    """Parse prompt text back into sections (inverse of ``Prompt.render``).

    Robust to free-form text: anything that doesn't follow the sectioned
    format becomes the ``input`` of a ``chat`` task.
    """
    lines = text.splitlines()
    task = "chat"
    instruction = ""
    fields: Dict[str, str] = {}
    blocks: Dict[str, List[str]] = {name: [] for name in _BLOCK_SECTIONS}
    current_block: Optional[str] = None
    free_lines: List[str] = []
    saw_section = False

    for line in lines:
        match = _SECTION_RE.match(line)
        if match:
            saw_section = True
            key, value = match.group(1), match.group(2)
            if key == "task":
                task = value.strip() or "chat"
                current_block = None
            elif key == "instruction":
                instruction = value.strip()
                current_block = None
            elif key in _BLOCK_SECTIONS:
                current_block = key
                if value.strip():
                    blocks[key].append(value.strip())
            else:
                fields[key] = value.strip()
                current_block = None
        elif current_block is not None:
            blocks[current_block].append(line)
        else:
            free_lines.append(line)

    if not saw_section:
        return ParsedPrompt(
            task="chat",
            instruction="",
            context="",
            examples=[],
            input=text.strip(),
            fields={},
            raw=text,
        )

    examples = [line for line in blocks["examples"] if line.strip()]
    return ParsedPrompt(
        task=task if task in KNOWN_TASKS else "chat",
        instruction=instruction,
        context="\n".join(blocks["context"]).strip(),
        examples=examples,
        input="\n".join(blocks["input"]).strip() or "\n".join(free_lines).strip(),
        fields=fields,
        raw=text,
    )
