"""Parametric knowledge store of the simulated LLM.

A real LLM memorizes a *fraction* of world knowledge at pretraining time;
whether a given fact is inside or outside that fraction is exactly what RAG,
fine-tuning, and hallucination experiments manipulate. :class:`KnowledgeBase`
makes that fraction explicit: it holds a seeded sample of a world's facts,
supports lookups (closed-book answering), counterfactual sampling (the
hallucination channel draws a *plausible but wrong* value of the same
attribute), and fact injection (fine-tuning / flywheel updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..data.world import Fact, World
from ..errors import ConfigError
from ..utils import derive_rng


@dataclass
class KnowledgeBase:
    """A queryable set of (subject, attribute) -> value facts."""

    facts: Dict[Tuple[str, str], str] = field(default_factory=dict)
    by_attribute: Dict[str, List[str]] = field(default_factory=dict)
    subjects: Set[str] = field(default_factory=set)

    @classmethod
    def from_world(
        cls, world: World, *, coverage: float = 1.0, seed: int = 0
    ) -> "KnowledgeBase":
        """Sample ``coverage`` of the world's facts as pretraining knowledge."""
        if not 0.0 <= coverage <= 1.0:
            raise ConfigError(f"coverage must be in [0, 1], got {coverage}")
        kb = cls()
        all_facts = world.facts()
        rng = derive_rng(seed, "kb-coverage")
        keep = rng.random(len(all_facts)) < coverage
        for fact, kept in zip(all_facts, keep):
            # Value vocabulary per attribute is always known (the model has
            # "seen the kind of thing" even when it missed the specific fact)
            # — that is what makes hallucinations plausible.
            kb.by_attribute.setdefault(fact.attribute, []).append(fact.value)
            if kept:
                kb.add(fact)
        return kb

    def add(self, fact: Fact) -> None:
        """Insert (or overwrite) a fact."""
        self.facts[fact.key()] = fact.value
        self.by_attribute.setdefault(fact.attribute, []).append(fact.value)
        self.subjects.add(fact.subject.lower())

    def add_facts(self, facts: Iterable[Fact]) -> int:
        """Bulk insert; returns number of *new* keys added."""
        added = 0
        for fact in facts:
            if fact.key() not in self.facts:
                added += 1
            self.add(fact)
        return added

    def lookup(self, subject: str, attribute: str) -> Optional[str]:
        """Closed-book recall of ``subject.attribute`` (None if unmemorized)."""
        return self.facts.get((subject.lower(), attribute))

    def knows_subject(self, subject: str) -> bool:
        return subject.lower() in self.subjects

    def plausible_wrong_value(
        self, attribute: str, correct: Optional[str], seed_material: str
    ) -> str:
        """A value of the right *type* that is not the correct answer.

        This is the hallucination channel: confidently returning a
        same-category value (a real city for a headquarters question, a real
        year for a founding question) that happens to be wrong.
        """
        pool = [v for v in self.by_attribute.get(attribute, []) if v != correct]
        if not pool:
            return "unknown-entity"
        rng = derive_rng(0, "halluc", attribute, seed_material)
        return pool[int(rng.integers(0, len(pool)))]

    def __len__(self) -> int:
        return len(self.facts)
