"""LLM response caching: exact and semantic (the §2.2.1 cost principle).

"Cost-Efficiency Optimization ... can be achieved through caching and
reducing unnecessary model invocations." Two cache layers wrap a
:class:`~repro.llm.model.SimLLM` behind the same ``generate`` interface:

* **exact** — hash of the rendered prompt; hits are free and identical;
* **semantic** — embedding lookup of the prompt's *input* section against
  previously answered prompts of the same task; a hit above the
  similarity threshold reuses the stored answer. Semantic hits trade a
  controlled risk of staleness/mismatch for large savings on paraphrase-
  heavy traffic (the GPTCache design).

:class:`CachedLLM` is a drop-in: components that accept a ``SimLLM`` can
take a ``CachedLLM`` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..utils import stable_hash
from .cost import Usage, UsageLedger
from .embedding import EmbeddingModel
from .hub import ModelSpec
from .knowledge import KnowledgeBase
from .model import LLMResponse, SimLLM, SkillFn
from .protocol import parse_prompt
from .tokenizer import Tokenizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.world import Fact


@dataclass
class CacheStats:
    """Hit/miss accounting plus the spend the cache avoided."""

    exact_hits: int = 0
    semantic_hits: int = 0
    misses: int = 0
    saved_usd: float = 0.0
    saved_calls: int = 0

    @property
    def lookups(self) -> int:
        return self.exact_hits + self.semantic_hits + self.misses

    @property
    def hit_rate(self) -> float:
        return (
            (self.exact_hits + self.semantic_hits) / self.lookups
            if self.lookups
            else 0.0
        )


@dataclass
class _Entry:
    prompt_text: str
    input_vector: np.ndarray
    response: LLMResponse
    # Generation parameters the response was produced under: a semantic hit
    # is only valid when the caller asked for the same ones (a response
    # generated with a larger max_tokens may exceed the caller's cap).
    max_tokens: int = 256
    temperature: float = 0.0


class CachedLLM:
    """Exact + semantic response cache in front of a simulated LLM.

    Parameters
    ----------
    llm:
        The backing model.
    semantic_threshold:
        Cosine similarity above which a same-task cached input is reused;
        ``None`` disables the semantic layer (exact-only).
    max_entries:
        FIFO capacity bound of the semantic store.
    cacheable_tasks:
        Only these prompt tasks are cached (stateful/creative tasks like
        ``decompose`` with substitution slots are excluded by default).
    """

    def __init__(
        self,
        llm: SimLLM,
        *,
        semantic_threshold: Optional[float] = 0.9,
        max_entries: int = 10_000,
        cacheable_tasks: Tuple[str, ...] = ("qa", "judge", "label", "extract", "map"),
    ) -> None:
        if semantic_threshold is not None and not 0.0 < semantic_threshold <= 1.0:
            raise ConfigError("semantic_threshold must be in (0, 1]")
        if max_entries <= 0:
            raise ConfigError("max_entries must be positive")
        self.llm = llm
        self.semantic_threshold = semantic_threshold
        self.max_entries = max_entries
        self.cacheable_tasks = set(cacheable_tasks)
        self.stats = CacheStats()
        self._exact: Dict[int, LLMResponse] = {}
        self._by_task: Dict[str, List[_Entry]] = {}
        self._insert_order: List[Tuple[str, int]] = []  # (task, key) FIFO

    # ---------------------------------------------------------- delegation
    @property
    def embedder(self) -> EmbeddingModel:
        return self.llm.embedder

    @property
    def knowledge(self) -> KnowledgeBase:
        return self.llm.knowledge

    @property
    def usage(self) -> Usage:
        return self.llm.usage

    @property
    def ledger(self) -> UsageLedger:
        return self.llm.ledger

    @property
    def spec(self) -> ModelSpec:
        return self.llm.spec

    @property
    def tokenizer(self) -> Tokenizer:
        return self.llm.tokenizer

    def register_skill(self, task: str, fn: SkillFn) -> None:
        self.llm.register_skill(task, fn)

    def fine_tune(self, facts: "List[Fact]") -> int:
        self.invalidate()
        return self.llm.fine_tune(facts)

    # ------------------------------------------------------------ generate
    def generate(
        self,
        prompt: str,
        *,
        max_tokens: int = 256,
        temperature: float = 0.0,
        tag: str = "default",
    ) -> LLMResponse:
        """Serve from cache when possible; otherwise call through and store."""
        key = stable_hash(f"{prompt}|{max_tokens}|{temperature}")
        cached = self._exact.get(key)
        if cached is not None:
            self._credit(cached)
            self.stats.exact_hits += 1
            return cached
        parsed = parse_prompt(prompt)
        cacheable = parsed.task in self.cacheable_tasks and temperature == 0.0
        if cacheable and self.semantic_threshold is not None:
            hit = self._semantic_lookup(
                parsed.task, parsed.input, max_tokens=max_tokens, temperature=temperature
            )
            if hit is not None:
                self._credit(hit)
                self.stats.semantic_hits += 1
                return hit
        response = self.llm.generate(
            prompt, max_tokens=max_tokens, temperature=temperature, tag=tag
        )
        self.stats.misses += 1
        if cacheable:
            self._exact[key] = response
            vector = self.llm.embedder.embed(parsed.input)
            self._by_task.setdefault(parsed.task, []).append(
                _Entry(
                    prompt_text=prompt,
                    input_vector=vector,
                    response=response,
                    max_tokens=max_tokens,
                    temperature=temperature,
                )
            )
            self._insert_order.append((parsed.task, key))
            self._evict_if_needed()
        return response

    def generate_many(
        self,
        prompts: Sequence[str],
        *,
        max_tokens: int = 256,
        temperature: float = 0.0,
        tag: str = "default",
    ) -> List[LLMResponse]:
        """Batched interface parity with :meth:`SimLLM.generate_many`.

        Processes prompts sequentially through the cache so semantic-hit
        behaviour is *exactly* the looped ``generate`` semantics (an early
        miss in the batch may serve a later prompt semantically); duplicate
        prompts within one batch hit the exact layer after their first
        occurrence, so the backing model is charged once per unique miss.
        """
        return [
            self.generate(
                prompt, max_tokens=max_tokens, temperature=temperature, tag=tag
            )
            for prompt in prompts
        ]

    def _semantic_lookup(
        self, task: str, input_text: str, *, max_tokens: int, temperature: float
    ) -> Optional[LLMResponse]:
        entries = self._by_task.get(task)
        if not entries:
            return None
        query = self.llm.embedder.embed(input_text)
        best_score = -1.0
        best: Optional[_Entry] = None
        for entry in entries:
            if entry.max_tokens != max_tokens or entry.temperature != temperature:
                continue  # generated under different parameters than requested
            score = float(np.dot(query, entry.input_vector))
            if score > best_score:
                best_score, best = score, entry
        if best is not None and best_score >= self.semantic_threshold:
            return best.response
        return None

    def _credit(self, response: LLMResponse) -> None:
        self.stats.saved_usd += response.usage.usd
        self.stats.saved_calls += 1

    def _evict_if_needed(self) -> None:
        while len(self._insert_order) > self.max_entries:
            task, key = self._insert_order.pop(0)
            self._exact.pop(key, None)
            entries = self._by_task.get(task)
            if entries:
                entries.pop(0)

    # ---------------------------------------------------------- management
    def invalidate(self) -> None:
        """Drop everything (e.g. after fine-tuning changes the model)."""
        self._exact.clear()
        self._by_task.clear()
        self._insert_order.clear()

    def __len__(self) -> int:
        return len(self._insert_order)
