"""Deterministic word-level tokenizer with subword fallback.

Real LLM stacks use learned BPE vocabularies; for a fully offline,
reproducible substrate we use a closed-form scheme that preserves the two
properties the rest of the library relies on:

* token counts scale with text length the way BPE counts do (roughly one
  token per short word, several per long/rare word), so cost and latency
  models behave realistically; and
* tokenization is invertible, so generated token streams round-trip to text.

Words at most ``max_word_len`` characters long become single tokens; longer
words are split into fixed-size subword pieces, mimicking how BPE fragments
rare words. Token ids are stable hashes of the token string into a fixed
vocabulary range, so two processes always agree on ids.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import TokenizerError
from ..utils import stable_hash

_TOKEN_PATTERN = re.compile(r"\w+|[^\w\s]|\s+", re.UNICODE)
# Fast path for content_tokens: whitespace runs and single-character
# punctuation chunks can never survive the content filter (punctuation is
# never alphanumeric), so scanning word chunks alone visits roughly half
# the matches the full lossless pattern does.
_WORD_PATTERN = re.compile(r"\w+", re.UNICODE)
# Single non-word, non-space characters — the middle alternative of the
# lossless pattern.  Each such character is exactly one countable piece.
_PUNCT_PATTERN = re.compile(r"[^\w\s]", re.UNICODE)


@dataclass
class Tokenizer:
    """Reversible deterministic tokenizer.

    Parameters
    ----------
    vocab_size:
        Size of the id space tokens are hashed into. Collisions are possible
        (as in any hashed vocabulary) but ids are only used for embedding
        lookups and cost accounting, never for reconstruction — the decoder
        keeps the literal piece strings.
    max_word_len:
        Words longer than this are split into subword pieces of this length.
    """

    vocab_size: int = 50_000
    max_word_len: int = 8
    _id_cache: Dict[str, int] = field(default_factory=dict, repr=False)
    _ascii_run: object = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.vocab_size < 256:
            raise TokenizerError(f"vocab_size too small: {self.vocab_size}")
        if self.max_word_len < 2:
            raise TokenizerError(f"max_word_len too small: {self.max_word_len}")

    def pieces(self, text: str) -> List[str]:
        """Split ``text`` into token piece strings (lossless: concat == text)."""
        pieces: List[str] = []
        for match in _TOKEN_PATTERN.finditer(text):
            chunk = match.group(0)
            if chunk.isspace() or len(chunk) <= self.max_word_len:
                pieces.append(chunk)
            else:
                step = self.max_word_len
                pieces.extend(chunk[i : i + step] for i in range(0, len(chunk), step))
        return pieces

    def token_id(self, piece: str) -> int:
        """Stable id of a piece within ``[0, vocab_size)``."""
        cached = self._id_cache.get(piece)
        if cached is None:
            cached = stable_hash("tok:" + piece) % self.vocab_size
            self._id_cache[piece] = cached
        return cached

    def encode(self, text: str) -> List[int]:
        """Encode ``text`` into token ids."""
        return [self.token_id(piece) for piece in self.pieces(text)]

    def encode_with_pieces(self, text: str) -> List[tuple]:
        """Encode, returning ``(id, piece)`` pairs for lossless decoding."""
        return [(self.token_id(piece), piece) for piece in self.pieces(text)]

    def decode_pieces(self, pieces: Sequence[str]) -> str:
        """Reassemble piece strings into text."""
        return "".join(pieces)

    def count(self, text: str) -> int:
        """Number of tokens in ``text`` (whitespace pieces excluded).

        This is the count used for cost/latency models: whitespace between
        words is fused into neighbouring tokens by real BPE vocabularies, so
        counting it separately would roughly double apparent token counts.
        """
        return sum(1 for piece in self.pieces(text) if not piece.isspace())

    def count_many(self, texts: Sequence[str]) -> List[int]:
        """:meth:`count` for a whole corpus in two regex scans per text.

        Every ``\\w+`` chunk contributes ``ceil(len / max_word_len)``
        pieces (the fixed-size long-word split), every ``[^\\w\\s]``
        character contributes one, and whitespace runs contribute none —
        so the count reduces to two findall-style scans with no per-piece
        Python loop.  Exactly equal to :meth:`count` for every input.
        """
        step = self.max_word_len
        pad = step - 1
        word_iter = _WORD_PATTERN.finditer
        punct_iter = _PUNCT_PATTERN.finditer
        return [
            sum((m.end() - m.start() + pad) // step for m in word_iter(text))
            + sum(1 for _ in punct_iter(text))
            for text in texts
        ]

    def truncate(self, text: str, max_tokens: int) -> str:
        """Longest prefix of ``text`` containing at most ``max_tokens`` tokens.

        Cuts on piece boundaries, so the result re-tokenizes to exactly the
        kept pieces: word chunks are only ever merged back into the same
        fixed-size splits, whitespace runs count as zero either way.  Used
        by the simulated model to make a ``max_tokens``-capped reply's text
        agree with its charged ``output_tokens``.
        """
        if max_tokens <= 0:
            raise TokenizerError(f"max_tokens must be positive, got {max_tokens}")
        kept: List[str] = []
        count = 0
        for piece in self.pieces(text):
            if not piece.isspace():
                if count == max_tokens:
                    break
                count += 1
            kept.append(piece)
        return "".join(kept)

    def content_tokens(self, text: str) -> List[str]:
        """Lower-cased non-whitespace, non-punctuation pieces (for embeddings).

        Equivalent to filtering :meth:`pieces` but scans only word chunks:
        whitespace and single-character punctuation chunks can never pass the
        alphanumeric filter. The ``any(isalnum)`` check is only needed for
        pieces that could be non-alphanumeric despite matching ``\\w`` —
        underscores and (for non-ASCII text) combining marks.
        """
        out: List[str] = []
        append = out.append
        step = self.max_word_len
        for word in _WORD_PATTERN.findall(text):
            if len(word) <= step:
                if ("_" in word or not word.isascii()) and not any(
                    ch.isalnum() for ch in word
                ):
                    continue
                append(word.lower())
            else:
                for i in range(0, len(word), step):
                    piece = word[i : i + step]
                    if ("_" in piece or not piece.isascii()) and not any(
                        ch.isalnum() for ch in piece
                    ):
                        continue
                    append(piece.lower())
        return out

    def content_tokens_many(self, texts: Sequence[str]) -> List[List[str]]:
        """:meth:`content_tokens` for a whole corpus, with an ASCII fast path.

        For ASCII text without underscores, ``\\w+`` runs are exactly
        ``[a-z0-9]+`` runs of the lower-cased text (ASCII lower-casing is
        length-preserving and keeps alphanumerics alphanumeric), and the
        greedy ``{1,max_word_len}`` quantifier reproduces the fixed-size
        long-word split, so one regex scan yields the final token list with
        no per-word Python loop. Other texts fall back to
        :meth:`content_tokens`. Output is identical either way.
        """
        pattern = self._ascii_run
        if pattern is None:
            pattern = self._ascii_run = re.compile(
                r"[a-z0-9]{1,%d}" % self.max_word_len
            )
        findall = pattern.findall
        slow = self.content_tokens
        return [
            findall(t.lower()) if t.isascii() and "_" not in t else slow(t)
            for t in texts
        ]


_DEFAULT_TOKENIZER = Tokenizer()


def default_tokenizer() -> Tokenizer:
    """The process-wide default tokenizer instance."""
    return _DEFAULT_TOKENIZER


def count_tokens(text: str) -> int:
    """Convenience: token count of ``text`` under the default tokenizer."""
    return _DEFAULT_TOKENIZER.count(text)
