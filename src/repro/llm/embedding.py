"""Deterministic text-embedding model.

Embeds text as an IDF-weighted sum of per-token random Gaussian vectors,
where each token's vector is seeded by a stable hash of the token string.
This reproduces the property dense retrieval depends on — lexically and
topically similar texts land near each other in cosine space — without any
learned weights or network access.

Two refinements close the gap to learned embedders:

* **stem smoothing** — each token also contributes the vector of its first
  ``stem_len`` characters at reduced weight, so morphological variants
  ("configure" / "configuration") are close; and
* **bigram mixing** — adjacent-token bigrams contribute at reduced weight so
  word order matters slightly (distinguishing "flight from Berlin to Rome"
  from "flight from Rome to Berlin").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..utils import normalize, stable_hash
from .tokenizer import Tokenizer, default_tokenizer


@dataclass
class EmbeddingModel:
    """Hash-seeded random-projection embedder.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    seed:
        Model identity: two models with the same seed embed identically,
        models with different seeds define incompatible spaces (as with real
        embedding model families).
    stem_len / stem_weight:
        Prefix-stem smoothing (0 weight disables).
    bigram_weight:
        Adjacent-bigram contribution (0 disables).
    """

    dim: int = 128
    seed: int = 0
    stem_len: int = 5
    stem_weight: float = 0.4
    bigram_weight: float = 0.25
    tokenizer: Tokenizer = field(default_factory=default_tokenizer)
    _token_vectors: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _doc_freq: Dict[str, int] = field(default_factory=dict, repr=False)
    _num_docs: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise ConfigError(f"embedding dim too small: {self.dim}")

    # ------------------------------------------------------------------ IDF
    def fit_idf(self, corpus: Iterable[str]) -> "EmbeddingModel":
        """Fit inverse-document-frequency weights on ``corpus``.

        Optional; without it all tokens are weighted equally. Returns self
        for chaining.
        """
        for text in corpus:
            self._num_docs += 1
            for token in set(self.tokenizer.content_tokens(text)):
                self._doc_freq[token] = self._doc_freq.get(token, 0) + 1
        return self

    def _idf(self, token: str) -> float:
        if not self._num_docs:
            return 1.0
        df = self._doc_freq.get(token, 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    # -------------------------------------------------------------- vectors
    def _unit_vector(self, key: str) -> np.ndarray:
        vec = self._token_vectors.get(key)
        if vec is None:
            rng = np.random.default_rng(stable_hash(f"emb:{self.seed}:{key}"))
            vec = rng.standard_normal(self.dim).astype(np.float32)
            vec /= np.linalg.norm(vec)
            self._token_vectors[key] = vec
        return vec

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm float32 vector."""
        tokens = self.tokenizer.content_tokens(text)
        acc = np.zeros(self.dim, dtype=np.float32)
        if not tokens:
            return self._unit_vector("<empty>").copy()
        for token in tokens:
            weight = self._idf(token)
            acc += weight * self._unit_vector(token)
            if self.stem_weight > 0 and len(token) > self.stem_len:
                acc += weight * self.stem_weight * self._unit_vector(token[: self.stem_len])
        if self.bigram_weight > 0:
            for left, right in zip(tokens, tokens[1:]):
                acc += self.bigram_weight * self._unit_vector(f"{left}##{right}")
        return normalize(acc).astype(np.float32)

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts; returns an ``(n, dim)`` float32 matrix."""
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        return np.stack([self.embed(text) for text in texts])

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two texts under this model."""
        return float(np.dot(self.embed(a), self.embed(b)))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two (not necessarily normalized) vectors."""
    na, nb = float(np.linalg.norm(a)), float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def top_k_cosine(
    query: np.ndarray, matrix: np.ndarray, k: int, *, exclude: Optional[set] = None
) -> List[tuple]:
    """Exact top-k rows of ``matrix`` by cosine similarity to ``query``.

    Returns ``(row_index, score)`` pairs sorted by descending score. Assumes
    rows and query are already unit-normalized (dot == cosine).
    """
    if matrix.shape[0] == 0 or k <= 0:
        return []
    scores = matrix @ query
    if exclude:
        scores = scores.copy()
        for idx in exclude:
            scores[idx] = -np.inf
    k = min(k, matrix.shape[0])
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top])]
    return [(int(i), float(scores[i])) for i in top if np.isfinite(scores[i])]
