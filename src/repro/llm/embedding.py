"""Deterministic text-embedding model.

Embeds text as an IDF-weighted sum of per-token random Gaussian vectors,
where each token's vector is seeded by a stable hash of the token string.
This reproduces the property dense retrieval depends on — lexically and
topically similar texts land near each other in cosine space — without any
learned weights or network access.

Two refinements close the gap to learned embedders:

* **stem smoothing** — each token also contributes the vector of its first
  ``stem_len`` characters at reduced weight, so morphological variants
  ("configure" / "configuration") are close; and
* **bigram mixing** — adjacent-token bigrams contribute at reduced weight so
  word order matters slightly (distinguishing "flight from Berlin to Rome"
  from "flight from Rome to Berlin").
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..utils import normalize, stable_hash
from .tokenizer import Tokenizer, default_tokenizer


@dataclass
class EmbeddingModel:
    """Hash-seeded random-projection embedder.

    Parameters
    ----------
    dim:
        Embedding dimensionality.
    seed:
        Model identity: two models with the same seed embed identically,
        models with different seeds define incompatible spaces (as with real
        embedding model families).
    stem_len / stem_weight:
        Prefix-stem smoothing (0 weight disables).
    bigram_weight:
        Adjacent-bigram contribution (0 disables).
    """

    dim: int = 128
    seed: int = 0
    stem_len: int = 5
    stem_weight: float = 0.4
    bigram_weight: float = 0.25
    tokenizer: Tokenizer = field(default_factory=default_tokenizer)
    _token_vectors: Dict[str, np.ndarray] = field(default_factory=dict, repr=False)
    _doc_freq: Dict[str, int] = field(default_factory=dict, repr=False)
    _num_docs: int = field(default=0, repr=False)
    # Streaming IDF state (see partial_fit_idf): once pinned, embeddings are
    # computed from the frozen snapshot while live stats keep accumulating.
    _pinned_doc_freq: Optional[Dict[str, int]] = field(default=None, repr=False)
    _pinned_num_docs: int = field(default=0, repr=False)
    _stale_docs: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.dim < 8:
            raise ConfigError(f"embedding dim too small: {self.dim}")

    # ------------------------------------------------------------------ IDF
    def fit_idf(self, corpus: Iterable[str]) -> "EmbeddingModel":
        """Fit inverse-document-frequency weights on ``corpus``.

        Optional; without it all tokens are weighted equally. Returns self
        for chaining. One tokenizer pass over the corpus; per-document
        distinct tokens are tallied with a single ``Counter`` merge.
        """
        token_lists = self.tokenizer.content_tokens_many(list(corpus))
        self._num_docs += len(token_lists)
        counts: Counter = Counter()
        for tokens in token_lists:
            counts.update(set(tokens))
        doc_freq = self._doc_freq
        for token, count in counts.items():
            doc_freq[token] = doc_freq.get(token, 0) + count
        return self

    def partial_fit_idf(self, new_corpus: Iterable[str]) -> "EmbeddingModel":
        """Fold a streaming batch's document frequencies into the live stats.

        The first call *pins* the current statistics: from then on
        :meth:`_idf` (and therefore every embed) reads the pinned snapshot,
        so vectors already sitting in an index and fresh query vectors stay
        in the same space no matter how much the live stats drift. Live
        stats keep accumulating; :meth:`idf_drift` measures how far they
        have moved and :meth:`refresh` re-pins when the caller is ready to
        re-embed. Returns self for chaining.
        """
        if self._pinned_doc_freq is None:
            self._pinned_doc_freq = dict(self._doc_freq)
            self._pinned_num_docs = self._num_docs
        before = self._num_docs
        self.fit_idf(new_corpus)
        self._stale_docs += self._num_docs - before
        return self

    @property
    def stale_docs(self) -> int:
        """Documents folded into live stats since the last pin/refresh."""
        return self._stale_docs

    def idf_drift(self) -> float:
        """Live-vs-pinned IDF divergence, weighted by live document frequency.

        ``sum_t df_live(t) * |idf_live(t) - idf_pinned(t)|`` normalized by
        ``sum_t df_live(t) * idf_live(t)`` — the relative L1 shift of the
        IDF mass an embedding actually uses (frequency-weighting keeps rare
        hapax tokens from dominating). 0.0 when nothing is pinned or no
        documents have been folded in since pinning.
        """
        if self._pinned_doc_freq is None or not self._stale_docs:
            return 0.0
        live_n = self._num_docs
        pin_n = self._pinned_num_docs
        num = 0.0
        den = 0.0
        pinned = self._pinned_doc_freq
        for token, df in self._doc_freq.items():
            idf_live = math.log((1 + live_n) / (1 + df)) + 1.0
            pin_df = pinned.get(token, 0)
            idf_pin = (
                math.log((1 + pin_n) / (1 + pin_df)) + 1.0 if pin_n else 1.0
            )
            num += df * abs(idf_live - idf_pin)
            den += df * idf_live
        return num / den if den else 0.0

    def refresh(self, threshold: float = 0.05) -> bool:
        """Re-pin the live stats iff drift exceeds ``threshold``.

        Returns True when the pin moved — the caller's signal that vectors
        embedded under the old pin are stale and must be re-embedded (the
        embedding space changed). Returns False (and changes nothing) while
        drift stays within tolerance.
        """
        if threshold < 0:
            raise ConfigError(f"refresh threshold must be >= 0, got {threshold}")
        if self._pinned_doc_freq is None or self.idf_drift() <= threshold:
            return False
        self._pinned_doc_freq = dict(self._doc_freq)
        self._pinned_num_docs = self._num_docs
        self._stale_docs = 0
        return True

    def _idf(self, token: str) -> float:
        if self._pinned_doc_freq is not None:
            if not self._pinned_num_docs:
                return 1.0
            df = self._pinned_doc_freq.get(token, 0)
            return math.log((1 + self._pinned_num_docs) / (1 + df)) + 1.0
        if not self._num_docs:
            return 1.0
        df = self._doc_freq.get(token, 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    # -------------------------------------------------------------- vectors
    def _unit_vector(self, key: str) -> np.ndarray:
        vec = self._token_vectors.get(key)
        if vec is None:
            # repro-lint: disable=R008 — seeded, content-addressed stream whose
            # identity is pinned by the frozen prep-parity baseline
            # (tests/test_prep_batch.py); rederiving via derive_rng would shift
            # every committed embedding-dependent golden
            rng = np.random.default_rng(stable_hash(f"emb:{self.seed}:{key}"))
            vec = rng.standard_normal(self.dim).astype(np.float32)
            vec /= np.linalg.norm(vec)
            self._token_vectors[key] = vec
        return vec

    def embed(self, text: str) -> np.ndarray:
        """Embed ``text`` into a unit-norm float32 vector."""
        tokens = self.tokenizer.content_tokens(text)
        acc = np.zeros(self.dim, dtype=np.float32)
        if not tokens:
            return self._unit_vector("<empty>").copy()
        for token in tokens:
            weight = self._idf(token)
            acc += weight * self._unit_vector(token)
            if self.stem_weight > 0 and len(token) > self.stem_len:
                acc += weight * self.stem_weight * self._unit_vector(token[: self.stem_len])
        if self.bigram_weight > 0:
            for left, right in zip(tokens, tokens[1:]):
                acc += self.bigram_weight * self._unit_vector(f"{left}##{right}")
        return normalize(acc).astype(np.float32)

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts; returns an ``(n, dim)`` float32 matrix.

        Bit-identical to stacking per-text :meth:`embed` calls, but batched:
        one tokenizer pass, one IDF lookup per distinct token, one
        ``_unit_vector`` lookup per distinct key, and the accumulation runs
        as column-slab adds over texts sorted by contribution count. Each
        text's contributions are applied in the same order as :meth:`embed`
        (rows are independent, and float32 elementwise ops do not
        reassociate across rows), so every intermediate rounding step
        matches the sequential path exactly.
        """
        if not texts:
            return np.zeros((0, self.dim), dtype=np.float32)
        token_lists = self.tokenizer.content_tokens_many(list(texts))
        n = len(token_lists)
        key_ids: Dict[str, int] = {}
        key_of = key_ids.setdefault
        idf_cache: Dict[str, float] = {}
        stem_weight = self.stem_weight
        stem_len = self.stem_len
        bigram_weight = self.bigram_weight
        contrib_ids: List[List[int]] = []
        contrib_weights: List[List[float]] = []
        for tokens in token_lists:
            ids: List[int] = []
            weights: List[float] = []
            for token in tokens:
                weight = idf_cache.get(token)
                if weight is None:
                    weight = idf_cache[token] = self._idf(token)
                ids.append(key_of(token, len(key_ids)))
                weights.append(weight)
                if stem_weight > 0 and len(token) > stem_len:
                    ids.append(key_of(token[:stem_len], len(key_ids)))
                    weights.append(weight * stem_weight)
            if bigram_weight > 0:
                for left, right in zip(tokens, tokens[1:]):
                    ids.append(key_of(f"{left}##{right}", len(key_ids)))
                    weights.append(bigram_weight)
            contrib_ids.append(ids)
            contrib_weights.append(weights)
        table = np.empty((len(key_ids), self.dim), dtype=np.float32)
        for key, kid in key_ids.items():
            table[kid] = self._unit_vector(key)
        counts = np.array([len(ids) for ids in contrib_ids], dtype=np.int64)
        order = np.argsort(-counts, kind="stable")
        sorted_counts = counts[order]
        flat_ids = np.array(
            [i for ids in contrib_ids for i in ids], dtype=np.int64
        )
        # Weights are float64 in the scalar path until they hit the float32
        # accumulator; NEP 50 converts them to float32 at that point, so
        # pre-casting the weight array reproduces the same rounding.
        flat_weights = np.array(
            [w for weights in contrib_weights for w in weights], dtype=np.float32
        )
        offsets = np.zeros(n, dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        sorted_offsets = offsets[order]
        acc = np.zeros((n, self.dim), dtype=np.float32)
        max_contribs = int(sorted_counts[0]) if n else 0
        active = n
        for step in range(max_contribs):
            # Texts are sorted by contribution count, so the rows still
            # needing a step-th add form a shrinking prefix.
            while active > 0 and sorted_counts[active - 1] <= step:
                active -= 1
            if active == 0:
                break
            src = sorted_offsets[:active] + step
            acc[:active] += (
                flat_weights[src][:, None] * table[flat_ids[src]]
            )
        out = np.empty((n, self.dim), dtype=np.float32)
        out[order] = acc
        empty_vec: Optional[np.ndarray] = None
        for i, tokens in enumerate(token_lists):
            if tokens:
                out[i] = normalize(out[i]).astype(np.float32)
            else:
                if empty_vec is None:
                    empty_vec = self._unit_vector("<empty>")
                out[i] = empty_vec
        return out

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two texts under this model."""
        return float(np.dot(self.embed(a), self.embed(b)))


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two (not necessarily normalized) vectors."""
    na, nb = float(np.linalg.norm(a)), float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def top_k_cosine(
    query: np.ndarray, matrix: np.ndarray, k: int, *, exclude: Optional[set] = None
) -> List[tuple]:
    """Exact top-k rows of ``matrix`` by cosine similarity to ``query``.

    Returns ``(row_index, score)`` pairs sorted by descending score. Assumes
    rows and query are already unit-normalized (dot == cosine).
    """
    if matrix.shape[0] == 0 or k <= 0:
        return []
    scores = matrix @ query
    if exclude:
        scores = scores.copy()
        for idx in exclude:
            scores[idx] = -np.inf
    k = min(k, matrix.shape[0])
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top])]
    return [(int(i), float(scores[i])) for i in top if np.isfinite(scores[i])]
