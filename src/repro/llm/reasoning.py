"""Reasoning strategies over a simulated LLM (Figure 1 "X-of-Thought").

Implements the test-time-compute patterns the architecture diagram names:

* :func:`self_consistency` — sample the same prompt at several
  temperatures and majority-vote the answers (Wang et al.'s
  self-consistency); buys accuracy with extra calls, which is exactly the
  accuracy/cost dial the tutorial's cost discussion needs;
* :func:`chain_of_questions` — decompose-then-answer (the native-CoT
  analogue for our factual tasks): break a multi-hop question into hops
  via the ``decompose`` skill, answer each hop, and substitute forward;
* :func:`best_of_n_grounded` — generate N candidates and pick the one
  supported by the provided context (a verifier-guided best-of-n).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..errors import ConfigError
from .model import SimLLM
from .protocol import Prompt

ABSTAIN = "unknown"


@dataclass
class ReasoningResult:
    """Answer plus the deliberation that produced it."""

    answer: str
    votes: Counter = field(default_factory=Counter)
    calls: int = 0
    agreement: float = 0.0  # winning-vote share

    @property
    def abstained(self) -> bool:
        return self.answer.strip().lower() == ABSTAIN


def self_consistency(
    llm: SimLLM,
    prompt: Prompt,
    *,
    samples: int = 5,
    temperature_step: float = 0.35,
    tag: str = "self-consistency",
) -> ReasoningResult:
    """Majority vote over temperature-diversified samples.

    Abstentions never win while any sample committed to an answer — a
    model that knows the fact in most samples should say it.
    """
    if samples < 1:
        raise ConfigError("samples must be >= 1")
    rendered = prompt.render()
    votes: Counter = Counter()
    for i in range(samples):
        response = llm.generate(
            rendered, temperature=i * temperature_step, tag=tag
        )
        votes[response.text.strip()] += 1
    committed = {a: c for a, c in votes.items() if a.lower() != ABSTAIN}
    pool = committed or dict(votes)
    winner = max(sorted(pool), key=lambda a: pool[a])
    return ReasoningResult(
        answer=winner,
        votes=votes,
        calls=samples,
        agreement=pool[winner] / samples,
    )


def chain_of_questions(
    llm: SimLLM,
    question: str,
    *,
    context_provider: Optional[Callable[[str], str]] = None,
    max_hops: int = 3,
    tag: str = "chain",
) -> ReasoningResult:
    """Decompose-then-answer: native CoT for multi-hop factual questions.

    ``context_provider(sub_question) -> str`` optionally grounds each hop
    (pass a retriever closure for ReAct-style grounded chains).
    """
    decomposition = llm.generate(
        Prompt(task="decompose", input=question).render(), tag=tag
    )
    steps = [line.strip() for line in decomposition.text.splitlines() if line.strip()]
    steps = steps[:max_hops] or [question]
    calls = 1
    answer = ABSTAIN
    for i, step in enumerate(steps):
        resolved = step.replace("{answer1}", answer if i else "")
        context = context_provider(resolved) if context_provider else ""
        response = llm.generate(
            Prompt(
                task="qa",
                instruction="Answer using the provided context." if context else "",
                context=context,
                input=resolved,
            ).render(),
            tag=tag,
        )
        calls += 1
        answer = response.text
        if answer.strip().lower() == ABSTAIN:
            break
    return ReasoningResult(answer=answer, calls=calls, agreement=1.0)


def best_of_n_grounded(
    llm: SimLLM,
    prompt: Prompt,
    *,
    samples: int = 4,
    temperature_step: float = 0.4,
    tag: str = "best-of-n",
) -> ReasoningResult:
    """Generate N candidates; return the first literally supported by the
    prompt's context (verifier-guided selection), else the majority."""
    if not prompt.context.strip():
        raise ConfigError("best_of_n_grounded requires a context to verify against")
    haystack = prompt.context.lower()
    rendered = prompt.render()
    votes: Counter = Counter()
    supported: List[str] = []
    for i in range(samples):
        text = llm.generate(rendered, temperature=i * temperature_step, tag=tag).text.strip()
        votes[text] += 1
        if text.lower() != ABSTAIN and text.lower() in haystack:
            supported.append(text)
    if supported:
        winner = Counter(supported).most_common(1)[0][0]
    else:
        winner = max(sorted(votes), key=lambda a: votes[a])
    return ReasoningResult(
        answer=winner, votes=votes, calls=samples, agreement=votes[winner] / samples
    )
