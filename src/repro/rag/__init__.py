"""Retrieval-augmented generation: chunking, retrieval, reranking, pipelines."""

from .chunking import Chunk, chunk_corpus, fixed_chunks, semantic_chunks, sentence_chunks, split_sentences
from .pipeline import RAGAnswer, RAGPipeline, retrieval_recall
from .reranker import EmbeddingReranker, LLMReranker
from .retriever import BM25Retriever, DenseRetriever, HybridRetriever, RetrievedChunk, Retriever

__all__ = [
    "Chunk",
    "chunk_corpus",
    "fixed_chunks",
    "semantic_chunks",
    "sentence_chunks",
    "split_sentences",
    "RAGAnswer",
    "RAGPipeline",
    "retrieval_recall",
    "EmbeddingReranker",
    "LLMReranker",
    "BM25Retriever",
    "DenseRetriever",
    "HybridRetriever",
    "RetrievedChunk",
    "Retriever",
]
