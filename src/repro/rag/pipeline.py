"""End-to-end RAG pipelines: single-shot, iterative multi-hop, reflective.

Implements the RAG designs the tutorial surveys (§2.2.1):

* :meth:`RAGPipeline.answer` — retrieve-then-read, optionally reranked;
* :meth:`RAGPipeline.answer_iterative` — ReAct-style iterative retrieval
  for multi-hop questions: decompose, answer hop 1, substitute, answer
  hop 2 [65];
* :meth:`RAGPipeline.answer_reflective` — Self-RAG-style reflection [8]:
  check whether the draft answer is actually supported by the retrieved
  evidence, and retry with a wider net (or abstain) when it is not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..data.documents import Document
from ..llm.embedding import EmbeddingModel
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from ..vector.base import VectorIndex
from .chunking import Chunk, chunk_corpus
from .reranker import EmbeddingReranker, LLMReranker
from .retriever import DenseRetriever, RetrievedChunk, Retriever


@dataclass
class RAGAnswer:
    """An answer with its supporting evidence and call accounting."""

    question: str
    text: str
    retrieved: List[RetrievedChunk] = field(default_factory=list)
    hops: int = 1
    reflected: bool = False
    supported: Optional[bool] = None
    sub_answers: List[str] = field(default_factory=list)

    @property
    def abstained(self) -> bool:
        return self.text.strip().lower() == "unknown"


class RAGPipeline:
    """Retrieval-augmented answering over a document corpus."""

    def __init__(
        self,
        llm: SimLLM,
        retriever: Retriever,
        *,
        reranker: Optional[object] = None,
        context_chunks: int = 4,
    ) -> None:
        self.llm = llm
        self.retriever = retriever
        self.reranker = reranker
        self.context_chunks = context_chunks

    # --------------------------------------------------------- construction
    @classmethod
    def from_documents(
        cls,
        llm: SimLLM,
        docs: Sequence[Document],
        *,
        embedder: Optional[EmbeddingModel] = None,
        chunk_strategy: str = "sentence",
        rerank: Optional[str] = None,
        context_chunks: int = 4,
        index: Optional[VectorIndex] = None,
    ) -> "RAGPipeline":
        """Build a dense-retrieval pipeline over ``docs``.

        ``rerank`` may be None, ``"embedding"`` or ``"llm"``.
        """
        embedder = embedder or llm.embedder
        retriever = DenseRetriever(embedder, index=index)
        chunks = chunk_corpus(list(docs), strategy=chunk_strategy, embedder=embedder)
        retriever.add(chunks)
        reranker: Optional[object] = None
        if rerank == "embedding":
            reranker = EmbeddingReranker(embedder)
        elif rerank == "llm":
            reranker = LLMReranker(llm)
        return cls(llm, retriever, reranker=reranker, context_chunks=context_chunks)

    # ------------------------------------------------------------ retrieval
    def _retrieve(self, query: str, k: Optional[int] = None) -> List[RetrievedChunk]:
        k = k or self.context_chunks
        fetch = k * 3 if self.reranker is not None else k
        candidates = self.retriever.retrieve(query, k=fetch)
        if self.reranker is not None:
            candidates = self.reranker.rerank(query, candidates, k=k)
        return candidates[:k]

    def _context_text(self, retrieved: List[RetrievedChunk]) -> str:
        return "\n".join(rc.chunk.text for rc in retrieved)

    # ------------------------------------------------------------ answering
    def answer_closed_book(self, question: str) -> RAGAnswer:
        """No-retrieval baseline: the model's parametric memory alone."""
        response = self.llm.generate(
            Prompt(task="qa", input=question).render(), tag="rag-closed"
        )
        return RAGAnswer(question=question, text=response.text, retrieved=[])

    def answer(self, question: str, *, k: Optional[int] = None) -> RAGAnswer:
        """Single-shot retrieve-then-read."""
        retrieved = self._retrieve(question, k)
        prompt = Prompt(
            task="qa",
            instruction="Answer using the provided context.",
            context=self._context_text(retrieved),
            input=question,
        )
        response = self.llm.generate(prompt.render(), tag="rag")
        return RAGAnswer(question=question, text=response.text, retrieved=retrieved)

    def answer_iterative(
        self, question: str, *, max_hops: int = 2, k: Optional[int] = None
    ) -> RAGAnswer:
        """Decompose-and-chain retrieval for multi-hop questions.

        Falls back to single-shot behaviour when the model's decomposition
        returns a single question.
        """
        decomposition = self.llm.generate(
            Prompt(task="decompose", input=question).render(), tag="rag-decompose"
        )
        sub_questions = [q.strip() for q in decomposition.text.splitlines() if q.strip()]
        sub_questions = sub_questions[:max_hops]
        if len(sub_questions) <= 1:
            return self.answer(question, k=k)

        sub_answers: List[str] = []
        all_retrieved: List[RetrievedChunk] = []
        current_answer = ""
        for sub_q in sub_questions:
            resolved = sub_q.replace("{answer1}", current_answer)
            retrieved = self._retrieve(resolved, k)
            all_retrieved.extend(retrieved)
            prompt = Prompt(
                task="qa",
                instruction="Answer using the provided context.",
                context=self._context_text(retrieved),
                input=resolved,
            )
            response = self.llm.generate(prompt.render(), tag="rag-hop")
            current_answer = response.text
            sub_answers.append(current_answer)
            if response.abstained:
                break
        return RAGAnswer(
            question=question,
            text=current_answer,
            retrieved=all_retrieved,
            hops=len(sub_answers),
            sub_answers=sub_answers,
        )

    def answer_reflective(
        self, question: str, *, k: Optional[int] = None, widen_factor: int = 3
    ) -> RAGAnswer:
        """Self-RAG-style verification loop.

        After drafting an answer, check that the answer string is literally
        supported by the retrieved evidence; if not, retry with a
        ``widen_factor``× wider retrieval, and abstain if the wider pass is
        still unsupported. Trades extra retrieval for fewer hallucinated
        answers.
        """
        k = k or self.context_chunks
        draft = self.answer(question, k=k)
        if self._supported(draft):
            draft.reflected, draft.supported = True, True
            return draft
        retry = self.answer(question, k=k * widen_factor)
        retry.reflected = True
        if self._supported(retry):
            retry.supported = True
            return retry
        return RAGAnswer(
            question=question,
            text="unknown",
            retrieved=retry.retrieved,
            reflected=True,
            supported=False,
        )

    @staticmethod
    def _supported(answer: RAGAnswer) -> bool:
        """Is the answer string present in the retrieved evidence?"""
        if answer.abstained:
            return False
        needle = answer.text.strip().lower()
        if not needle:
            return False
        return any(needle in rc.chunk.text.lower() for rc in answer.retrieved)


def retrieval_recall(
    retrieved: List[RetrievedChunk], gold_doc_ids: Sequence[str]
) -> float:
    """Fraction of gold documents present among retrieved chunks."""
    if not gold_doc_ids:
        return 0.0
    got = {rc.chunk.doc_id for rc in retrieved}
    return sum(1 for d in gold_doc_ids if d in got) / len(gold_doc_ids)
