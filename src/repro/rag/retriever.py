"""Retrievers: dense (vector index), sparse (BM25), and hybrid fusion.

Dense retrieval is the paper's default (§2.2.1: "query and documents are
converted into embedding vectors, followed by a nearest neighbor search");
BM25 and reciprocal-rank-fusion hybrid are the standard complements.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..llm.tokenizer import Tokenizer, default_tokenizer
from ..vector.base import VectorIndex
from ..vector.flat import FlatIndex
from .chunking import Chunk


@dataclass(frozen=True)
class RetrievedChunk:
    """One retrieval result."""

    chunk: Chunk
    score: float


class Retriever:
    """Interface: ``retrieve(query, k) -> List[RetrievedChunk]``."""

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        raise NotImplementedError


class DenseRetriever(Retriever):
    """Embeds chunks into a vector index; queries by cosine ANN/exact search."""

    def __init__(
        self,
        embedder: EmbeddingModel,
        *,
        index: Optional[VectorIndex] = None,
    ) -> None:
        self.embedder = embedder
        self.index = index or FlatIndex(embedder.dim)
        self._chunks: Dict[str, Chunk] = {}

    def add(self, chunks: Sequence[Chunk]) -> None:
        new = [c for c in chunks if c.chunk_id not in self._chunks]
        if not new:
            return
        vectors = self.embedder.embed_batch([c.text for c in new])
        self.index.add([c.chunk_id for c in new], vectors)
        for chunk in new:
            self._chunks[chunk.chunk_id] = chunk

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        hits = self.index.search(self.embedder.embed(query), k=k)
        return [
            RetrievedChunk(chunk=self._chunks[h.id], score=h.score)
            for h in hits
            if h.id in self._chunks
        ]

    def retrieve_many(self, queries: Sequence[str], k: int = 5) -> List[List[RetrievedChunk]]:
        """Batched :meth:`retrieve`: embeds all queries at once and answers
        them with a single :meth:`VectorIndex.search_many` call."""
        if not queries:
            return []
        vectors = self.embedder.embed_batch(list(queries))
        per_query = self.index.search_many(vectors, k=k)
        return [
            [
                RetrievedChunk(chunk=self._chunks[h.id], score=h.score)
                for h in hits
                if h.id in self._chunks
            ]
            for hits in per_query
        ]

    def __len__(self) -> int:
        return len(self._chunks)


class BM25Retriever(Retriever):
    """Okapi BM25 over chunk token bags."""

    def __init__(
        self,
        *,
        k1: float = 1.5,
        b: float = 0.75,
        tokenizer: Optional[Tokenizer] = None,
    ) -> None:
        if k1 <= 0 or not 0 <= b <= 1:
            raise ConfigError("invalid BM25 parameters")
        self.k1 = k1
        self.b = b
        self.tokenizer = tokenizer or default_tokenizer()
        self._chunks: List[Chunk] = []
        self._term_freqs: List[Counter] = []
        self._doc_freq: Counter = Counter()
        self._lengths: List[int] = []

    def add(self, chunks: Sequence[Chunk]) -> None:
        # One tokenizer pass over the whole batch; per-chunk stats and the
        # corpus document frequencies come out identical to the old
        # chunk-at-a-time loop.
        token_lists = self.tokenizer.content_tokens_many([c.text for c in chunks])
        for chunk, tokens in zip(chunks, token_lists):
            tf = Counter(tokens)
            self._chunks.append(chunk)
            self._term_freqs.append(tf)
            self._lengths.append(len(tokens))
            self._doc_freq.update(tf.keys())

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        if not self._chunks:
            return []
        n = len(self._chunks)
        avg_len = sum(self._lengths) / n if n else 1.0
        query_terms = self.tokenizer.content_tokens(query)
        scores = [0.0] * n
        for term in query_terms:
            df = self._doc_freq.get(term, 0)
            if df == 0:
                continue
            idf = math.log(1 + (n - df + 0.5) / (df + 0.5))
            for i, tf in enumerate(self._term_freqs):
                f = tf.get(term, 0)
                if f == 0:
                    continue
                denom = f + self.k1 * (1 - self.b + self.b * self._lengths[i] / avg_len)
                scores[i] += idf * f * (self.k1 + 1) / denom
        order = sorted(range(n), key=lambda i: -scores[i])[:k]
        return [
            RetrievedChunk(chunk=self._chunks[i], score=scores[i])
            for i in order
            if scores[i] > 0
        ]

    def __len__(self) -> int:
        return len(self._chunks)


class HybridRetriever(Retriever):
    """Reciprocal-rank fusion of dense and sparse result lists."""

    def __init__(
        self,
        dense: DenseRetriever,
        sparse: BM25Retriever,
        *,
        rrf_k: int = 60,
        fetch_factor: int = 3,
    ) -> None:
        self.dense = dense
        self.sparse = sparse
        self.rrf_k = rrf_k
        self.fetch_factor = fetch_factor

    def add(self, chunks: Sequence[Chunk]) -> None:
        self.dense.add(chunks)
        self.sparse.add(chunks)

    def retrieve(self, query: str, k: int = 5) -> List[RetrievedChunk]:
        fetch = max(k * self.fetch_factor, k)
        fused: Dict[str, float] = {}
        chunk_map: Dict[str, Chunk] = {}
        for results in (
            self.dense.retrieve(query, fetch),
            self.sparse.retrieve(query, fetch),
        ):
            for rank, rc in enumerate(results):
                fused[rc.chunk.chunk_id] = fused.get(rc.chunk.chunk_id, 0.0) + 1.0 / (
                    self.rrf_k + rank + 1
                )
                chunk_map[rc.chunk.chunk_id] = rc.chunk
        order = sorted(fused, key=lambda cid: -fused[cid])[:k]
        return [RetrievedChunk(chunk=chunk_map[cid], score=fused[cid]) for cid in order]
