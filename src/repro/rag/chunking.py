"""Document chunking strategies for RAG ingestion.

The paper lists "semantic document segmentation" as a core RAG challenge
(§2.2.1). Three strategies are provided:

* :func:`fixed_chunks` — fixed token windows with overlap (the baseline);
* :func:`sentence_chunks` — sentence-aligned windows (never splits a fact
  sentence in half);
* :func:`semantic_chunks` — greedy boundary placement where adjacent
  sentences' embedding similarity drops below a threshold, approximating
  topic-based segmentation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.documents import Document
from ..errors import ConfigError
from ..llm.embedding import EmbeddingModel
from ..llm.tokenizer import Tokenizer, default_tokenizer

_SENTENCE_RE = re.compile(r"(?<=[.!?])\s+")


@dataclass(frozen=True)
class Chunk:
    """One retrievable unit with provenance back to its document."""

    chunk_id: str
    doc_id: str
    text: str
    position: int
    meta: Dict[str, object] = field(default_factory=dict)


def split_sentences(text: str) -> List[str]:
    """Split text into sentences (simple punctuation rule)."""
    return [s.strip() for s in _SENTENCE_RE.split(text.strip()) if s.strip()]


def fixed_chunks(
    doc: Document,
    *,
    chunk_tokens: int = 64,
    overlap_tokens: int = 16,
    tokenizer: Optional[Tokenizer] = None,
) -> List[Chunk]:
    """Fixed-size token windows with overlap."""
    if chunk_tokens <= 0:
        raise ConfigError("chunk_tokens must be positive")
    if not 0 <= overlap_tokens < chunk_tokens:
        raise ConfigError("overlap_tokens must be in [0, chunk_tokens)")
    tok = tokenizer or default_tokenizer()
    pieces = tok.pieces(doc.text)
    word_indices = [i for i, p in enumerate(pieces) if not p.isspace()]
    chunks: List[Chunk] = []
    step = chunk_tokens - overlap_tokens
    position = 0
    for start in range(0, max(len(word_indices), 1), step):
        window = word_indices[start : start + chunk_tokens]
        if not window:
            break
        text = "".join(pieces[window[0] : window[-1] + 1]).strip()
        if text:
            chunks.append(
                Chunk(
                    chunk_id=f"{doc.doc_id}#c{position}",
                    doc_id=doc.doc_id,
                    text=text,
                    position=position,
                    meta=dict(doc.meta),
                )
            )
            position += 1
        if start + chunk_tokens >= len(word_indices):
            break
    return chunks


def sentence_chunks(
    doc: Document,
    *,
    max_tokens: int = 64,
    tokenizer: Optional[Tokenizer] = None,
) -> List[Chunk]:
    """Sentence-aligned chunks: pack whole sentences up to ``max_tokens``."""
    tok = tokenizer or default_tokenizer()
    sentences = split_sentences(doc.text)
    chunks: List[Chunk] = []
    current: List[str] = []
    current_tokens = 0
    position = 0

    def flush() -> None:
        nonlocal current, current_tokens, position
        if current:
            chunks.append(
                Chunk(
                    chunk_id=f"{doc.doc_id}#c{position}",
                    doc_id=doc.doc_id,
                    text=" ".join(current),
                    position=position,
                    meta=dict(doc.meta),
                )
            )
            position += 1
            current, current_tokens = [], 0

    for sentence in sentences:
        n = tok.count(sentence)
        if current and current_tokens + n > max_tokens:
            flush()
        current.append(sentence)
        current_tokens += n
    flush()
    return chunks


def semantic_chunks(
    doc: Document,
    embedder: EmbeddingModel,
    *,
    similarity_threshold: float = 0.25,
    max_tokens: int = 96,
    tokenizer: Optional[Tokenizer] = None,
) -> List[Chunk]:
    """Boundary-by-topic-shift segmentation.

    A new chunk starts when the next sentence's similarity to the running
    chunk centroid falls below ``similarity_threshold`` (or the token budget
    is hit).
    """
    tok = tokenizer or default_tokenizer()
    sentences = split_sentences(doc.text)
    if not sentences:
        return []
    chunks: List[Chunk] = []
    current: List[str] = [sentences[0]]
    centroid = embedder.embed(sentences[0]).astype(np.float64)
    count = 1
    tokens = tok.count(sentences[0])
    position = 0

    def flush() -> None:
        nonlocal position
        chunks.append(
            Chunk(
                chunk_id=f"{doc.doc_id}#c{position}",
                doc_id=doc.doc_id,
                text=" ".join(current),
                position=position,
                meta=dict(doc.meta),
            )
        )
        position += 1

    for sentence in sentences[1:]:
        vec = embedder.embed(sentence)
        mean = centroid / count
        norm = np.linalg.norm(mean)
        sim = float(np.dot(vec, mean / norm)) if norm > 0 else 0.0
        n = tok.count(sentence)
        if sim < similarity_threshold or tokens + n > max_tokens:
            flush()
            current = [sentence]
            centroid = vec.astype(np.float64)
            count, tokens = 1, n
        else:
            current.append(sentence)
            centroid += vec
            count += 1
            tokens += n
    flush()
    return chunks


def chunk_corpus(
    docs: List[Document],
    *,
    strategy: str = "sentence",
    embedder: Optional[EmbeddingModel] = None,
    **kwargs: object,
) -> List[Chunk]:
    """Chunk a corpus with the named strategy ('fixed'|'sentence'|'semantic')."""
    chunks: List[Chunk] = []
    for doc in docs:
        if strategy == "fixed":
            chunks.extend(fixed_chunks(doc, **kwargs))
        elif strategy == "sentence":
            chunks.extend(sentence_chunks(doc, **kwargs))
        elif strategy == "semantic":
            if embedder is None:
                raise ConfigError("semantic chunking requires an embedder")
            chunks.extend(semantic_chunks(doc, embedder, **kwargs))
        else:
            raise ConfigError(f"unknown chunking strategy {strategy!r}")
    return chunks
