"""Rerankers: lift precision of a candidate list before it enters the prompt.

The paper names reranking as one of the four RAG challenges (§2.2.1). Two
implementations:

* :class:`EmbeddingReranker` — cheap cross-similarity rescoring (bi-encoder
  style, no LLM calls);
* :class:`LLMReranker` — asks the model to order candidates (cross-encoder /
  listwise style; costs one call, but inherits the model's judgment).
"""

from __future__ import annotations

from typing import List, Optional

from ..llm.embedding import EmbeddingModel
from ..llm.model import SimLLM
from ..llm.protocol import Prompt
from .retriever import RetrievedChunk


class EmbeddingReranker:
    """Re-score candidates by query-chunk cosine (deterministic, free)."""

    def __init__(self, embedder: EmbeddingModel) -> None:
        self.embedder = embedder

    def rerank(
        self, query: str, candidates: List[RetrievedChunk], k: Optional[int] = None
    ) -> List[RetrievedChunk]:
        import numpy as np

        if not candidates:
            return []
        qvec = self.embedder.embed(query)
        rescored = [
            RetrievedChunk(
                chunk=rc.chunk,
                score=float(np.dot(qvec, self.embedder.embed(rc.chunk.text))),
            )
            for rc in candidates
        ]
        rescored.sort(key=lambda rc: -rc.score)
        return rescored[: k or len(rescored)]


class LLMReranker:
    """Listwise LLM reranking via the ``rank`` skill."""

    def __init__(self, llm: SimLLM) -> None:
        self.llm = llm

    def rerank(
        self, query: str, candidates: List[RetrievedChunk], k: Optional[int] = None
    ) -> List[RetrievedChunk]:
        if not candidates:
            return []
        context = "\n".join(
            f"[{i}] {rc.chunk.text}" for i, rc in enumerate(candidates)
        )
        prompt = Prompt(
            task="rank",
            instruction="Order the passages by relevance to the query.",
            context=context,
            input=query,
        )
        response = self.llm.generate(prompt.render(), tag="rerank")
        order: List[int] = []
        for part in response.text.split(","):
            part = part.strip()
            if part.isdigit() and int(part) < len(candidates):
                idx = int(part)
                if idx not in order:
                    order.append(idx)
        for i in range(len(candidates)):  # backfill anything the model dropped
            if i not in order:
                order.append(i)
        ranked = [
            RetrievedChunk(chunk=candidates[i].chunk, score=float(len(order) - pos))
            for pos, i in enumerate(order)
        ]
        return ranked[: k or len(ranked)]
