"""Small shared utilities: stable hashing, seeded RNG derivation, timers.

The whole library is deterministic: every stochastic component derives its
randomness from an explicit seed through :func:`derive_rng`, and every
content-addressed structure uses :func:`stable_hash` (Python's builtin
``hash`` is salted per process and therefore unusable for reproducibility).
"""

from __future__ import annotations

import hashlib
import itertools
import struct
from typing import Iterable, Iterator, List, Sequence, TypeVar

import numpy as np

from .errors import ConfigError

T = TypeVar("T")


def stable_hash(text: str, *, bits: int = 64) -> int:
    """Return a process-stable unsigned integer hash of ``text``.

    Uses blake2b truncated to ``bits`` (must be a multiple of 8, at most 512).
    """
    if bits % 8 or not 8 <= bits <= 512:
        raise ConfigError(f"bits must be a multiple of 8 in [8, 512], got {bits}")
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=bits // 8).digest()
    return int.from_bytes(digest, "big")


def stable_float(text: str) -> float:
    """Map ``text`` deterministically to a float in [0, 1)."""
    return stable_hash(text, bits=64) / 2**64


def derive_rng(seed: int, *names: object) -> np.random.Generator:
    """Derive an independent RNG stream from ``seed`` and a name path.

    ``derive_rng(7, "dedup", 3)`` always yields the same stream, and streams
    with different name paths are statistically independent.
    """
    material = ":".join([str(seed)] + [str(n) for n in names])
    stream_seed = stable_hash(material, bits=64)
    return np.random.default_rng(stream_seed)


def derive_seed(seed: int, *names: object) -> int:
    """Derive a child integer seed from ``seed`` and a name path."""
    material = ":".join([str(seed)] + [str(n) for n in names])
    return stable_hash(material, bits=64)


def batched(items: Sequence[T], batch_size: int) -> Iterator[List[T]]:
    """Yield successive ``batch_size``-sized chunks of ``items``."""
    if batch_size <= 0:
        raise ConfigError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, len(items), batch_size):
        yield list(items[start : start + batch_size])


def pairwise(iterable: Iterable[T]) -> Iterator[tuple]:
    """Yield consecutive overlapping pairs: (a, b), (b, c), ..."""
    first, second = itertools.tee(iterable)
    next(second, None)
    return zip(first, second)


def normalize(vector: np.ndarray) -> np.ndarray:
    """Return the L2-normalized copy of ``vector`` (zero vectors unchanged)."""
    norm = float(np.linalg.norm(vector))
    if norm == 0.0:
        return vector.copy()
    return vector / norm


def pack_floats(values: Sequence[float]) -> bytes:
    """Pack floats into little-endian float32 bytes (for checkpoint formats)."""
    return struct.pack(f"<{len(values)}f", *values)


def unpack_floats(data: bytes) -> List[float]:
    """Inverse of :func:`pack_floats`."""
    count = len(data) // 4
    return list(struct.unpack(f"<{count}f", data))


def human_bytes(num_bytes: float) -> str:
    """Render a byte count as a human-readable string ('1.5 GiB')."""
    size = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(size) < 1024.0:
            return f"{size:.1f} {unit}"
        size /= 1024.0
    return f"{size:.1f} PiB"


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values; raises on empty or non-positive."""
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    arr = np.asarray(values, dtype=float)
    if np.any(arr <= 0):
        raise ConfigError("geometric_mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``; raises on empty input."""
    if not values:
        raise ConfigError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))
