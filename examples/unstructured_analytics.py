"""Unstructured-data analytics: extraction strategies and semantic operators.

Demonstrates the LLM4Data techniques of paper §2.2.2 on a company-profile
corpus: Evaporate-style function synthesis vs direct LLM extraction, the
point/aggregate query router, and LOTUS-style semantic operators with the
cascade optimizer.

Run:  python examples/unstructured_analytics.py
"""

from repro.data import DocumentRenderer, World
from repro.llm import make_llm
from repro.unstructured import (
    DirectExtractor,
    DocumentAnalytics,
    EvaporateExtractor,
    SemanticOperators,
    extraction_accuracy,
)

ATTRS = ["headquarters", "industry", "founded", "ceo", "revenue_musd"]


def main() -> None:
    world = World()
    docs = DocumentRenderer(world).render_corpus(entity_types=["company"])
    llm = make_llm("sim-base", world=world, seed=21)
    gold = {
        (c.name.lower(), a): c.attributes[a]
        for c in world.companies
        for a in ATTRS
    }

    # --- 1. Schema extraction: LLM-per-document vs Evaporate.
    direct = DirectExtractor(llm).extract(docs, "company", ATTRS)
    evaporate = EvaporateExtractor(llm).extract(docs, "company", ATTRS)
    print("[1] schema extraction over", len(docs), "documents:")
    for name, result in (("direct", direct), ("evaporate", evaporate)):
        accuracy = extraction_accuracy(result.table, gold, ATTRS)
        print(f"    {name:10s} accuracy={accuracy:.3f} "
              f"llm_calls={result.llm_calls} usd=${result.usd:.2f}")
    print("    (direct cost grows with the corpus; evaporate's is constant)")

    # --- 2. Point vs aggregation queries through one router.
    analytics = DocumentAnalytics(llm, docs, schema={"company": ATTRS})
    for question in (
        f"Who is the CEO of {world.companies[0].name}?",
        "how many companies where industry == biotech",
        "average revenue_musd of companies where founded > 2000",
    ):
        answer = analytics.ask(question)
        print(f"[2] [{answer.kind}] {question!r} -> {answer.answer!r} "
              f"({answer.llm_calls} calls)")

    # --- 3. Semantic operators with the cascade optimizer.
    records = [
        {"name": c.name, **c.attributes, "text": doc.text}
        for c, doc in zip(world.companies, docs)
    ]
    ops = SemanticOperators(llm)
    kept_full, stats_full = ops.sem_filter(records, "revenue_musd > 20000")
    kept_cascade, stats_cascade = ops.sem_filter(
        records, "revenue_musd > 20000", cascade=True
    )
    print(f"[3] sem_filter: full-LLM kept {len(kept_full)} "
          f"({stats_full.llm_calls} calls); cascade kept {len(kept_cascade)} "
          f"({stats_cascade.llm_calls} calls, "
          f"{stats_cascade.rule_decisions} rule decisions)")

    top, stats_top = ops.sem_topk(records, "largest aerospace manufacturer", k=3)
    print(f"[3] sem_topk (tournament, {stats_top.llm_calls} calls): "
          f"{[r['name'] for r in top]}")

    counts, _ = ops.sem_group_count(
        records[:20], classes=["aerospace", "biotech", "finance"]
    )
    print(f"[3] sem_group_count over 20 records: {counts}")


if __name__ == "__main__":
    main()
