"""Extensions tour: the remaining Figure-1 boxes and life-cycle stages.

Covers NL2Viz, query rewriting with equivalence verification, LLM
response caching, X-of-Thought reasoning, SFT/RLHF data preparation, and
the visual modality with a VisualQA tool.

Run:  python examples/extensions_tour.py
"""

from repro.data import ImageRenderer, VisualQAModel, World, classification_accuracy
from repro.data.documents import DocumentRenderer, extract_stated_facts
from repro.datalake import DataLake, NL2VizEngine
from repro.dbtasks import QueryRewriter
from repro.llm import CachedLLM, Prompt, make_llm, self_consistency
from repro.prep import (
    InstructionGenerator,
    PreferencePairBuilder,
    RewardModel,
    filter_sft_pairs,
)


def main() -> None:
    world = World()
    lake = DataLake.from_world(world)
    tables = {a.name: a.table for a in lake.by_modality("table")}
    llm = make_llm("sim-base", world=world, seed=51)

    # --- 1. NL2Viz: question -> validated chart spec -> ASCII chart.
    viz = NL2VizEngine(llm, tables)
    result = viz.ask("plot average revenue_musd of companies by industry")
    print("[1] NL2Viz:")
    print("    " + result.chart.replace("\n", "\n    "))

    # --- 2. Query rewriting with strict equivalence verification.
    rewriter = QueryRewriter(tables, llm, verify=True)
    for sql in (
        "SELECT DISTINCT name FROM companies",       # redundant -> rewritten
        "SELECT DISTINCT industry FROM companies",   # load-bearing -> kept
    ):
        outcome = rewriter.rewrite_with_llm(sql)
        verdict = "accepted" if outcome.accepted else "rejected"
        print(f"[2] rewrite {sql!r}\n      -> {outcome.proposal!r} "
              f"[{verdict}, equivalent={outcome.equivalent}, "
              f"{outcome.speedup:.2f}x cheaper]")

    # --- 3. Response caching on repeat traffic.
    cached = CachedLLM(llm, semantic_threshold=0.99)
    question = Prompt(task="qa", input="Where is Acu Corp headquartered?")
    for _ in range(5):
        cached.generate(question.render())
    print(f"[3] cache after 5 identical calls: hit_rate={cached.stats.hit_rate:.0%} "
          f"saved=${cached.stats.saved_usd:.3f}")

    # --- 4. X-of-Thought: self-consistency voting.
    voted = self_consistency(llm, question, samples=5)
    print(f"[4] self-consistency: {voted.answer!r} "
          f"(agreement {voted.agreement:.0%} over {voted.calls} samples)")

    # --- 5. SFT + RLHF data preparation.
    grounding = {
        fact.key(): fact.value
        for doc in DocumentRenderer(world, seed=51).render_corpus()
        for fact in extract_stated_facts(doc.text)
    }
    small = make_llm("sim-small", world=world, seed=51)
    pairs = InstructionGenerator(world, small, seed=51).generate(60)
    kept, drops = filter_sft_pairs(pairs, grounding_facts=grounding)
    print(f"[5] SFT prep: {len(pairs)} generated -> {len(kept)} kept "
          f"(dropped: {drops})")
    prefs = PreferencePairBuilder(small, samples=5, seed=51).build(pairs)
    if prefs:
        reward = RewardModel(embedder=small.embedder, seed=51).fit(prefs)
        print(f"    RLHF: {len(prefs)} preference pairs; reward-model "
              f"ranking accuracy {reward.ranking_accuracy(prefs):.0%}")

    # --- 6. Database tasks: tuning, diagnosis, plan selection.
    from repro.dbtasks import (
        ConfigurationAdvisor,
        DBConfig,
        JoinQuery,
        LLMDiagnoser,
        LLMPlanSelector,
        MetricsGenerator,
        SimulatedDB,
        Workload,
        detect_anomalies,
    )

    workload_spec = Workload(read_fraction=0.85, working_set_mb=4096, concurrency=48)
    db = SimulatedDB(workload_spec, seed=51)
    start = DBConfig(buffer_pool_mb=256, worker_threads=4)
    base = db.throughput(start)
    _, tuned, _ = ConfigurationAdvisor(db, llm=llm, seed=51).tune(start, budget=6)
    print(f"[6] config advisor: {base:.0f} -> {tuned:.0f} tx/s in 6 benchmarks")
    trace = MetricsGenerator(seed=51).generate([(60, 85, "cache_thrash")])
    report = LLMDiagnoser(llm).diagnose(trace, detect_anomalies(trace)[0])
    print(f"    diagnosis: llm={report.llm_cause!r} rules={report.rule_cause!r} "
          f"(agree={report.agreed})")
    join = JoinQuery(
        left="companies", right="cities", left_on="headquarters", right_on="name",
        filter_table="cities", filter_column="country",
        filter_value=world.cities[0].attributes["country"],
    )
    pick = LLMPlanSelector(llm).select(join, tables)
    print(f"    plan selection: {pick.chosen.describe(join)} "
          f"(regret {pick.regret:.0%})")

    # --- 7. Visual modality: a VisualQA-backed lake query.
    images = ImageRenderer(world, seed=51).render_product_images()
    categories = sorted({p.attributes["category"] for p in world.products})
    vqa = VisualQAModel(categories)
    print(f"[7] VisualQA classification accuracy: "
          f"{classification_accuracy(vqa, images, world):.0%}")
    sample = images[0]
    print(f"    e.g. {sample.image_id} depicts "
          f"{vqa.classify(sample)!r} "
          f"(truth: {world.lookup(sample.subject, 'category')!r})")


if __name__ == "__main__":
    main()
