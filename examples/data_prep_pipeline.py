"""Data preparation for LLM training: the full Data4LLM prep chain.

Builds a defect-injected multi-domain corpus, runs the Data-Juicer-style
pipeline (toxicity, quality rules, line dedup, MinHash dedup), then
demonstrates selection and domain-mixture discovery — all scored by the
same downstream proxy: held-out perplexity of an n-gram model trained on
the prepared data.

Run:  python examples/data_prep_pipeline.py
"""

from repro.data.ngram import NGramLM
from repro.data.synth import CorpusBuilder, CorpusConfig, corpus_summary
from repro.prep import (
    DSIRMixer,
    GradientMixer,
    MixtureEvaluator,
    cluster_coreset,
    embed_docs,
    empirical_mixture,
    perplexity_selection,
    random_selection,
    selection_quality,
    standard_pipeline,
)


def main() -> None:
    builder = CorpusBuilder(CorpusConfig(docs_per_domain=100))
    raw = builder.build()
    eval_docs = builder.eval_set(per_domain=25)
    eval_texts = [d.text for d in eval_docs]
    print("[0] raw corpus:",
          {k: round(v, 3) for k, v in corpus_summary(raw).items()})

    # --- 1. The cleaning pipeline with per-stage tracing.
    pipeline = standard_pipeline()
    cleaned, report = pipeline.run(raw)
    print("\n[1] cleaning pipeline:")
    print("    " + report.render().replace("\n", "\n    "))
    before = NGramLM(order=2).fit(d.text for d in raw)
    after = NGramLM(order=2).fit(d.text for d in cleaned)
    print(f"    proxy perplexity: raw={before.corpus_perplexity(eval_texts):.1f} "
          f"-> cleaned={after.corpus_perplexity(eval_texts):.1f}")

    # --- 2. Data selection at a 25% budget, straight from the RAW corpus:
    # a good selector must dodge the injected garbage that random hits.
    budget = len(raw) // 4
    reference = NGramLM(order=2).fit(eval_texts)
    embeddings = embed_docs(raw)
    print(f"\n[2] selection from the raw corpus at budget {budget}/{len(raw)} "
          f"(held-out perplexity, lower is better):")
    selections = {
        "random": random_selection(raw, budget),
        "perplexity-mid": perplexity_selection(raw, budget, reference),
        "cluster-coreset": cluster_coreset(embeddings, budget),
        "clean-then-all": None,
    }
    for name, indices in selections.items():
        if name == "clean-then-all":
            ppl = NGramLM(order=2).fit(d.text for d in cleaned).corpus_perplexity(
                eval_texts
            )
            print(f"    {name:16s} ppl={ppl:.1f} ({len(cleaned)} docs)")
            continue
        ppl = selection_quality(raw, indices, eval_texts)
        print(f"    {name:16s} ppl={ppl:.1f} ({len(indices)} docs)")

    # --- 3. Domain-mixture discovery for a news+academic target.
    target = [
        d.text
        for d in builder.eval_set(
            per_domain=30, domain_weights={"news": 0.5, "academic": 0.5}
        )
    ]
    evaluator = MixtureEvaluator(cleaned, target, budget=200)
    mixtures = {
        "natural": empirical_mixture(cleaned),
        "dsir": DSIRMixer().fit(cleaned, target).discovered_mixture(cleaned, 200),
        "gradient": GradientMixer().discover(cleaned, target),
    }
    print("\n[3] domain-mixture discovery (target: news+academic):")
    for name, result in evaluator.compare(mixtures).items():
        top = sorted(result.mixture.items(), key=lambda kv: -kv[1])[:3]
        print(f"    {name:9s} target_ppl={result.target_perplexity:.1f} "
              f"top domains={[(d, round(w, 2)) for d, w in top]}")


if __name__ == "__main__":
    main()
