"""The data flywheel: a closed serve -> verify -> train loop (paper §2.4).

Each round, user traffic is served with grounded (RAG) answering, answers
are verified against the document corpus, and verified interactions are
distilled into the model's parametric knowledge — so closed-book accuracy
climbs round over round while verification keeps hallucinations out.

Run:  python examples/flywheel_demo.py
"""

from repro import DataAI, DataAIConfig
from repro.flywheel import DataFlywheel


def poisoned_fact_count(engine: DataAI) -> int:
    """How many facts in the model's memory contradict the world?"""
    wrong = 0
    for (subject, attribute), value in engine.llm.knowledge.facts.items():
        truth = engine.world.lookup(subject, attribute)
        if truth is not None and truth != value:
            wrong += 1
    return wrong


def run(verify: bool) -> None:
    engine = DataAI(DataAIConfig(model="sim-small", seed=11))
    flywheel = DataFlywheel(engine, verify=verify, questions_per_round=80)
    label = "verified" if verify else "unverified"
    print(f"\n--- flywheel ({label} training data) ---")
    print(f"{'round':>5} {'served':>7} {'verified':>9} {'learned':>8} "
          f"{'blocked':>8} {'heldout':>8} {'poisoned':>9}")
    for record in flywheel.run(6, heldout=60):
        print(f"{record.round_index:>5} {record.served:>7} {record.verified:>9} "
              f"{record.facts_learned:>8} {record.hallucinations_blocked:>8} "
              f"{record.heldout_accuracy:>8.2f} {poisoned_fact_count(engine):>9}")


def main() -> None:
    run(verify=True)
    run(verify=False)
    print("\nVerification keeps wrong facts ('poisoned') out of the model while "
          "matching the learning rate of the unfiltered loop.")


if __name__ == "__main__":
    main()
