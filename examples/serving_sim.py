"""LLM serving simulation: batching, paged KV, disaggregation, caches.

Walks the Data4LLM inference stack (paper §2.3.2) on one Poisson workload:
static vs continuous vs chunked-prefill batching, reserved vs paged KV
memory, prefill/decode disaggregation, prefix caching, and the multi-turn
hierarchical KV store.

Run:  python examples/serving_sim.py
"""

import copy

from repro.inference import (
    SLO,
    ContinuousBatchScheduler,
    PagedAllocator,
    PrefixCacheSimulator,
    ReservedAllocator,
    ServingEngine,
    StaticBatchScheduler,
    multi_turn_workload,
    poisson_workload,
    shared_prefix_workload,
    simulate_multiturn,
    summarize,
    sweep_splits,
)


def main() -> None:
    slo = SLO(ttft_s=1.0, tbt_s=0.05)
    base = poisson_workload(rate_rps=8, duration_s=60, seed=1)
    print(f"workload: {len(base)} requests over 60s")

    # --- 1. Batching policies.
    print("\n[1] batching policy comparison:")
    schedulers = [
        ("static-16", StaticBatchScheduler(batch_size=16)),
        ("continuous", ContinuousBatchScheduler(max_batch=64)),
        ("chunked-256", ContinuousBatchScheduler(max_batch=64, chunk_tokens=256)),
    ]
    for name, scheduler in schedulers:
        requests = copy.deepcopy(base)
        ServingEngine(scheduler).run(requests)
        print(f"    {name:12s} {summarize(requests, slo=slo).row()}")

    # --- 2. KV memory management at fixed capacity.
    print("\n[2] reserved vs paged KV (same 200k-token HBM):")
    allocators = [
        ("reserved", ReservedAllocator(200_000, max_seq_len=9216)),
        ("paged", PagedAllocator(200_000, block_size=16)),
    ]
    for name, allocator in allocators:
        requests = copy.deepcopy(base)
        ServingEngine(
            ContinuousBatchScheduler(max_batch=128), allocator=allocator
        ).run(requests)
        report = summarize(requests, slo=slo)
        print(f"    {name:9s} ttft_p99={report.ttft_p99:.2f}s "
              f"mean_waste={allocator.stats.mean_waste_fraction:.0%}")

    # --- 3. Prefill/decode disaggregation on 4 GPUs.
    print("\n[3] colocated vs disaggregated (4 GPUs, joint TTFT+TBT SLO):")
    heavy = poisson_workload(rate_rps=14, duration_s=40, seed=2)
    for name, report in sweep_splits(heavy, 4, slo=SLO(ttft_s=1.0, tbt_s=0.04)):
        print(f"    {name:14s} goodput={report.goodput_rps:.2f} req/s "
              f"slo={report.slo_attainment:.0%}")

    # --- 4. Prefix caching for shared system prompts.
    shared = shared_prefix_workload(
        rate_rps=6, duration_s=60, num_prefixes=4, prefix_tokens=800, seed=3
    )
    report = PrefixCacheSimulator(capacity_tokens=16_384).replay(shared)
    print(f"\n[4] prefix cache: hit_rate={report.hit_rate:.0%} "
          f"TTFT speedup={report.ttft_speedup:.1f}x "
          f"({report.cached_token_fraction:.0%} of prompt tokens reused)")

    # --- 5. Multi-turn conversations: recompute vs hierarchical store.
    conversations = multi_turn_workload(
        num_conversations=40, turns_per_conversation=5, seed=4
    )
    print("\n[5] multi-turn KV strategies (follow-up turn TTFT):")
    for label, kwargs in (
        ("recompute", dict(strategy="recompute")),
        ("store", dict(strategy="store")),
        ("store+overlap+prefetch",
         dict(strategy="store", overlap=0.8, prefetch_lead_s=0.5)),
    ):
        report = simulate_multiturn(conversations, **kwargs)
        print(f"    {label:24s} followup_ttft={report.followup_mean_ttft_s * 1000:.1f}ms "
              f"recomputed={report.tokens_recomputed} tokens")


if __name__ == "__main__":
    main()
