"""Quickstart: the Data+AI engine in five minutes.

Spins up the whole Figure-1 stack — simulated LLM, document corpus, RAG,
multi-modal lake, agent — and exercises one of everything.

Run:  python examples/quickstart.py
"""

from repro import DataAI, DataAIConfig


def main() -> None:
    engine = DataAI(DataAIConfig(model="sim-base", seed=7))
    print(f"world: {len(engine.world.facts())} facts, "
          f"{len(engine.documents)} documents, {len(engine.lake)} lake assets")

    # 1. Point questions: closed-book vs RAG.
    questions = engine.qa.single_hop(10)
    closed = sum(
        engine.rag.answer_closed_book(q.text).text == q.answer for q in questions
    )
    grounded = sum(engine.ask(q.text).text == q.answer for q in questions)
    print(f"\n[1] single-hop QA: closed-book {closed}/10 -> RAG {grounded}/10")
    sample = questions[0]
    print(f"    e.g. {sample.text!r} -> {engine.ask(sample.text).text!r} "
          f"(gold {sample.answer!r})")

    # 2. Multi-hop questions: iterative retrieval.
    multi = engine.qa.multi_hop(10)
    single_shot = sum(engine.rag.answer(q.text).text == q.answer for q in multi)
    iterative = sum(
        engine.rag.answer_iterative(q.text).text == q.answer for q in multi
    )
    print(f"[2] multi-hop QA: single-shot {single_shot}/10 -> iterative {iterative}/10")

    # 3. Analytics over the multi-modal lake (tables + JSON + documents).
    for question in (
        "count companies where industry == biotech",
        "average price_usd of products whose maker is in companies "
        "where industry == biotech",
    ):
        print(f"[3] {question!r} -> {engine.analytics(question)}")

    # 4. A tool-using agent that routes between search and analytics.
    agent = engine.build_agent()
    solved = 0
    shown = False
    for goal in multi:
        trace = agent.run(goal.text)
        if trace.answer == goal.answer:
            solved += 1
            if not shown:
                shown = True
                print(f"[4] agent trace on {goal.text!r}:")
                for step in trace.steps:
                    print(f"    {step.call.tool}({step.resolved_text[:50]!r}) "
                          f"-> {step.call.observation!r}")
    print(f"[4] agent solved {solved}/{len(multi)} multi-hop goals")

    # 5. Cost accounting: every call above hit one shared ledger.
    usage = engine.usage()
    print(f"\n[5] total usage: {usage.calls} calls, "
          f"{usage.total_tokens} tokens, ${usage.usd:.3f}")


if __name__ == "__main__":
    main()
