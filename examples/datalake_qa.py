"""Multi-modal data-lake analytics: linking, planning, execution, NL2SQL.

The lake splits one world across modalities (companies/cities as tables,
products as JSON, people as documents), so join queries must cross
modality boundaries — the setting of AOP / SYMPHONY / CAESURA (§2.2.2).

Run:  python examples/datalake_qa.py
"""

from repro.data import World
from repro.datalake import (
    DataLake,
    EmbeddingLinker,
    LakeAnalytics,
    LakeWorkload,
    LexicalLinker,
    NL2SQLEngine,
    answer_matches,
    linking_recall,
)
from repro.llm import make_llm

DOC_ATTRS = {"person": ["employer", "role", "age", "residence"]}


def main() -> None:
    world = World()
    lake = DataLake.from_world(world)
    llm = make_llm("sim-base", world=world, seed=31)
    print("[0] lake assets:")
    for asset in lake.assets():
        print(f"    {asset.asset_id:16s} {asset.description[:70]}")

    # --- 1. Schema linking: embedding space vs keyword overlap.
    linker = EmbeddingLinker(lake, llm.embedder)
    lexical = LexicalLinker(lake)
    probes = [
        ("product price records", ["json:products"]),
        ("person employment articles", ["doc:persons"]),
        ("company revenue table", ["table:companies"]),
    ]
    for query, gold in probes:
        emb = linking_recall(linker.link(query, k=1), gold)
        lex = linking_recall(lexical.link(query, k=1), gold)
        print(f"[1] link {query!r}: embedding@1={emb:.0f} lexical@1={lex:.0f}")

    # --- 2. Plan + execute analytics questions (with reflection).
    analytics = LakeAnalytics(lake, llm, doc_attributes=DOC_ATTRS)
    workload = LakeWorkload(world).mixed(12)
    correct = 0
    for q in workload:
        trace = analytics.ask(q.text)
        ok = answer_matches(trace.answer, q.gold, tolerance=0.1)
        correct += ok
        flag = "ok " if ok else "MISS"
        print(f"[2] {flag} [{q.kind}] {q.text[:68]!r} -> {trace.answer} "
              f"(gold {q.gold}, attempts {trace.attempts})")
    print(f"[2] accuracy: {correct}/{len(workload)}; "
          f"total LLM calls: {llm.usage.calls}")

    # --- 3. Show a plan.
    plan, _ = analytics.planner.plan(workload[1].text)
    print("[3] example plan:")
    print("    " + plan.render().replace("\n", "\n    "))

    # --- 4. NL2SQL over the structured assets.
    tables = {a.name: a.table for a in lake.by_modality("table")}
    nl2sql = NL2SQLEngine(llm, tables)
    for question in (
        "count companies where industry == biotech",
        "average revenue_musd of companies",
        "max population of cities",
    ):
        result = nl2sql.ask(question)
        print(f"[4] {question!r}\n      SQL: {result.sql}\n      -> {result.scalar} "
              f"(attempts {result.attempts})")


if __name__ == "__main__":
    main()
